//! # zkvc-qap
//!
//! Reduction from R1CS to a Quadratic Arithmetic Program (QAP) over a
//! radix-2 FFT domain, exactly as required by the Groth16 setup and prover.
//!
//! Given an R1CS with `m` constraints over variables `z`, the QAP assigns to
//! each variable `i` three polynomials `A_i, B_i, C_i` of degree `< d`
//! (where `d` is the FFT-domain size `>= m`), defined by interpolation over
//! the domain: `A_i(w_j) = A[j][i]` and likewise for `B, C`. The R1CS is
//! satisfied iff the polynomial
//! `P(X) = (sum_i z_i A_i(X)) (sum_i z_i B_i(X)) - (sum_i z_i C_i(X))`
//! is divisible by the vanishing polynomial `Z(X) = X^d - 1`, and the prover
//! exhibits the quotient `H(X) = P(X) / Z(X)`.
//!
//! Two entry points:
//! * [`evaluate_qap_at_point`] — evaluates every variable polynomial at a
//!   secret point `tau` (used by the trusted setup);
//! * [`compute_h_coefficients`] — computes the quotient polynomial `H` from
//!   a full assignment (used by the prover), via coset FFTs in
//!   `O(d log d)` time; [`compute_h_coefficients_in`] is the same against a
//!   caller-cached [`EvaluationDomain`] (no per-proof twiddle rebuild).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use zkvc_ff::{EvaluationDomain, Field, PrimeField};
use zkvc_r1cs::R1csMatrices;

/// The per-variable QAP evaluations at a fixed point, plus domain metadata.
#[derive(Clone, Debug)]
pub struct QapEvaluations<F: PrimeField> {
    /// `A_i(tau)` for every variable `i` (column order of the R1CS).
    pub a: Vec<F>,
    /// `B_i(tau)` for every variable `i`.
    pub b: Vec<F>,
    /// `C_i(tau)` for every variable `i`.
    pub c: Vec<F>,
    /// The vanishing polynomial evaluated at the point, `Z(tau)`.
    pub zt: F,
    /// The FFT-domain size `d` (number of interpolation points).
    pub domain_size: usize,
}

/// Returns the FFT domain used for an R1CS with the given number of
/// constraints (the smallest radix-2 domain of size at least
/// `max(num_constraints, 2)`), or `None` if it exceeds the field's
/// 2-adicity.
pub fn qap_domain<F: PrimeField>(num_constraints: usize) -> Option<EvaluationDomain<F>> {
    EvaluationDomain::new(num_constraints.max(2))
}

/// Evaluates every QAP variable polynomial at the point `tau`.
///
/// Runs in `O(d + nnz)` field operations, where `nnz` is the number of
/// non-zero R1CS matrix entries.
///
/// # Panics
/// Panics if the constraint count exceeds the supported FFT-domain size.
pub fn evaluate_qap_at_point<F: PrimeField>(
    matrices: &R1csMatrices<F>,
    tau: &F,
) -> QapEvaluations<F> {
    let domain = qap_domain::<F>(matrices.num_constraints())
        .expect("constraint count exceeds the field's FFT capacity");
    let lagrange = domain.lagrange_coefficients_at(tau);
    let num_vars = matrices.num_variables();

    let mut a = vec![F::zero(); num_vars];
    let mut b = vec![F::zero(); num_vars];
    let mut c = vec![F::zero(); num_vars];

    // One flat pass per CSR matrix: entry k of row j contributes
    // `lagrange[j] * coeff` to its variable's column accumulator.
    let accumulate = |matrix: &zkvc_r1cs::SparseMatrix<F>, out: &mut [F]| {
        for (j, lj) in lagrange.iter().copied().enumerate().take(matrix.num_rows) {
            for (col, coeff) in matrix.row(j) {
                out[col] += lj * *coeff;
            }
        }
    };
    accumulate(&matrices.a, &mut a);
    accumulate(&matrices.b, &mut b);
    accumulate(&matrices.c, &mut c);

    QapEvaluations {
        a,
        b,
        c,
        zt: domain.evaluate_vanishing_polynomial(tau),
        domain_size: domain.size(),
    }
}

/// Computes the coefficients of the quotient polynomial
/// `H(X) = (A(X) B(X) - C(X)) / Z(X)` for a full assignment `z`.
///
/// Returns `d - 1` coefficients (degree `<= d - 2`).
///
/// # Panics
/// Panics if `z.len()` does not match the number of R1CS variables, or if
/// the assignment does not satisfy the R1CS (the division would not be
/// exact). Use [`R1csMatrices::is_satisfied`] first when unsure.
pub fn compute_h_coefficients<F: PrimeField>(matrices: &R1csMatrices<F>, z: &[F]) -> Vec<F> {
    let domain = qap_domain::<F>(matrices.num_constraints())
        .expect("constraint count exceeds the field's FFT capacity");
    compute_h_coefficients_in(&domain, matrices, z)
}

/// [`compute_h_coefficients`] against a caller-supplied domain, so a prover
/// that proves many statements of one shape (e.g. through the runtime's key
/// cache) builds the domain — and its twiddle tables — once instead of per
/// proof. The Groth16 `ProvingKey` carries this domain.
///
/// # Panics
/// Panics if `domain` is not the QAP domain for `matrices` (wrong size), in
/// addition to the conditions on [`compute_h_coefficients`].
pub fn compute_h_coefficients_in<F: PrimeField>(
    domain: &EvaluationDomain<F>,
    matrices: &R1csMatrices<F>,
    z: &[F],
) -> Vec<F> {
    assert_eq!(
        z.len(),
        matrices.num_variables(),
        "assignment length must match the R1CS variable count"
    );
    // The expected size is computed arithmetically — building a throwaway
    // domain here would re-pay the twiddle tables this function exists to
    // avoid.
    assert_eq!(
        domain.size(),
        matrices.num_constraints().max(2).next_power_of_two(),
        "domain does not match the R1CS constraint count"
    );
    let d = domain.size();

    // Evaluations of A(X), B(X), C(X) over the domain: entry j is <M_j, z>.
    let mut az = matrices.a.mul_vector(z);
    let mut bz = matrices.b.mul_vector(z);
    let mut cz = matrices.c.mul_vector(z);
    az.resize(d, F::zero());
    bz.resize(d, F::zero());
    cz.resize(d, F::zero());

    // Move to coefficient form.
    domain.ifft_in_place(&mut az);
    domain.ifft_in_place(&mut bz);
    domain.ifft_in_place(&mut cz);

    // Evaluate on the coset gH, where Z(X) is the nonzero constant g^d - 1.
    domain.coset_fft_in_place(&mut az);
    domain.coset_fft_in_place(&mut bz);
    domain.coset_fft_in_place(&mut cz);

    let z_on_coset_inv = domain
        .vanishing_on_coset()
        .inverse()
        .expect("coset vanishing value is non-zero");
    let mut h: Vec<F> = az
        .iter()
        .zip(bz.iter())
        .zip(cz.iter())
        .map(|((a, b), c)| (*a * *b - *c) * z_on_coset_inv)
        .collect();

    // Back to coefficient form.
    domain.coset_ifft_in_place(&mut h);

    // Degree must be <= d - 2; the top coefficient is zero for satisfying
    // assignments.
    debug_assert!(
        h.last().is_none_or(Field::is_zero),
        "assignment does not satisfy the R1CS (non-exact division by Z)"
    );
    h.truncate(d - 1);
    h
}

/// Checks the QAP divisibility identity directly at a random point:
/// `A(t) B(t) - C(t) == H(t) Z(t)`. Used in tests and as a cheap self-check.
pub fn check_qap_identity_at<F: PrimeField>(
    matrices: &R1csMatrices<F>,
    z: &[F],
    h: &[F],
    t: &F,
) -> bool {
    let evals = evaluate_qap_at_point(matrices, t);
    let dot = |polys: &[F]| -> F { polys.iter().zip(z.iter()).map(|(p, zi)| *p * *zi).sum() };
    let at = dot(&evals.a);
    let bt = dot(&evals.b);
    let ct = dot(&evals.c);
    let ht: F = h
        .iter()
        .rev()
        .fold(F::zero(), |acc, coeff| acc * *t + *coeff);
    at * bt - ct == ht * evals.zt
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::Fr;
    use zkvc_r1cs::{ConstraintSystem, LinearCombination};

    /// x^3 + x + 5 = 35, plus some padding constraints to vary sizes.
    fn test_cs(x_val: u64, extra: usize) -> ConstraintSystem<Fr> {
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(x_val * x_val * x_val + x_val + 5));
        let x = cs.alloc_witness(Fr::from_u64(x_val));
        let x2 = cs.alloc_witness(Fr::from_u64(x_val * x_val));
        let x3 = cs.alloc_witness(Fr::from_u64(x_val * x_val * x_val));
        cs.enforce(x.into(), x.into(), x2.into());
        cs.enforce(x2.into(), x.into(), x3.into());
        cs.enforce(
            LinearCombination::from(x3)
                + LinearCombination::from(x)
                + LinearCombination::constant(Fr::from_u64(5)),
            LinearCombination::constant(Fr::one()),
            out.into(),
        );
        for i in 0..extra {
            let v = cs.alloc_witness(Fr::from_u64(i as u64 * i as u64));
            let w = cs.alloc_witness(Fr::from_u64(i as u64));
            cs.enforce(w.into(), w.into(), v.into());
        }
        cs
    }

    #[test]
    fn qap_identity_holds_for_satisfying_assignment() {
        let mut rng = StdRng::seed_from_u64(10);
        for extra in [0usize, 1, 5, 13] {
            let cs = test_cs(3, extra);
            assert!(cs.is_satisfied());
            let m = cs.to_matrices();
            let z = cs.full_assignment();
            let h = compute_h_coefficients(&m, &z);
            for _ in 0..4 {
                let t = Fr::random(&mut rng);
                assert!(check_qap_identity_at(&m, &z, &h, &t), "extra={extra}");
            }
        }
    }

    #[test]
    fn qap_identity_fails_for_bad_assignment() {
        let mut rng = StdRng::seed_from_u64(11);
        let cs = test_cs(3, 2);
        let m = cs.to_matrices();
        let mut z = cs.full_assignment();
        let h = compute_h_coefficients(&m, &z);
        // corrupt a witness value after computing h
        z[2] = Fr::from_u64(999);
        let t = Fr::random(&mut rng);
        assert!(!check_qap_identity_at(&m, &z, &h, &t));
    }

    #[test]
    fn setup_evaluations_match_lagrange_interpolation() {
        // A_i(tau) computed sparsely must equal direct interpolation of the
        // i-th column.
        let cs = test_cs(3, 3);
        let m = cs.to_matrices();
        let tau = Fr::from_u64(987654321);
        let evals = evaluate_qap_at_point(&m, &tau);
        let domain = qap_domain::<Fr>(m.num_constraints()).unwrap();
        let lag = domain.lagrange_coefficients_at(&tau);
        // pick a few columns and check directly
        for col in 0..m.num_variables() {
            let mut expect = Fr::zero();
            for (j, lj) in lag.iter().enumerate().take(m.a.num_rows) {
                for (c, v) in m.a.row(j) {
                    if c == col {
                        expect += *lj * *v;
                    }
                }
            }
            assert_eq!(evals.a[col], expect);
        }
        assert_eq!(evals.domain_size, domain.size());
        assert_eq!(evals.zt, domain.evaluate_vanishing_polynomial(&tau));
    }

    #[test]
    fn h_degree_is_bounded() {
        let cs = test_cs(3, 9);
        let m = cs.to_matrices();
        let z = cs.full_assignment();
        let h = compute_h_coefficients(&m, &z);
        let domain = qap_domain::<Fr>(m.num_constraints()).unwrap();
        assert_eq!(h.len(), domain.size() - 1);
    }
}
