//! Arithmetic helper gadgets: multiplication, inversion, zero / equality
//! tests, conditional selection and product-of-many-terms.
//!
//! Every gadget is written against [`ConstraintSink`], so the same code
//! drives the legacy single pass, the witness-free shape pass and the
//! witness pass (values are computed only when the sink carries them).

use zkvc_ff::Field;

use crate::lc::{LinearCombination, Variable};
use crate::sink::{ConstraintSink, SinkExt};

/// Allocates `a * b` as a new witness and enforces the product constraint.
pub fn mul<F: Field, S: ConstraintSink<F> + ?Sized>(
    cs: &mut S,
    a: &LinearCombination<F>,
    b: &LinearCombination<F>,
) -> Variable {
    let val = cs.lc_product(a, b);
    let out = cs.alloc_witness_opt(val);
    cs.enforce_named(a.clone(), b.clone(), out.into(), "mul");
    out
}

/// Allocates the multiplicative inverse of `a` and enforces `a * inv = 1`.
///
/// If the assigned value is zero the inverse witness is set to zero and the
/// resulting system is unsatisfiable — callers that allow zero should use
/// [`is_zero`] first.
pub fn inverse<F: Field, S: ConstraintSink<F> + ?Sized>(
    cs: &mut S,
    a: &LinearCombination<F>,
) -> Variable {
    let inv_val = cs
        .lc_value(a)
        .map(|val| val.inverse().unwrap_or_else(F::zero));
    let inv = cs.alloc_witness_opt(inv_val);
    cs.enforce_named(
        a.clone(),
        inv.into(),
        LinearCombination::constant(F::one()),
        "inverse",
    );
    inv
}

/// Returns a boolean variable that is 1 iff `a == 0`.
///
/// Uses the classic trick: allocate `inv`, enforce `a * inv = 1 - b` and
/// `a * b = 0`.
pub fn is_zero<F: Field, S: ConstraintSink<F> + ?Sized>(
    cs: &mut S,
    a: &LinearCombination<F>,
) -> Variable {
    let val = cs.lc_value(a);
    let b = cs.alloc_witness_opt(val.map(|v| if v.is_zero() { F::one() } else { F::zero() }));
    let inv = cs.alloc_witness_opt(val.map(|v| v.inverse().unwrap_or_else(F::zero)));
    // a * inv = 1 - b
    cs.enforce_named(
        a.clone(),
        inv.into(),
        LinearCombination::constant(F::one()) - LinearCombination::from(b),
        "is_zero: a*inv",
    );
    // a * b = 0
    cs.enforce_named(
        a.clone(),
        b.into(),
        LinearCombination::zero(),
        "is_zero: a*b",
    );
    // The two rows jointly force b ∈ {0, 1} without a literal
    // x·(x−1) = 0 row: a = 0 gives b = 1 (first row), a ≠ 0 gives b = 0
    // (second row).
    cs.provide_boolean(b);
    b
}

/// Returns a boolean variable that is 1 iff `a == b`.
pub fn is_equal<F: Field, S: ConstraintSink<F> + ?Sized>(
    cs: &mut S,
    a: &LinearCombination<F>,
    b: &LinearCombination<F>,
) -> Variable {
    is_zero(cs, &(a.clone() - b))
}

/// Returns `cond ? x : y` as a new witness, where `cond` must already be
/// constrained boolean. Adds a single constraint
/// `cond * (x - y) = out - y`.
pub fn select<F: Field, S: ConstraintSink<F> + ?Sized>(
    cs: &mut S,
    cond: Variable,
    x: &LinearCombination<F>,
    y: &LinearCombination<F>,
) -> Variable {
    let out_val = cs.var_value(cond).map(|c| {
        if c == F::one() {
            cs.lc_value(x).expect("sink carries values")
        } else {
            cs.lc_value(y).expect("sink carries values")
        }
    });
    let out = cs.alloc_witness_opt(out_val);
    cs.expect_boolean(cond);
    cs.enforce_named(
        cond.into(),
        x.clone() - y,
        LinearCombination::from(out) - y,
        "select",
    );
    out
}

/// Enforces that the product of all `terms` is zero (i.e. at least one term
/// vanishes). This is the membership check the paper uses to verify
/// `x_max ∈ x`: `prod_j (x_max - x_j) = 0`.
///
/// Uses a chain of `terms.len() - 1` multiplication constraints.
pub fn enforce_product_is_zero<F: Field, S: ConstraintSink<F> + ?Sized>(
    cs: &mut S,
    terms: &[LinearCombination<F>],
) {
    if terms.is_empty() {
        return;
    }
    if terms.len() == 1 {
        cs.enforce_zero(terms[0].clone());
        return;
    }
    if terms.len() == 2 {
        // directly enforce t0 * t1 = 0
        cs.enforce_named(
            terms[0].clone(),
            terms[1].clone(),
            LinearCombination::zero(),
            "product_zero",
        );
        return;
    }
    // acc_1 = t0 * t1; acc_i = acc_{i-1} * t_i; last product must be 0.
    let mut acc_val = cs.lc_product(&terms[0], &terms[1]);
    let v = cs.alloc_witness_opt(acc_val);
    cs.enforce_named(
        terms[0].clone(),
        terms[1].clone(),
        v.into(),
        "product_zero step",
    );
    let mut acc: LinearCombination<F> = v.into();
    for (i, t) in terms.iter().enumerate().skip(2) {
        acc_val = acc_val.and_then(|a| cs.lc_value(t).map(|tv| a * tv));
        if i + 1 == terms.len() {
            cs.enforce_named(
                acc,
                t.clone(),
                LinearCombination::zero(),
                "product_zero final",
            );
            return;
        }
        let v = cs.alloc_witness_opt(acc_val);
        cs.enforce_named(acc, t.clone(), v.into(), "product_zero step");
        acc = v.into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::ConstraintSystem;
    use zkvc_ff::{Fr, PrimeField};

    #[test]
    fn mul_gadget() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = cs.alloc_witness(Fr::from_u64(6));
        let b = cs.alloc_witness(Fr::from_u64(7));
        let c = mul(&mut cs, &a.into(), &b.into());
        assert_eq!(cs.value(c), Fr::from_u64(42));
        assert!(cs.is_satisfied());
    }

    #[test]
    fn inverse_gadget() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = cs.alloc_witness(Fr::from_u64(5));
        let inv = inverse(&mut cs, &a.into());
        assert_eq!(cs.value(inv) * Fr::from_u64(5), Fr::one());
        assert!(cs.is_satisfied());

        // inverse of zero cannot be satisfied
        let mut cs = ConstraintSystem::<Fr>::new();
        let z = cs.alloc_witness(Fr::zero());
        inverse(&mut cs, &z.into());
        assert!(!cs.is_satisfied());
    }

    #[test]
    fn is_zero_gadget() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let z = cs.alloc_witness(Fr::zero());
        let nz = cs.alloc_witness(Fr::from_u64(11));
        let b1 = is_zero(&mut cs, &z.into());
        let b2 = is_zero(&mut cs, &nz.into());
        assert_eq!(cs.value(b1), Fr::one());
        assert_eq!(cs.value(b2), Fr::zero());
        assert!(cs.is_satisfied());
    }

    #[test]
    fn is_zero_soundness_against_lying_prover() {
        // A prover who claims a non-zero value is zero cannot satisfy the
        // constraints no matter what inverse value they pick.
        let mut cs = ConstraintSystem::<Fr>::new();
        let nz = cs.alloc_witness(Fr::from_u64(11));
        let b = is_zero(&mut cs, &nz.into());
        assert!(cs.is_satisfied());
        // tamper: claim b = 1
        let mut w = cs.witness_assignment().to_vec();
        let crate::lc::Variable::Witness(b_index) = b else {
            unreachable!()
        };
        w[b_index] = Fr::one();
        cs.set_witness_assignment(w);
        assert!(!cs.is_satisfied());
    }

    #[test]
    fn is_equal_gadget() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = cs.alloc_witness(Fr::from_u64(9));
        let b = cs.alloc_witness(Fr::from_u64(9));
        let c = cs.alloc_witness(Fr::from_u64(10));
        let eq = is_equal(&mut cs, &a.into(), &b.into());
        let ne = is_equal(&mut cs, &a.into(), &c.into());
        assert_eq!(cs.value(eq), Fr::one());
        assert_eq!(cs.value(ne), Fr::zero());
        assert!(cs.is_satisfied());
    }

    #[test]
    fn select_gadget() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let t = crate::gadgets::alloc_bit(&mut cs, true);
        let f = crate::gadgets::alloc_bit(&mut cs, false);
        let x = cs.alloc_witness(Fr::from_u64(100));
        let y = cs.alloc_witness(Fr::from_u64(200));
        let s1 = select(&mut cs, t, &x.into(), &y.into());
        let s2 = select(&mut cs, f, &x.into(), &y.into());
        assert_eq!(cs.value(s1), Fr::from_u64(100));
        assert_eq!(cs.value(s2), Fr::from_u64(200));
        assert!(cs.is_satisfied());
    }

    #[test]
    fn product_is_zero() {
        // one of the terms is zero -> satisfiable
        let mut cs = ConstraintSystem::<Fr>::new();
        let vals = [3u64, 0, 7, 9];
        let lcs: Vec<LinearCombination<Fr>> = vals
            .iter()
            .map(|v| cs.alloc_witness(Fr::from_u64(*v)).into())
            .collect();
        enforce_product_is_zero(&mut cs, &lcs);
        assert!(cs.is_satisfied());

        // no zero term -> unsatisfiable
        let mut cs = ConstraintSystem::<Fr>::new();
        let lcs: Vec<LinearCombination<Fr>> = [3u64, 2, 7, 9]
            .iter()
            .map(|v| cs.alloc_witness(Fr::from_u64(*v)).into())
            .collect();
        enforce_product_is_zero(&mut cs, &lcs);
        assert!(!cs.is_satisfied());
    }

    #[test]
    fn product_is_zero_short_lists() {
        // single zero term
        let mut cs = ConstraintSystem::<Fr>::new();
        let z: LinearCombination<Fr> = cs.alloc_witness(Fr::zero()).into();
        enforce_product_is_zero(&mut cs, std::slice::from_ref(&z));
        assert!(cs.is_satisfied());
        // two terms, one zero
        let mut cs = ConstraintSystem::<Fr>::new();
        let a: LinearCombination<Fr> = cs.alloc_witness(Fr::from_u64(5)).into();
        let z: LinearCombination<Fr> = cs.alloc_witness(Fr::zero()).into();
        enforce_product_is_zero(&mut cs, &[a, z]);
        assert!(cs.is_satisfied());
        // empty list is a no-op
        let mut cs = ConstraintSystem::<Fr>::new();
        enforce_product_is_zero::<Fr, _>(&mut cs, &[]);
        assert!(cs.is_satisfied());
        assert_eq!(cs.num_constraints(), 0);
    }

    #[test]
    fn gadgets_are_pass_oblivious() {
        // The same gadget calls produce the same structure on a shape pass
        // (no values) as on the single pass, and the witness pass matches.
        use crate::sink::{shape_digest, ShapeBuilder, WitnessFiller};

        fn emit(sink: &mut dyn ConstraintSink<Fr>) {
            let a = sink.alloc_witness_lazy(|| Fr::from_u64(6));
            let b = sink.alloc_witness_lazy(|| Fr::from_u64(7));
            let p = mul(sink, &a.into(), &b.into());
            inverse(sink, &b.into());
            let z = is_zero(
                sink,
                &(LinearCombination::from(p) - LinearCombination::from(p)),
            );
            select(sink, z, &a.into(), &b.into());
            enforce_product_is_zero(
                sink,
                &[
                    LinearCombination::from(a),
                    LinearCombination::from(a) - LinearCombination::from(a),
                    LinearCombination::from(b),
                ],
            );
        }

        let mut cs = ConstraintSystem::<Fr>::new();
        emit(&mut cs);
        assert!(cs.is_satisfied());

        let mut sb = ShapeBuilder::<Fr>::new();
        emit(&mut sb);
        let shape = sb.finish();
        assert_eq!(shape.digest, shape_digest(&cs));

        let mut wf = WitnessFiller::<Fr>::new();
        emit(&mut wf);
        let w = wf.finish_for(&shape);
        assert_eq!(w.full(), cs.full_assignment());
        assert!(shape.is_satisfied(&w));
    }
}
