//! Comparison gadgets based on bit decomposition.
//!
//! These implement the two checks the paper's SoftMax verification needs
//! (§III-C): `x_max >= x_j` for all `j` (via bit-decomposition comparison)
//! and `prod_j (x_max - x_j) = 0` (membership), plus the signed-negativity
//! test used to select the clipping branch of the exponential approximation.

use zkvc_ff::PrimeField;

use crate::cs::SynthesisError;
use crate::lc::{LinearCombination, Variable};
use crate::sink::ConstraintSink;

use super::{bit_decompose, enforce_product_is_zero};

/// Default bit width for quantised fixed-point values (matches the 32-bit
/// accumulators produced by the NITI-style quantisation in `zkvc-nn`).
pub const BIT_WIDTH_DEFAULT: usize = 32;

/// Returns a boolean variable equal to 1 iff `a >= b`, where both operands
/// are signed values of magnitude `< 2^(num_bits - 1)`.
///
/// Internally computes `a - b + 2^num_bits` and decomposes it into
/// `num_bits + 1` bits; the top bit is the comparison result.
///
/// # Errors
/// Propagates [`SynthesisError::ValueOutOfRange`] if the operands exceed the
/// stated magnitude bound.
pub fn greater_equal<F: PrimeField, S: ConstraintSink<F> + ?Sized>(
    cs: &mut S,
    a: &LinearCombination<F>,
    b: &LinearCombination<F>,
    num_bits: usize,
) -> Result<Variable, SynthesisError> {
    let offset = F::from_u64(2).pow(&[num_bits as u64]);
    let shifted = a.clone() - b + LinearCombination::constant(offset);
    let bits = bit_decompose(cs, &shifted, num_bits + 1)?;
    Ok(bits[num_bits])
}

/// Returns a boolean variable equal to 1 iff the signed value `x` (with
/// magnitude `< 2^(num_bits - 1)`) is negative.
pub fn is_negative_fixed<F: PrimeField, S: ConstraintSink<F> + ?Sized>(
    cs: &mut S,
    x: &LinearCombination<F>,
    num_bits: usize,
) -> Result<Variable, SynthesisError> {
    let ge_zero = greater_equal(cs, x, &LinearCombination::zero(), num_bits)?;
    // neg = 1 - ge_zero, constrained by neg + ge_zero = 1 (both boolean).
    let neg_val = cs.var_value(ge_zero).map(|v| F::one() - v);
    let neg = cs.alloc_witness_opt(neg_val);
    cs.enforce_named(
        LinearCombination::from(neg) + LinearCombination::from(ge_zero),
        LinearCombination::constant(F::one()),
        LinearCombination::constant(F::one()),
        "is_negative complement",
    );
    // neg = 1 − ge_zero with ge_zero already pinned boolean by its
    // decomposition row, so neg is boolean by construction even though it
    // has no x·(x−1) = 0 row of its own.
    cs.provide_boolean(neg);
    Ok(neg)
}

/// Allocates and constrains the maximum of `values` exactly as described in
/// the paper: (1) `max >= x_j` for every `j`, and (2)
/// `prod_j (max - x_j) = 0` so `max` is one of the inputs.
///
/// Values are signed with magnitude `< 2^(num_bits - 1)`.
///
/// # Errors
/// Propagates range errors from the comparison decompositions.
///
/// # Panics
/// Panics if `values` is empty.
pub fn max_of<F: PrimeField, S: ConstraintSink<F> + ?Sized>(
    cs: &mut S,
    values: &[LinearCombination<F>],
    num_bits: usize,
) -> Result<Variable, SynthesisError> {
    assert!(!values.is_empty(), "max_of requires at least one value");
    // Hint the maximum value (as a signed comparison on canonical values,
    // using the fact that quantities are bounded by 2^(num_bits-1)).
    let half = F::from_u64(2).pow(&[(num_bits - 1) as u64]);
    let to_signed_key = |v: F| {
        // map field value to an ordered key: add 2^(num_bits-1) so that
        // negative values (p - |v|) wrap below positives
        (v + half).to_canonical()
    };
    let assigned: Option<Vec<F>> = values.iter().map(|lc| cs.lc_value(lc)).collect();
    let max_val = assigned.map(|vals| {
        vals.into_iter()
            .max_by(|a, b| {
                let ka = to_signed_key(*a);
                let kb = to_signed_key(*b);
                if ka == kb {
                    core::cmp::Ordering::Equal
                } else if zkvc_ff::arith::lt_4(&ka, &kb) {
                    core::cmp::Ordering::Less
                } else {
                    core::cmp::Ordering::Greater
                }
            })
            .expect("non-empty")
    });
    let max_var = cs.alloc_witness_opt(max_val);

    // (1) max >= x_j for all j
    for v in values {
        let ge = greater_equal(cs, &max_var.into(), v, num_bits)?;
        cs.enforce_named(
            ge.into(),
            LinearCombination::constant(F::one()),
            LinearCombination::constant(F::one()),
            "max dominates",
        );
    }
    // (2) membership: prod (max - x_j) = 0
    let diffs: Vec<LinearCombination<F>> = values
        .iter()
        .map(|v| LinearCombination::from(max_var) - v)
        .collect();
    enforce_product_is_zero(cs, &diffs);
    Ok(max_var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::ConstraintSystem;
    use zkvc_ff::{Field, Fr};

    fn lc_of(cs: &mut ConstraintSystem<Fr>, v: i64) -> LinearCombination<Fr> {
        cs.alloc_witness(Fr::from_i64(v)).into()
    }

    #[test]
    fn greater_equal_positive_and_negative() {
        let cases = [
            (5i64, 3i64, true),
            (3, 5, false),
            (4, 4, true),
            (-2, -7, true),
            (-7, -2, false),
            (-1, 1, false),
            (1, -1, true),
            (0, 0, true),
        ];
        for (a, b, expect) in cases {
            let mut cs = ConstraintSystem::<Fr>::new();
            let la = lc_of(&mut cs, a);
            let lb = lc_of(&mut cs, b);
            let ge = greater_equal(&mut cs, &la, &lb, 16).unwrap();
            assert!(cs.is_satisfied(), "a={a}, b={b}");
            assert_eq!(
                cs.value(ge),
                if expect { Fr::one() } else { Fr::zero() },
                "a={a}, b={b}"
            );
        }
    }

    #[test]
    fn greater_equal_out_of_range_rejected() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let la = lc_of(&mut cs, 1 << 20);
        let lb = lc_of(&mut cs, 0);
        // 8-bit comparison cannot hold a 2^20 difference
        assert!(greater_equal(&mut cs, &la, &lb, 8).is_err());
    }

    #[test]
    fn is_negative() {
        for (v, expect) in [(-5i64, true), (5, false), (0, false), (-1, true)] {
            let mut cs = ConstraintSystem::<Fr>::new();
            let lv = lc_of(&mut cs, v);
            let neg = is_negative_fixed(&mut cs, &lv, 16).unwrap();
            assert!(cs.is_satisfied());
            assert_eq!(
                cs.value(neg),
                if expect { Fr::one() } else { Fr::zero() },
                "v={v}"
            );
        }
    }

    #[test]
    fn max_of_values() {
        let cases: Vec<(Vec<i64>, i64)> = vec![
            (vec![1, 5, 3], 5),
            (vec![-4, -2, -9], -2),
            (vec![7], 7),
            (vec![-1, 0, 1], 1),
            (vec![4, 4, 4], 4),
        ];
        for (vals, expect) in cases {
            let mut cs = ConstraintSystem::<Fr>::new();
            let lcs: Vec<LinearCombination<Fr>> = vals.iter().map(|v| lc_of(&mut cs, *v)).collect();
            let m = max_of(&mut cs, &lcs, 16).unwrap();
            assert!(cs.is_satisfied(), "vals={vals:?}");
            assert_eq!(cs.value(m), Fr::from_i64(expect), "vals={vals:?}");
        }
    }

    #[test]
    fn comparisons_are_pass_oblivious() {
        use crate::sink::{shape_digest, ShapeBuilder, WitnessFiller};

        fn emit(sink: &mut dyn ConstraintSink<Fr>) -> Result<(), SynthesisError> {
            let vals = [3i64, -2, 7];
            let lcs: Vec<LinearCombination<Fr>> = vals
                .iter()
                .map(|v| {
                    LinearCombination::from(
                        sink.alloc_witness_opt(sink.wants_values().then(|| Fr::from_i64(*v))),
                    )
                })
                .collect();
            max_of(sink, &lcs, 16)?;
            is_negative_fixed(sink, &lcs[1], 16)?;
            Ok(())
        }

        let mut cs = ConstraintSystem::<Fr>::new();
        emit(&mut cs).unwrap();
        assert!(cs.is_satisfied());

        let mut sb = ShapeBuilder::<Fr>::new();
        emit(&mut sb).unwrap();
        let shape = sb.finish();
        assert_eq!(shape.digest, shape_digest(&cs));

        let mut wf = WitnessFiller::<Fr>::new();
        emit(&mut wf).unwrap();
        assert!(shape.is_satisfied(&wf.finish_for(&shape)));
    }

    #[test]
    fn max_soundness_rejects_wrong_max() {
        // Claiming a non-maximal element fails the domination check, and
        // claiming a too-large value fails the membership product.
        let mut cs = ConstraintSystem::<Fr>::new();
        let lcs: Vec<LinearCombination<Fr>> =
            [1i64, 5, 3].iter().map(|v| lc_of(&mut cs, *v)).collect();
        let m = max_of(&mut cs, &lcs, 16).unwrap();
        assert!(cs.is_satisfied());
        let Variable::Witness(m_idx) = m else {
            unreachable!()
        };
        // tamper with the max witness only (leaving the rest inconsistent)
        let mut w = cs.witness_assignment().to_vec();
        w[m_idx] = Fr::from_u64(6); // not a member
        cs.set_witness_assignment(w);
        assert!(!cs.is_satisfied());
    }
}
