//! Boolean and bit-decomposition gadgets.

use zkvc_ff::{Field, PrimeField};

use crate::cs::SynthesisError;
use crate::lc::{LinearCombination, Variable};
use crate::sink::ConstraintSink;

/// Allocates a witness bit with value `bit` and constrains it to be boolean
/// (`b * (1 - b) = 0`).
pub fn alloc_bit<F: PrimeField, S: ConstraintSink<F> + ?Sized>(cs: &mut S, bit: bool) -> Variable {
    let v = cs.alloc_witness_opt(Some(if bit { F::one() } else { F::zero() }));
    enforce_boolean(cs, v);
    v
}

/// Constrains an existing variable to be 0 or 1.
pub fn enforce_boolean<F: Field, S: ConstraintSink<F> + ?Sized>(cs: &mut S, v: Variable) {
    cs.enforce_named(
        v.into(),
        LinearCombination::constant(F::one()) - LinearCombination::from(v),
        LinearCombination::zero(),
        "boolean",
    );
}

/// Decomposes `value` (interpreted as an unsigned integer `< 2^num_bits`)
/// into `num_bits` boolean witness variables, least-significant first, and
/// enforces that the bits recompose to `value`.
///
/// On a witness-free shape pass the range check is skipped (there is no
/// value to check) and the bits are allocated unassigned; the constraint
/// structure is identical either way.
///
/// # Errors
/// Returns [`SynthesisError::ValueOutOfRange`] if the assigned value does not
/// fit in `num_bits` bits (the constraint system would be unsatisfiable).
pub fn bit_decompose<F: PrimeField, S: ConstraintSink<F> + ?Sized>(
    cs: &mut S,
    value: &LinearCombination<F>,
    num_bits: usize,
) -> Result<Vec<Variable>, SynthesisError> {
    let canonical = match cs.lc_value(value) {
        Some(val) => {
            let canonical = val.to_canonical();
            if num_bits < 256 && zkvc_ff::arith::num_bits_4(&canonical) as usize > num_bits {
                return Err(SynthesisError::ValueOutOfRange("bit_decompose"));
            }
            Some(canonical)
        }
        None => None,
    };
    let mut bits = Vec::with_capacity(num_bits);
    let mut packing = LinearCombination::zero();
    let mut coeff = F::one();
    for i in 0..num_bits {
        let bit_val = canonical.map(|c| {
            if (c[i / 64] >> (i % 64)) & 1 == 1 {
                F::one()
            } else {
                F::zero()
            }
        });
        let b = cs.alloc_witness_opt(bit_val);
        enforce_boolean(cs, b);
        // The packing row consumes each bit as a binary digit; the
        // booleanity row just emitted is what discharges this expectation
        // under the static analyzer.
        cs.expect_boolean(b);
        packing.push(b, coeff);
        coeff = coeff.double();
        bits.push(b);
    }
    // sum_i 2^i b_i = value
    cs.enforce_named(
        packing - value.clone(),
        LinearCombination::constant(F::one()),
        LinearCombination::zero(),
        "bit packing",
    );
    Ok(bits)
}

/// Packs boolean variables (LSB first) into a single linear combination
/// `sum_i 2^i b_i`.
pub fn pack_bits<F: PrimeField>(bits: &[Variable]) -> LinearCombination<F> {
    let mut lc = LinearCombination::zero();
    let mut coeff = F::one();
    for b in bits {
        lc.push(*b, coeff);
        coeff = coeff.double();
    }
    lc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::ConstraintSystem;
    use zkvc_ff::Fr;

    #[test]
    fn boolean_constraint() {
        let mut cs = ConstraintSystem::<Fr>::new();
        alloc_bit(&mut cs, true);
        alloc_bit(&mut cs, false);
        assert!(cs.is_satisfied());

        // a non-boolean value must violate the constraint
        let mut cs = ConstraintSystem::<Fr>::new();
        let v = cs.alloc_witness(Fr::from_u64(2));
        enforce_boolean(&mut cs, v);
        assert!(!cs.is_satisfied());
    }

    #[test]
    fn decompose_and_pack_roundtrip() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(0b1011_0110));
        let bits = bit_decompose(&mut cs, &x.into(), 8).unwrap();
        assert_eq!(bits.len(), 8);
        assert!(cs.is_satisfied());
        // check individual bit values
        let expected = [0, 1, 1, 0, 1, 1, 0, 1];
        for (b, e) in bits.iter().zip(expected.iter()) {
            assert_eq!(cs.value(*b), Fr::from_u64(*e));
        }
        // packing the bits gives back the value
        let packed = pack_bits::<Fr>(&bits);
        assert_eq!(cs.eval_lc(&packed), Fr::from_u64(0b1011_0110));
    }

    #[test]
    fn decompose_rejects_oversized_values() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(300));
        assert_eq!(
            bit_decompose(&mut cs, &x.into(), 8),
            Err(SynthesisError::ValueOutOfRange("bit_decompose"))
        );
    }

    #[test]
    fn decomposition_constraint_count() {
        // n booleanity constraints + 1 packing constraint
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(5));
        bit_decompose(&mut cs, &x.into(), 16).unwrap();
        assert_eq!(cs.num_constraints(), 17);
    }

    #[test]
    fn decompose_on_shape_pass_skips_range_check() {
        use crate::sink::ShapeBuilder;
        let mut sb = ShapeBuilder::<Fr>::new();
        let x = sb.alloc_witness_opt(None);
        // No value, no range failure — just structure.
        let bits = bit_decompose(&mut sb, &x.into(), 8).unwrap();
        assert_eq!(bits.len(), 8);
        let shape = sb.finish();
        assert_eq!(shape.num_constraints(), 9);
        assert_eq!(shape.num_witness(), 9);
    }

    #[test]
    fn tampered_bit_breaks_packing() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(6));
        bit_decompose(&mut cs, &x.into(), 4).unwrap();
        assert!(cs.is_satisfied());
        // flip the witness bit 0 (stored right after x)
        let mut w: Vec<Fr> = cs.witness_assignment().to_vec();
        w[1] = Fr::one() - w[1];
        cs.set_witness_assignment(w);
        assert!(!cs.is_satisfied());
    }
}
