//! Reusable constraint gadgets.
//!
//! These are the building blocks the paper's non-linear approximations rely
//! on: booleanity, bit decomposition (for the comparisons in the SoftMax max
//! check and the clipping threshold), equality/zero tests, selection, and
//! products of many terms.

mod arith;
mod bits;
mod cmp;

pub use arith::{enforce_product_is_zero, inverse, is_equal, is_zero, mul, select};
pub use bits::{alloc_bit, bit_decompose, enforce_boolean, pack_bits};
pub use cmp::{greater_equal, is_negative_fixed, max_of, BIT_WIDTH_DEFAULT};
