//! Sparse matrix form of an R1CS instance.
//!
//! Both the QAP reduction (Groth16 path) and the Spartan-style sum-check
//! SNARK consume the constraint system as three sparse matrices `A`, `B`,
//! `C` with `Az ∘ Bz = Cz`.

use zkvc_ff::Field;

use crate::cs::ConstraintSystem;

/// A sparse matrix in row-major coordinate form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseMatrix<F: Field> {
    /// Number of rows (constraints).
    pub num_rows: usize,
    /// Number of columns (variables, including the constant-one column 0).
    pub num_cols: usize,
    /// Rows: each row is a list of `(column, coefficient)` entries.
    pub rows: Vec<Vec<(usize, F)>>,
}

impl<F: Field> SparseMatrix<F> {
    /// Multiplies the matrix by a dense vector.
    ///
    /// # Panics
    /// Panics if `z.len() != self.num_cols`.
    pub fn mul_vector(&self, z: &[F]) -> Vec<F> {
        assert_eq!(z.len(), self.num_cols, "assignment length mismatch");
        self.rows
            .iter()
            .map(|row| row.iter().map(|(j, v)| z[*j] * *v).sum())
            .collect()
    }

    /// Total number of non-zero entries.
    pub fn num_nonzero(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Evaluates the multilinear extension of the matrix (viewed as a
    /// function `{0,1}^log(rows) x {0,1}^log(cols) -> F`) at `(rx, ry)`.
    ///
    /// Used by the Spartan-style verifier, which evaluates the public
    /// matrices itself instead of relying on a sparse commitment.
    pub fn evaluate_mle(&self, rx: &[F], ry: &[F]) -> F {
        let chi_rx = zkvc_ff::poly::eq_evals(rx);
        let chi_ry = zkvc_ff::poly::eq_evals(ry);
        let mut acc = F::zero();
        for (i, row) in self.rows.iter().enumerate() {
            if chi_rx[i].is_zero() {
                continue;
            }
            for (j, v) in row {
                acc += chi_rx[i] * chi_ry[*j] * *v;
            }
        }
        acc
    }
}

/// The three sparse matrices of an R1CS instance plus its dimensions.
#[derive(Clone, Debug)]
pub struct R1csMatrices<F: Field> {
    /// Left matrix.
    pub a: SparseMatrix<F>,
    /// Right matrix.
    pub b: SparseMatrix<F>,
    /// Output matrix.
    pub c: SparseMatrix<F>,
    /// Number of instance variables (excluding the constant one).
    pub num_instance: usize,
    /// Number of witness variables.
    pub num_witness: usize,
}

impl<F: Field> R1csMatrices<F> {
    /// Extracts the matrices from a constraint system.
    pub fn from_constraint_system(cs: &ConstraintSystem<F>) -> Self {
        let num_cols = cs.num_variables();
        let (a_lcs, b_lcs, c_lcs) = cs.constraints();
        let build = |lcs: &[crate::lc::LinearCombination<F>]| SparseMatrix {
            num_rows: lcs.len(),
            num_cols,
            rows: lcs
                .iter()
                .map(|lc| {
                    lc.normalize()
                        .terms
                        .iter()
                        .map(|(v, c)| (cs.variable_index(*v), *c))
                        .collect()
                })
                .collect(),
        };
        R1csMatrices {
            a: build(a_lcs),
            b: build(b_lcs),
            c: build(c_lcs),
            num_instance: cs.num_instance(),
            num_witness: cs.num_witness(),
        }
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.a.num_rows
    }

    /// Number of variables (columns), including the constant one.
    pub fn num_variables(&self) -> usize {
        self.a.num_cols
    }

    /// Checks `Az ∘ Bz = Cz` for a full assignment `z`.
    pub fn is_satisfied(&self, z: &[F]) -> bool {
        let az = self.a.mul_vector(z);
        let bz = self.b.mul_vector(z);
        let cz = self.c.mul_vector(z);
        az.iter()
            .zip(bz.iter())
            .zip(cz.iter())
            .all(|((a, b), c)| *a * *b == *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lc::LinearCombination;
    use zkvc_ff::{Fr, PrimeField};

    fn toy_cs() -> ConstraintSystem<Fr> {
        // (x + y) * y = z  with x=2, y=3, z=15
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_instance(Fr::from_u64(2));
        let y = cs.alloc_witness(Fr::from_u64(3));
        let z = cs.alloc_witness(Fr::from_u64(15));
        cs.enforce(
            LinearCombination::from(x) + LinearCombination::from(y),
            y.into(),
            z.into(),
        );
        cs
    }

    #[test]
    fn matrices_reflect_constraints() {
        let cs = toy_cs();
        let m = cs.to_matrices();
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.num_variables(), 4);
        assert_eq!(m.a.num_nonzero(), 2);
        assert_eq!(m.b.num_nonzero(), 1);
        assert_eq!(m.c.num_nonzero(), 1);
        assert!(m.is_satisfied(&cs.full_assignment()));
    }

    #[test]
    fn unsatisfied_assignment_detected() {
        let cs = toy_cs();
        let m = cs.to_matrices();
        let mut z = cs.full_assignment();
        z[3] = Fr::from_u64(16); // wrong product
        assert!(!m.is_satisfied(&z));
    }

    #[test]
    fn mle_matches_direct_entries() {
        let cs = toy_cs();
        let m = cs.to_matrices();
        // On boolean points the MLE must equal the matrix entries. The A
        // matrix is 1 row x 4 cols; pad to 1 x 4 -> 0 row vars, 2 col vars.
        let a = &m.a;
        for j in 0..4usize {
            let ry = vec![
                Fr::from_u64((j & 1) as u64),
                Fr::from_u64(((j >> 1) & 1) as u64),
            ];
            let direct = a.rows[0]
                .iter()
                .find(|(col, _)| *col == j)
                .map(|(_, v)| *v)
                .unwrap_or_else(Fr::zero);
            assert_eq!(a.evaluate_mle(&[], &ry), direct);
        }
    }
}
