//! Sparse matrix form of an R1CS instance, in flat CSR layout.
//!
//! Both the QAP reduction (Groth16 path) and the Spartan-style sum-check
//! SNARK consume the constraint system as three sparse matrices `A`, `B`,
//! `C` with `Az ∘ Bz = Cz`. The matrices are stored in compressed sparse
//! row form — one `row_ptr` offset table over flat `col_idx`/`vals`
//! streams — so the prover's matrix-vector products and the verifier's
//! multilinear evaluations run over contiguous memory with no per-row
//! `Vec` indirection, and a compiled shape can be cached beside proving
//! keys as three flat buffers.

use zkvc_ff::Field;

use crate::cs::ConstraintSystem;

/// A sparse matrix in compressed sparse row (CSR) form: entry `k` of row
/// `i` lives at the flat index `row_ptr[i] + k`, with its column in
/// `col_idx` and its coefficient in `vals`. Rows are normalised: column
/// indices are strictly increasing within a row and no explicit zero
/// coefficients are stored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseMatrix<F: Field> {
    /// Number of rows (constraints).
    pub num_rows: usize,
    /// Number of columns (variables, including the constant-one column 0).
    pub num_cols: usize,
    /// Row offsets into `col_idx`/`vals`; `row_ptr.len() == num_rows + 1`.
    pub row_ptr: Vec<usize>,
    /// Column index of every non-zero entry, row-major.
    pub col_idx: Vec<usize>,
    /// Coefficient of every non-zero entry, row-major.
    pub vals: Vec<F>,
}

impl<F: Field> SparseMatrix<F> {
    /// An empty matrix with reserved capacity for `nnz` entries.
    pub fn with_capacity(num_rows: usize, num_cols: usize, nnz: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(num_rows + 1);
        row_ptr.push(0);
        SparseMatrix {
            num_rows: 0,
            num_cols,
            row_ptr,
            col_idx: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Appends a row from `(column, coefficient)` entries, normalising in
    /// place: entries are sorted by column, duplicate columns are summed,
    /// and zero coefficients dropped. The scratch buffer is consumed (and
    /// may be reused by the caller across rows).
    pub fn push_row_normalizing(&mut self, entries: &mut [(usize, F)]) {
        entries.sort_unstable_by_key(|(col, _)| *col);
        let mut i = 0;
        while i < entries.len() {
            let col = entries[i].0;
            let mut coeff = entries[i].1;
            i += 1;
            while i < entries.len() && entries[i].0 == col {
                coeff += entries[i].1;
                i += 1;
            }
            if !coeff.is_zero() {
                self.col_idx.push(col);
                self.vals.push(coeff);
            }
        }
        self.num_rows += 1;
        self.row_ptr.push(self.col_idx.len());
    }

    /// Approximate heap footprint of the CSR buffers in bytes (offset and
    /// column tables plus coefficient stream). Cache-eviction accounting,
    /// not an allocator-exact measure.
    pub fn approx_bytes(&self) -> usize {
        (self.row_ptr.len() + self.col_idx.len()) * core::mem::size_of::<usize>()
            + self.vals.len() * core::mem::size_of::<F>()
    }

    /// The `(column, coefficient)` entries of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, &F)> + '_ {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col_idx[lo..hi].iter().copied().zip(&self.vals[lo..hi])
    }

    /// Multiplies the matrix by a dense vector, writing one output per row
    /// with no intermediate allocation beyond the result vector. Explicit
    /// zero coefficients (possible only in hand-built matrices — the CSR
    /// builders drop them) are skipped.
    ///
    /// # Panics
    /// Panics if `z.len() != self.num_cols`.
    pub fn mul_vector(&self, z: &[F]) -> Vec<F> {
        assert_eq!(z.len(), self.num_cols, "assignment length mismatch");
        let mut out = Vec::with_capacity(self.num_rows);
        for i in 0..self.num_rows {
            let mut acc = F::zero();
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.vals[k];
                if v.is_zero() {
                    continue;
                }
                acc += z[self.col_idx[k]] * v;
            }
            out.push(acc);
        }
        out
    }

    /// Total number of stored entries.
    pub fn num_nonzero(&self) -> usize {
        self.vals.len()
    }

    /// Evaluates the multilinear extension of the matrix (viewed as a
    /// function `{0,1}^log(rows) x {0,1}^log(cols) -> F`) at `(rx, ry)`.
    ///
    /// Used by the Spartan-style verifier, which evaluates the public
    /// matrices itself instead of relying on a sparse commitment. Runs one
    /// flat pass over the CSR streams: rows whose `eq(rx, ·)` weight is
    /// zero are skipped whole, as are explicit zero coefficients.
    pub fn evaluate_mle(&self, rx: &[F], ry: &[F]) -> F {
        let chi_rx = zkvc_ff::poly::eq_evals(rx);
        let chi_ry = zkvc_ff::poly::eq_evals(ry);
        let mut acc = F::zero();
        for (i, weight) in chi_rx.iter().copied().enumerate().take(self.num_rows) {
            if weight.is_zero() {
                continue;
            }
            let mut row_acc = F::zero();
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.vals[k];
                if v.is_zero() {
                    continue;
                }
                row_acc += chi_ry[self.col_idx[k]] * v;
            }
            acc += weight * row_acc;
        }
        acc
    }
}

/// The three sparse matrices of an R1CS instance plus its dimensions.
#[derive(Clone, Debug)]
pub struct R1csMatrices<F: Field> {
    /// Left matrix.
    pub a: SparseMatrix<F>,
    /// Right matrix.
    pub b: SparseMatrix<F>,
    /// Output matrix.
    pub c: SparseMatrix<F>,
    /// Number of instance variables (excluding the constant one).
    pub num_instance: usize,
    /// Number of witness variables.
    pub num_witness: usize,
}

impl<F: Field> R1csMatrices<F> {
    /// Approximate heap footprint of the three CSR matrices in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.a.approx_bytes() + self.b.approx_bytes() + self.c.approx_bytes()
    }

    /// Extracts the matrices from a constraint system.
    pub fn from_constraint_system(cs: &ConstraintSystem<F>) -> Self {
        let num_cols = cs.num_variables();
        let (a_lcs, b_lcs, c_lcs) = cs.constraints();
        let build = |lcs: &[crate::lc::LinearCombination<F>]| {
            let mut sm = SparseMatrix::with_capacity(lcs.len(), num_cols, lcs.len());
            let mut scratch: Vec<(usize, F)> = Vec::new();
            for lc in lcs {
                scratch.clear();
                scratch.extend(lc.terms.iter().map(|(v, c)| (cs.variable_index(*v), *c)));
                sm.push_row_normalizing(&mut scratch);
            }
            sm
        };
        R1csMatrices {
            a: build(a_lcs),
            b: build(b_lcs),
            c: build(c_lcs),
            num_instance: cs.num_instance(),
            num_witness: cs.num_witness(),
        }
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.a.num_rows
    }

    /// Number of variables (columns), including the constant one.
    pub fn num_variables(&self) -> usize {
        self.a.num_cols
    }

    /// Checks `Az ∘ Bz = Cz` for a full assignment `z`.
    pub fn is_satisfied(&self, z: &[F]) -> bool {
        let az = self.a.mul_vector(z);
        let bz = self.b.mul_vector(z);
        let cz = self.c.mul_vector(z);
        az.iter()
            .zip(bz.iter())
            .zip(cz.iter())
            .all(|((a, b), c)| *a * *b == *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lc::LinearCombination;
    use zkvc_ff::{Fr, PrimeField};

    fn toy_cs() -> ConstraintSystem<Fr> {
        // (x + y) * y = z  with x=2, y=3, z=15
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_instance(Fr::from_u64(2));
        let y = cs.alloc_witness(Fr::from_u64(3));
        let z = cs.alloc_witness(Fr::from_u64(15));
        cs.enforce(
            LinearCombination::from(x) + LinearCombination::from(y),
            y.into(),
            z.into(),
        );
        cs
    }

    #[test]
    fn matrices_reflect_constraints() {
        let cs = toy_cs();
        let m = cs.to_matrices();
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.num_variables(), 4);
        assert_eq!(m.a.num_nonzero(), 2);
        assert_eq!(m.b.num_nonzero(), 1);
        assert_eq!(m.c.num_nonzero(), 1);
        assert!(m.is_satisfied(&cs.full_assignment()));
        // CSR layout: row 0 of A holds columns 1 (x) and 2 (y), sorted.
        assert_eq!(m.a.row_ptr, vec![0, 2]);
        assert_eq!(m.a.col_idx, vec![1, 2]);
        let row: Vec<(usize, Fr)> = m.a.row(0).map(|(c, v)| (c, *v)).collect();
        assert_eq!(row, vec![(1, Fr::one()), (2, Fr::one())]);
    }

    #[test]
    fn unsatisfied_assignment_detected() {
        let cs = toy_cs();
        let m = cs.to_matrices();
        let mut z = cs.full_assignment();
        z[3] = Fr::from_u64(16); // wrong product
        assert!(!m.is_satisfied(&z));
    }

    #[test]
    fn rows_normalise_duplicates_and_zeros() {
        let mut sm = SparseMatrix::<Fr>::with_capacity(2, 4, 4);
        // x + x - 2x cancels; y survives; an explicit zero is dropped.
        let mut row = vec![
            (2, Fr::from_u64(1)),
            (1, Fr::from_u64(1)),
            (1, Fr::from_u64(1)),
            (3, Fr::zero()),
            (1, -Fr::from_u64(2)),
        ];
        sm.push_row_normalizing(&mut row);
        assert_eq!(sm.num_nonzero(), 1);
        assert_eq!(sm.col_idx, vec![2]);
        let mut empty = Vec::new();
        sm.push_row_normalizing(&mut empty);
        assert_eq!(sm.num_rows, 2);
        assert_eq!(sm.row_ptr, vec![0, 1, 1]);
    }

    #[test]
    fn mle_matches_direct_entries() {
        let cs = toy_cs();
        let m = cs.to_matrices();
        // On boolean points the MLE must equal the matrix entries. The A
        // matrix is 1 row x 4 cols; pad to 1 x 4 -> 0 row vars, 2 col vars.
        let a = &m.a;
        for j in 0..4usize {
            let ry = vec![
                Fr::from_u64((j & 1) as u64),
                Fr::from_u64(((j >> 1) & 1) as u64),
            ];
            let direct = a
                .row(0)
                .find(|(col, _)| *col == j)
                .map_or_else(Fr::zero, |(_, v)| *v);
            assert_eq!(a.evaluate_mle(&[], &ry), direct);
        }
    }
}
