//! Canonical byte encoding for [`CompiledShape`] and [`WitnessAssignment`].
//!
//! This is the wire format distributed proving ships: a coordinator
//! compiles a shape once, encodes it here, and sends the bytes to each
//! worker exactly once (compile-once becomes ship-once). The format is
//! **versioned** (a leading version byte; future-versioned bytes are
//! rejected with a typed [`DecodeError::FutureVersion`], never a parse
//! panic), **digest-checked** (the shape digest travels verbatim — it is
//! computed over the raw pre-CSR emission order and cannot be recomputed
//! from the CSR matrices, so decoders validate it against the digest the
//! coordinator announced out of band), and **round-trip stable**
//! (`decode(encode(x)) == x`, byte for byte, for every valid input).
//!
//! Layout (all integers little-endian `u64` unless noted):
//!
//! ```text
//! shape   := version:u8 num_instance num_witness digest[32]
//!            matrix(A) matrix(B) matrix(C)
//!            list(expected_boolean) list(provided_boolean)
//! matrix  := num_rows num_cols list(row_ptr) list(col_idx) fields(vals)
//! list    := len entry*          (entries are u64)
//! fields  := len field*          (fields are 32-byte canonical LE)
//! witness := version:u8 fields(instance) fields(witness)
//! ```
//!
//! Decoding validates every structural invariant the rest of the codebase
//! assumes (CSR monotonicity, per-row sorted columns, canonical field
//! bytes, hint columns in bounds) so a decoded shape is safe to hand to
//! setup and proving without re-checking.

use core::fmt;

use zkvc_ff::PrimeField;

use crate::matrices::{R1csMatrices, SparseMatrix};
use crate::sink::{CompiledShape, WitnessAssignment};

/// Version byte emitted at the head of every encoded [`CompiledShape`].
pub const SHAPE_ENCODING_VERSION: u8 = 1;

/// Version byte emitted at the head of every encoded [`WitnessAssignment`].
pub const WITNESS_ENCODING_VERSION: u8 = 1;

/// Why a byte string failed to decode. Every variant names the field that
/// broke, so a coordinator log line is actionable without a hex dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The version byte is newer than this build understands. The bytes
    /// may be perfectly valid — the decoder is just too old.
    FutureVersion {
        /// What was being decoded ("shape", "witness", ...).
        context: &'static str,
        /// The version byte found at the head of the input.
        found: u8,
        /// The newest version this build can decode.
        supported: u8,
    },
    /// The input ended before the named field was complete.
    Truncated {
        /// The field being read when the input ran out.
        context: &'static str,
    },
    /// A structural invariant failed (CSR monotonicity, out-of-range
    /// column, non-canonical field bytes, ...).
    Malformed {
        /// The field that violated its invariant.
        context: &'static str,
        /// Human-readable detail of the violation.
        detail: String,
    },
    /// The digest carried in the bytes does not match the digest the
    /// caller expected (hex-encoded in the payloads).
    DigestMismatch {
        /// The digest the caller expected, hex-encoded.
        expected: String,
        /// The digest carried in the encoded bytes, hex-encoded.
        found: String,
    },
    /// Decoding succeeded but bytes were left over — the input is not a
    /// single canonical encoding.
    TrailingBytes {
        /// How many bytes remained unconsumed.
        extra: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::FutureVersion {
                context,
                found,
                supported,
            } => write!(
                f,
                "{context} encoding version {found} is newer than supported version {supported}"
            ),
            DecodeError::Truncated { context } => {
                write!(f, "input truncated while reading {context}")
            }
            DecodeError::Malformed { context, detail } => {
                write!(f, "malformed {context}: {detail}")
            }
            DecodeError::DigestMismatch { expected, found } => {
                write!(
                    f,
                    "shape digest mismatch: expected {expected}, found {found}"
                )
            }
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete encoding")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Incremental little-endian reader over an encoded byte string. Public
/// so `zkvc-runtime`'s codec layer can reuse the same primitives for its
/// own framed formats.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the head of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes, or reports which field was truncated.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        let bytes = self.take(8, context)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `u64` and narrows it to `usize`, rejecting
    /// values this platform cannot index.
    pub fn len(&mut self, context: &'static str) -> Result<usize, DecodeError> {
        let raw = self.u64(context)?;
        usize::try_from(raw).map_err(|_| DecodeError::Malformed {
            context,
            detail: format!("length {raw} overflows usize"),
        })
    }

    /// Asserts every byte was consumed (a canonical encoding has no
    /// trailing garbage).
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Appends a little-endian `u64` to `out`.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a length-prefixed list of `usize` values as `u64`s.
fn put_index_list(out: &mut Vec<u8>, values: &[usize]) {
    put_u64(out, values.len() as u64);
    for &v in values {
        put_u64(out, v as u64);
    }
}

/// Reads a length-prefixed `u64` list back into `usize`s, bounding the
/// claimed length against the bytes actually present so a hostile length
/// prefix cannot force a huge allocation.
fn take_index_list(
    r: &mut ByteReader<'_>,
    context: &'static str,
) -> Result<Vec<usize>, DecodeError> {
    let len = r.len(context)?;
    if len.checked_mul(8).is_none_or(|bytes| bytes > r.remaining()) {
        return Err(DecodeError::Truncated { context });
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.len(context)?);
    }
    Ok(out)
}

/// Appends a length-prefixed list of canonical 32-byte field elements.
fn put_field_list<F: PrimeField>(out: &mut Vec<u8>, values: &[F]) {
    put_u64(out, values.len() as u64);
    for v in values {
        out.extend_from_slice(&v.to_bytes_le());
    }
}

/// Reads a length-prefixed field list, rejecting non-canonical bytes
/// (values at or above the modulus decode to `None`).
fn take_field_list<F: PrimeField>(
    r: &mut ByteReader<'_>,
    context: &'static str,
) -> Result<Vec<F>, DecodeError> {
    let len = r.len(context)?;
    if len
        .checked_mul(32)
        .is_none_or(|bytes| bytes > r.remaining())
    {
        return Err(DecodeError::Truncated { context });
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let bytes: [u8; 32] = r.take(32, context)?.try_into().expect("32 bytes");
        let value = F::from_bytes_le(&bytes).ok_or_else(|| DecodeError::Malformed {
            context,
            detail: "non-canonical field element (value >= modulus)".into(),
        })?;
        out.push(value);
    }
    Ok(out)
}

fn put_matrix<F: PrimeField>(out: &mut Vec<u8>, m: &SparseMatrix<F>) {
    put_u64(out, m.num_rows as u64);
    put_u64(out, m.num_cols as u64);
    put_index_list(out, &m.row_ptr);
    put_index_list(out, &m.col_idx);
    put_field_list(out, &m.vals);
}

/// Reads one CSR matrix and validates every invariant `SparseMatrix`
/// maintains by construction: `row_ptr` spans `[0, nnz]` monotonically
/// with one entry per row plus a terminator, and each row's columns are
/// strictly increasing and in bounds.
fn take_matrix<F: PrimeField>(
    r: &mut ByteReader<'_>,
    context: &'static str,
) -> Result<SparseMatrix<F>, DecodeError> {
    let malformed = |detail: String| DecodeError::Malformed { context, detail };
    let num_rows = r.len(context)?;
    let num_cols = r.len(context)?;
    let row_ptr = take_index_list(r, context)?;
    let col_idx = take_index_list(r, context)?;
    let vals: Vec<F> = take_field_list(r, context)?;

    if row_ptr.len() != num_rows + 1 {
        return Err(malformed(format!(
            "row_ptr has {} entries, expected num_rows + 1 = {}",
            row_ptr.len(),
            num_rows + 1
        )));
    }
    if row_ptr[0] != 0 {
        return Err(malformed(format!(
            "row_ptr[0] = {}, expected 0",
            row_ptr[0]
        )));
    }
    if row_ptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(malformed("row_ptr is not monotone non-decreasing".into()));
    }
    let nnz = *row_ptr.last().expect("non-empty row_ptr");
    if col_idx.len() != nnz || vals.len() != nnz {
        return Err(malformed(format!(
            "row_ptr claims {} non-zeros but col_idx has {} and vals has {}",
            nnz,
            col_idx.len(),
            vals.len()
        )));
    }
    for (row, w) in row_ptr.windows(2).enumerate() {
        let cols = &col_idx[w[0]..w[1]];
        if cols.iter().any(|&c| c >= num_cols) {
            return Err(malformed(format!(
                "row {row} has a column index >= num_cols ({num_cols})"
            )));
        }
        if cols.windows(2).any(|c| c[0] >= c[1]) {
            return Err(malformed(format!(
                "row {row} columns are not strictly increasing"
            )));
        }
    }
    Ok(SparseMatrix {
        num_rows,
        num_cols,
        row_ptr,
        col_idx,
        vals,
    })
}

/// Validates a boolean-hint column list: sorted, deduplicated, in bounds.
fn check_hint_columns(
    columns: &[usize],
    num_cols: usize,
    context: &'static str,
) -> Result<(), DecodeError> {
    let malformed = |detail: String| DecodeError::Malformed { context, detail };
    if columns.windows(2).any(|w| w[0] >= w[1]) {
        return Err(malformed("columns are not sorted and deduplicated".into()));
    }
    if columns.last().is_some_and(|&c| c >= num_cols) {
        return Err(malformed(format!(
            "column index out of range (num variables = {num_cols})"
        )));
    }
    Ok(())
}

/// Encodes a compiled shape into its canonical, versioned byte form.
pub fn encode_shape<F: PrimeField>(shape: &CompiledShape<F>) -> Vec<u8> {
    let m = &shape.matrices;
    let mut out = Vec::with_capacity(1 + 48 + shape.approx_bytes());
    out.push(SHAPE_ENCODING_VERSION);
    put_u64(&mut out, m.num_instance as u64);
    put_u64(&mut out, m.num_witness as u64);
    out.extend_from_slice(&shape.digest);
    put_matrix(&mut out, &m.a);
    put_matrix(&mut out, &m.b);
    put_matrix(&mut out, &m.c);
    put_index_list(&mut out, &shape.expected_boolean);
    put_index_list(&mut out, &shape.provided_boolean);
    out
}

/// Decodes a canonical shape encoding, validating every structural
/// invariant. The digest is carried verbatim (it hashes the raw pre-CSR
/// emission order, which the CSR form cannot reproduce) — callers who
/// know which digest they asked for should prefer
/// [`decode_shape_expecting`].
pub fn decode_shape<F: PrimeField>(bytes: &[u8]) -> Result<CompiledShape<F>, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let version = r.u8("shape version")?;
    if version != SHAPE_ENCODING_VERSION {
        return Err(DecodeError::FutureVersion {
            context: "shape",
            found: version,
            supported: SHAPE_ENCODING_VERSION,
        });
    }
    let num_instance = r.len("num_instance")?;
    let num_witness = r.len("num_witness")?;
    let digest: [u8; 32] = r.take(32, "shape digest")?.try_into().expect("32 bytes");
    let a = take_matrix::<F>(&mut r, "matrix A")?;
    let b = take_matrix::<F>(&mut r, "matrix B")?;
    let c = take_matrix::<F>(&mut r, "matrix C")?;
    let expected_boolean = take_index_list(&mut r, "expected_boolean")?;
    let provided_boolean = take_index_list(&mut r, "provided_boolean")?;
    r.finish()?;

    let num_cols = 1 + num_instance + num_witness;
    for (name, m) in [("A", &a), ("B", &b), ("C", &c)] {
        if m.num_cols != num_cols {
            return Err(DecodeError::Malformed {
                context: "shape matrices",
                detail: format!(
                    "matrix {name} has {} columns, expected 1 + {num_instance} + {num_witness} = {num_cols}",
                    m.num_cols
                ),
            });
        }
        if m.num_rows != a.num_rows {
            return Err(DecodeError::Malformed {
                context: "shape matrices",
                detail: format!(
                    "matrix {name} has {} rows but matrix A has {}",
                    m.num_rows, a.num_rows
                ),
            });
        }
    }
    check_hint_columns(&expected_boolean, num_cols, "expected_boolean")?;
    check_hint_columns(&provided_boolean, num_cols, "provided_boolean")?;

    Ok(CompiledShape {
        matrices: R1csMatrices {
            a,
            b,
            c,
            num_instance,
            num_witness,
        },
        digest,
        expected_boolean,
        provided_boolean,
    })
}

/// Decodes a shape and additionally checks the carried digest equals
/// `expected` — the ship-once handshake, where the coordinator announces
/// a digest and the worker refuses bytes that do not match it.
pub fn decode_shape_expecting<F: PrimeField>(
    bytes: &[u8],
    expected: &[u8; 32],
) -> Result<CompiledShape<F>, DecodeError> {
    let shape = decode_shape::<F>(bytes)?;
    if shape.digest != *expected {
        return Err(DecodeError::DigestMismatch {
            expected: hex(expected),
            found: hex(&shape.digest),
        });
    }
    Ok(shape)
}

/// Encodes a witness assignment into its canonical, versioned byte form.
pub fn encode_witness<F: PrimeField>(assignment: &WitnessAssignment<F>) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(1 + 16 + 32 * (assignment.instance.len() + assignment.witness.len()));
    out.push(WITNESS_ENCODING_VERSION);
    put_field_list(&mut out, &assignment.instance);
    put_field_list(&mut out, &assignment.witness);
    out
}

/// Decodes a canonical witness encoding. Length agreement with a shape is
/// the caller's job (`WitnessFiller::finish_for` re-checks it against the
/// shape's counts before proving).
pub fn decode_witness<F: PrimeField>(bytes: &[u8]) -> Result<WitnessAssignment<F>, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let version = r.u8("witness version")?;
    if version != WITNESS_ENCODING_VERSION {
        return Err(DecodeError::FutureVersion {
            context: "witness",
            found: version,
            supported: WITNESS_ENCODING_VERSION,
        });
    }
    let instance = take_field_list(&mut r, "witness instance values")?;
    let witness = take_field_list(&mut r, "witness values")?;
    r.finish()?;
    Ok(WitnessAssignment { instance, witness })
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintSystem, LinearCombination};
    use zkvc_ff::Fr;

    fn sample_shape() -> CompiledShape<Fr> {
        let mut cs = ConstraintSystem::<Fr>::new();
        let nine = cs.alloc_instance(Fr::from_u64(9));
        let x = cs.alloc_witness(Fr::from_u64(3));
        let bit = cs.alloc_witness(Fr::from_u64(1));
        cs.enforce(
            LinearCombination::from(x),
            LinearCombination::from(x),
            LinearCombination::from(nine),
        );
        cs.enforce(
            LinearCombination::from(bit),
            LinearCombination::from(bit),
            LinearCombination::from(bit),
        );
        CompiledShape::from_cs(&cs)
    }

    fn assert_shapes_equal(a: &CompiledShape<Fr>, b: &CompiledShape<Fr>) {
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.matrices.num_instance, b.matrices.num_instance);
        assert_eq!(a.matrices.num_witness, b.matrices.num_witness);
        assert_eq!(a.matrices.a, b.matrices.a);
        assert_eq!(a.matrices.b, b.matrices.b);
        assert_eq!(a.matrices.c, b.matrices.c);
        assert_eq!(a.expected_boolean, b.expected_boolean);
        assert_eq!(a.provided_boolean, b.provided_boolean);
    }

    #[test]
    fn shape_round_trips_and_is_byte_stable() {
        let shape = sample_shape();
        let bytes = encode_shape(&shape);
        let back = decode_shape::<Fr>(&bytes).unwrap();
        assert_shapes_equal(&shape, &back);
        // Re-encoding the decoded shape reproduces the bytes exactly.
        assert_eq!(encode_shape(&back), bytes);
        // Digest-checked decode accepts the right digest, rejects others.
        decode_shape_expecting::<Fr>(&bytes, &shape.digest).unwrap();
        let err = decode_shape_expecting::<Fr>(&bytes, &[0u8; 32]).unwrap_err();
        assert!(matches!(err, DecodeError::DigestMismatch { .. }), "{err}");
    }

    #[test]
    fn witness_round_trips() {
        let w = WitnessAssignment::<Fr> {
            instance: vec![Fr::from_u64(9)],
            witness: vec![Fr::from_u64(3), Fr::from_u64(1)],
        };
        let bytes = encode_witness(&w);
        assert_eq!(decode_witness::<Fr>(&bytes).unwrap(), w);
        let empty = WitnessAssignment::<Fr> {
            instance: vec![],
            witness: vec![],
        };
        let bytes = encode_witness(&empty);
        assert_eq!(decode_witness::<Fr>(&bytes).unwrap(), empty);
    }

    #[test]
    fn future_versions_are_typed_errors_not_panics() {
        let mut bytes = encode_shape(&sample_shape());
        bytes[0] = SHAPE_ENCODING_VERSION + 1;
        match decode_shape::<Fr>(&bytes) {
            Err(DecodeError::FutureVersion { context, found, .. }) => {
                assert_eq!(context, "shape");
                assert_eq!(found, SHAPE_ENCODING_VERSION + 1);
            }
            other => panic!("expected FutureVersion, got {other:?}"),
        }
        let witness_bytes = vec![WITNESS_ENCODING_VERSION + 7];
        assert!(matches!(
            decode_witness::<Fr>(&witness_bytes),
            Err(DecodeError::FutureVersion { .. })
        ));
    }

    #[test]
    fn truncated_and_trailing_inputs_are_rejected() {
        let bytes = encode_shape(&sample_shape());
        for cut in [0, 1, 9, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_shape::<Fr>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated { .. } | DecodeError::Malformed { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
        let mut extra = bytes;
        extra.push(0);
        assert!(matches!(
            decode_shape::<Fr>(&extra),
            Err(DecodeError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn corrupted_structure_is_rejected() {
        let shape = sample_shape();
        let bytes = encode_shape(&shape);
        // A hostile length prefix cannot force a huge allocation: claim
        // u64::MAX entries where row_ptr's length lives.
        let mut huge = bytes;
        let row_ptr_len_at = 1 + 8 + 8 + 32 + 8 + 8;
        huge[row_ptr_len_at..row_ptr_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_shape::<Fr>(&huge),
            Err(DecodeError::Truncated { .. })
        ));
        // Non-canonical field bytes (>= modulus) are rejected.
        let wbytes = {
            let w = WitnessAssignment::<Fr> {
                instance: vec![Fr::from_u64(1)],
                witness: vec![],
            };
            let mut b = encode_witness(&w);
            let tail = b.len() - 1;
            b[tail - 31..].copy_from_slice(&[0xFF; 32]);
            b
        };
        assert!(matches!(
            decode_witness::<Fr>(&wbytes),
            Err(DecodeError::Malformed { .. })
        ));
    }
}
