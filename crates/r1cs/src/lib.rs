//! # zkvc-r1cs
//!
//! A Rank-1 Constraint System (R1CS) implementation with the gadget library
//! needed by zkVC's matrix-multiplication circuits and non-linear
//! approximations: boolean constraints, bit decomposition, comparisons,
//! equality/zero tests, selection and range checks.
//!
//! An R1CS instance is a list of constraints `<A_i, z> * <B_i, z> = <C_i, z>`
//! over the full assignment `z = (1, instance, witness)`. The paper's CRPC
//! and PSQ optimisations are expressed purely at this layer — they change
//! *which* constraints are generated for a matrix multiplication, not the
//! proof systems underneath.
//!
//! ## Example
//!
//! ```rust
//! use zkvc_r1cs::{ConstraintSystem, LinearCombination};
//! use zkvc_ff::{Fr, PrimeField};
//!
//! // Prove knowledge of x such that x * x = 9.
//! let mut cs = ConstraintSystem::<Fr>::new();
//! let nine = cs.alloc_instance(Fr::from_u64(9));
//! let x = cs.alloc_witness(Fr::from_u64(3));
//! cs.enforce(
//!     LinearCombination::from(x),
//!     LinearCombination::from(x),
//!     LinearCombination::from(nine),
//! );
//! assert!(cs.is_satisfied());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod analyze;
mod cs;
mod encode;
mod lc;
mod matrices;
mod sink;

pub mod gadgets;

pub use analyze::{Finding, Rule, Severity, ShapeReport};
pub use cs::{ConstraintSystem, SynthesisError};
pub use encode::{
    decode_shape, decode_shape_expecting, decode_witness, encode_shape, encode_witness, ByteReader,
    DecodeError, SHAPE_ENCODING_VERSION, WITNESS_ENCODING_VERSION,
};
pub use lc::{LinearCombination, Variable};
pub use matrices::{R1csMatrices, SparseMatrix};
pub use sink::{
    replay, shape_digest, CompiledShape, ConstraintSink, ShapeBuilder, SinkExt, WitnessAssignment,
    WitnessFiller,
};
