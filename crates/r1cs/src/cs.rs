//! The constraint system: variable allocation, constraint enforcement,
//! satisfiability checking and statistics.

use core::fmt;

use zkvc_ff::Field;

use crate::lc::{LinearCombination, Variable};
use crate::matrices::R1csMatrices;

/// Errors produced while synthesising or checking a constraint system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesisError {
    /// A constraint `A * B = C` does not hold under the current assignment;
    /// carries the index of the first violated constraint.
    Unsatisfied(usize),
    /// A referenced variable has no assigned value.
    AssignmentMissing,
    /// A value exceeded the range a gadget was told to assume.
    ValueOutOfRange(&'static str),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Unsatisfied(i) => write!(f, "constraint {i} is not satisfied"),
            SynthesisError::AssignmentMissing => write!(f, "variable assignment is missing"),
            SynthesisError::ValueOutOfRange(what) => {
                write!(f, "value out of range for gadget: {what}")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Borrowed `(A, B, C)` rows of a constraint system, as returned by
/// [`ConstraintSystem::constraints`].
pub type ConstraintTriples<'a, F> = (
    &'a [LinearCombination<F>],
    &'a [LinearCombination<F>],
    &'a [LinearCombination<F>],
);

/// A rank-1 constraint system with its witness assignment.
///
/// The full assignment vector is `z = (1, instance..., witness...)`; every
/// constraint states `<a_i, z> * <b_i, z> = <c_i, z>`.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSystem<F: Field> {
    instance: Vec<F>,
    witness: Vec<F>,
    a: Vec<LinearCombination<F>>,
    b: Vec<LinearCombination<F>>,
    c: Vec<LinearCombination<F>>,
    names: Vec<&'static str>,
    expected_boolean: Vec<Variable>,
    provided_boolean: Vec<Variable>,
}

impl<F: Field> ConstraintSystem<F> {
    /// Creates an empty constraint system.
    pub fn new() -> Self {
        ConstraintSystem {
            instance: vec![],
            witness: vec![],
            a: vec![],
            b: vec![],
            c: vec![],
            names: vec![],
            expected_boolean: vec![],
            provided_boolean: vec![],
        }
    }

    /// Records that downstream logic assumes `v` is boolean — analysis
    /// metadata consumed by the shape analyzer, never a constraint. See
    /// [`ConstraintSink::expect_boolean`](crate::ConstraintSink::expect_boolean).
    pub fn expect_boolean(&mut self, v: Variable) {
        self.expected_boolean.push(v);
    }

    /// Records that `v` is boolean by construction. See
    /// [`ConstraintSink::provide_boolean`](crate::ConstraintSink::provide_boolean).
    pub fn provide_boolean(&mut self, v: Variable) {
        self.provided_boolean.push(v);
    }

    /// The recorded boolean hints, as `(expected, provided)` variable
    /// lists in recording order.
    pub fn boolean_hints(&self) -> (&[Variable], &[Variable]) {
        (&self.expected_boolean, &self.provided_boolean)
    }

    /// Allocates a public-input variable with the given value.
    pub fn alloc_instance(&mut self, value: F) -> Variable {
        self.instance.push(value);
        Variable::Instance(self.instance.len() - 1)
    }

    /// Allocates a private witness variable with the given value.
    pub fn alloc_witness(&mut self, value: F) -> Variable {
        self.witness.push(value);
        Variable::Witness(self.witness.len() - 1)
    }

    /// Enforces the constraint `a * b = c`.
    pub fn enforce(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
    ) {
        self.enforce_named(a, b, c, "constraint");
    }

    /// Enforces a named constraint (the name shows up in diagnostics).
    pub fn enforce_named(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
        name: &'static str,
    ) {
        self.a.push(a);
        self.b.push(b);
        self.c.push(c);
        self.names.push(name);
    }

    /// Enforces that a linear combination equals zero
    /// (encoded as `lc * 1 = 0`).
    pub fn enforce_zero(&mut self, lc: LinearCombination<F>) {
        self.enforce(
            lc,
            LinearCombination::constant(F::one()),
            LinearCombination::zero(),
        );
    }

    /// Enforces equality of two linear combinations.
    pub fn enforce_equal(&mut self, a: LinearCombination<F>, b: LinearCombination<F>) {
        self.enforce_zero(a - b);
    }

    /// The value currently assigned to a variable.
    pub fn value(&self, v: Variable) -> F {
        match v {
            Variable::One => F::one(),
            Variable::Instance(i) => self.instance[i],
            Variable::Witness(i) => self.witness[i],
        }
    }

    /// Evaluates a linear combination under the current assignment.
    pub fn eval_lc(&self, lc: &LinearCombination<F>) -> F {
        lc.terms.iter().map(|(v, c)| self.value(*v) * *c).sum()
    }

    /// Returns `true` iff every constraint is satisfied.
    pub fn is_satisfied(&self) -> bool {
        self.which_unsatisfied().is_none()
    }

    /// Returns the index and name of the first violated constraint, if any.
    pub fn which_unsatisfied(&self) -> Option<(usize, &'static str)> {
        for i in 0..self.a.len() {
            let a = self.eval_lc(&self.a[i]);
            let b = self.eval_lc(&self.b[i]);
            let c = self.eval_lc(&self.c[i]);
            if a * b != c {
                return Some((i, self.names[i]));
            }
        }
        None
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.a.len()
    }

    /// Number of public-input variables (excluding the constant one).
    pub fn num_instance(&self) -> usize {
        self.instance.len()
    }

    /// Number of private witness variables.
    pub fn num_witness(&self) -> usize {
        self.witness.len()
    }

    /// Total number of variables including the constant one wire.
    pub fn num_variables(&self) -> usize {
        1 + self.instance.len() + self.witness.len()
    }

    /// Total number of "left wires": distinct variables appearing in the `A`
    /// linear combinations summed over all constraints. This is the quantity
    /// the paper's PSQ optimisation reduces.
    pub fn num_left_wires(&self) -> usize {
        self.a
            .iter()
            .map(super::lc::LinearCombination::num_wires)
            .sum()
    }

    /// Like [`Self::num_left_wires`] but for the `B` (right) wires.
    pub fn num_right_wires(&self) -> usize {
        self.b
            .iter()
            .map(super::lc::LinearCombination::num_wires)
            .sum()
    }

    /// Density of the constraint matrices: total non-zero entries in A, B, C.
    pub fn num_nonzero_entries(&self) -> (usize, usize, usize) {
        (
            self.a
                .iter()
                .map(super::lc::LinearCombination::num_wires)
                .sum(),
            self.b
                .iter()
                .map(super::lc::LinearCombination::num_wires)
                .sum(),
            self.c
                .iter()
                .map(super::lc::LinearCombination::num_wires)
                .sum(),
        )
    }

    /// The instance (public input) assignment, without the leading constant.
    pub fn instance_assignment(&self) -> &[F] {
        &self.instance
    }

    /// The witness assignment.
    pub fn witness_assignment(&self) -> &[F] {
        &self.witness
    }

    /// The full assignment `z = (1, instance, witness)`.
    pub fn full_assignment(&self) -> Vec<F> {
        let mut z = Vec::with_capacity(self.num_variables());
        z.push(F::one());
        z.extend_from_slice(&self.instance);
        z.extend_from_slice(&self.witness);
        z
    }

    /// Overwrites the witness assignment (used when re-running a fixed
    /// circuit structure with new values).
    ///
    /// # Panics
    /// Panics if the length differs from the allocated witness count.
    pub fn set_witness_assignment(&mut self, witness: Vec<F>) {
        assert_eq!(witness.len(), self.witness.len(), "witness length mismatch");
        self.witness = witness;
    }

    /// Overwrites the instance assignment.
    ///
    /// # Panics
    /// Panics if the length differs from the allocated instance count.
    pub fn set_instance_assignment(&mut self, instance: Vec<F>) {
        assert_eq!(
            instance.len(),
            self.instance.len(),
            "instance length mismatch"
        );
        self.instance = instance;
    }

    /// Borrow the constraint triples.
    pub fn constraints(&self) -> ConstraintTriples<'_, F> {
        (&self.a, &self.b, &self.c)
    }

    /// Maps a variable to its column index in the full assignment vector.
    pub fn variable_index(&self, v: Variable) -> usize {
        match v {
            Variable::One => 0,
            Variable::Instance(i) => 1 + i,
            Variable::Witness(i) => 1 + self.instance.len() + i,
        }
    }

    /// Extracts the sparse `A`, `B`, `C` matrices (used by the QAP reduction
    /// and the Spartan-style SNARK).
    pub fn to_matrices(&self) -> R1csMatrices<F> {
        R1csMatrices::from_constraint_system(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvc_ff::{Fr, PrimeField};

    /// x^3 + x + 5 = 35 (the classic toy circuit), x = 3.
    fn cubic_circuit(x_val: u64, out_val: u64) -> ConstraintSystem<Fr> {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(x_val));
        let out = cs.alloc_instance(Fr::from_u64(out_val));
        let x_sq = cs.alloc_witness(Fr::from_u64(x_val * x_val));
        let x_cube = cs.alloc_witness(Fr::from_u64(x_val * x_val * x_val));
        cs.enforce(x.into(), x.into(), x_sq.into());
        cs.enforce(x_sq.into(), x.into(), x_cube.into());
        // x_cube + x + 5 = out  ->  (x_cube + x + 5) * 1 = out
        cs.enforce(
            LinearCombination::from(x_cube)
                + LinearCombination::from(x)
                + LinearCombination::constant(Fr::from_u64(5)),
            LinearCombination::constant(Fr::one()),
            out.into(),
        );
        cs
    }

    #[test]
    fn satisfied_circuit() {
        let cs = cubic_circuit(3, 35);
        assert!(cs.is_satisfied());
        assert_eq!(cs.num_constraints(), 3);
        assert_eq!(cs.num_instance(), 1);
        assert_eq!(cs.num_witness(), 3);
        assert_eq!(cs.num_variables(), 5);
    }

    #[test]
    fn unsatisfied_circuit_reports_index() {
        let cs = cubic_circuit(4, 35);
        assert!(!cs.is_satisfied());
        assert!(cs.which_unsatisfied().is_some());
    }

    #[test]
    fn enforce_zero_and_equal() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = cs.alloc_witness(Fr::from_u64(9));
        let b = cs.alloc_witness(Fr::from_u64(9));
        cs.enforce_equal(a.into(), b.into());
        assert!(cs.is_satisfied());
        cs.enforce_zero(LinearCombination::from(a) - LinearCombination::from(b));
        assert!(cs.is_satisfied());
        cs.enforce_zero(LinearCombination::from(a));
        assert!(!cs.is_satisfied());
    }

    #[test]
    fn wire_counting() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let vars: Vec<_> = (0..4).map(|i| cs.alloc_witness(Fr::from_u64(i))).collect();
        // A row with 3 distinct wires, B with 1, C with 1
        let a_lc = LinearCombination::from(vars[0])
            + LinearCombination::from(vars[1])
            + LinearCombination::from(vars[2]);
        cs.enforce(a_lc, vars[3].into(), LinearCombination::zero());
        assert_eq!(cs.num_left_wires(), 3);
        assert_eq!(cs.num_right_wires(), 1);
    }

    #[test]
    fn full_assignment_layout() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let i0 = cs.alloc_instance(Fr::from_u64(10));
        let w0 = cs.alloc_witness(Fr::from_u64(20));
        let z = cs.full_assignment();
        assert_eq!(z, vec![Fr::one(), Fr::from_u64(10), Fr::from_u64(20)]);
        assert_eq!(cs.variable_index(Variable::One), 0);
        assert_eq!(cs.variable_index(i0), 1);
        assert_eq!(cs.variable_index(w0), 2);
    }

    #[test]
    fn reassigning_witness() {
        let mut cs = cubic_circuit(3, 35);
        // break it
        cs.set_witness_assignment(vec![Fr::from_u64(4), Fr::from_u64(16), Fr::from_u64(64)]);
        assert!(!cs.is_satisfied());
        // fix it again
        cs.set_witness_assignment(vec![Fr::from_u64(3), Fr::from_u64(9), Fr::from_u64(27)]);
        assert!(cs.is_satisfied());
    }
}
