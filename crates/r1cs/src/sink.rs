//! Two-pass circuit synthesis: the [`ConstraintSink`] driver trait and its
//! three drivers.
//!
//! Synthesis code (matmul strategies, gadgets, whole model compilers) is
//! written once against `ConstraintSink` and can then run in three modes:
//!
//! * **Legacy single pass** — [`ConstraintSystem`] implements the trait:
//!   values and structure are recorded together, exactly as before the
//!   split. This is what the eager builders and most tests use.
//! * **Shape pass** — [`ShapeBuilder`] records the constraint structure
//!   (variable layout, every linear combination) with *no field values*:
//!   [`ConstraintSink::lc_value`] returns `None`, so witness computation is
//!   skipped entirely. Finishing the pass yields a [`CompiledShape`]: flat
//!   CSR matrices plus the canonical shape digest. Setup and shape-digest
//!   computation run on this pass and never touch a witness.
//! * **Witness pass** — [`WitnessFiller`] evaluates the same synthesis code
//!   against an already-compiled shape, collecting only the flat
//!   instance/witness assignment ([`WitnessAssignment`]); constraints are
//!   counted but not stored, so a prove-many workload pays the nested
//!   linear-combination bookkeeping once per *shape*, not once per proof.
//!
//! The digest produced by the shape pass is byte-identical to
//! [`shape_digest`] over a legacy single-pass [`ConstraintSystem`] for the
//! same circuit, so key material cached under either pipeline is
//! interchangeable (and proofs produced before the split keep verifying).

use zkvc_ff::{Field, PrimeField};
use zkvc_hash::Sha256;

use crate::cs::ConstraintSystem;
use crate::lc::{LinearCombination, Variable};
use crate::matrices::{R1csMatrices, SparseMatrix};

/// Domain-separation prefix for shape digests (kept verbatim from the
/// digest's previous homes in `zkvc-runtime` and `zkvc-core`, so digests —
/// and everything keyed by them, like on-disk key caches and
/// deterministically derived CRS material — survive the two-pass refactor).
const DIGEST_DOMAIN: &[u8] = b"zkvc-runtime-circuit-shape-v1";

/// The driver interface of circuit synthesis: allocation, constraint
/// emission, and (optionally) value evaluation.
///
/// Written-once synthesis code takes `&mut dyn ConstraintSink<F>` (or a
/// generic `S: ConstraintSink<F> + ?Sized`) and works under all three
/// drivers. The contract: the *structure* a circuit emits (allocation
/// order, constraint order, linear combinations) must not depend on
/// whether the sink materialises values — witness data may only influence
/// the `Option` payloads.
pub trait ConstraintSink<F: Field> {
    /// Whether this pass materialises witness values. Shape passes return
    /// `false`; synthesis code should skip all value computation then
    /// (the `Option`-returning evaluators below already do).
    fn wants_values(&self) -> bool;

    /// Allocates a public-input variable. `value` must be `Some` whenever
    /// [`Self::wants_values`] is `true`.
    fn alloc_instance_opt(&mut self, value: Option<F>) -> Variable;

    /// Allocates a private witness variable. `value` must be `Some`
    /// whenever [`Self::wants_values`] is `true`.
    fn alloc_witness_opt(&mut self, value: Option<F>) -> Variable;

    /// Emits the constraint `a * b = c` (the name shows up in single-pass
    /// diagnostics and is ignored by the split passes).
    fn enforce_named(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
        name: &'static str,
    );

    /// Evaluates a linear combination under the current assignment, or
    /// `None` when this pass carries no values.
    fn lc_value(&self, lc: &LinearCombination<F>) -> Option<F>;

    /// The value assigned to a variable, or `None` when this pass carries
    /// no values.
    fn var_value(&self, v: Variable) -> Option<F>;

    /// Constraints emitted so far.
    fn num_constraints(&self) -> usize;

    /// Instance variables allocated so far.
    fn num_instance(&self) -> usize;

    /// Witness variables allocated so far.
    fn num_witness(&self) -> usize;

    /// Total variables allocated so far, including the constant-one wire.
    fn num_variables(&self) -> usize {
        1 + self.num_instance() + self.num_witness()
    }

    /// Records that downstream logic *assumes* this variable carries a
    /// boolean (0/1) value — e.g. a gadget that multiplies by it as a
    /// selector. The hint is pure analysis metadata: it emits no
    /// constraint, does not enter the shape digest, and defaults to a
    /// no-op so value-only passes can ignore it. The static analyzer
    /// flags every expected-boolean variable that is neither provided
    /// boolean nor pinned by an `x · (x − 1) = 0`-shaped row
    /// (`missing-booleanity`).
    fn expect_boolean(&mut self, _v: Variable) {}

    /// Records that this variable is boolean *by construction* — a gadget
    /// output whose booleanity follows from its defining constraints even
    /// though no literal `x · (x − 1) = 0` row exists (e.g. `is_zero`,
    /// whose output is forced to 0/1 by its two rows jointly). Like
    /// [`Self::expect_boolean`] this is analysis metadata only: no
    /// constraint, no digest contribution, default no-op.
    fn provide_boolean(&mut self, _v: Variable) {}

    /// Emits `a * b = c` under the generic constraint name.
    fn enforce(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
    ) {
        self.enforce_named(a, b, c, "constraint");
    }

    /// Emits `lc * 1 = 0`.
    fn enforce_zero(&mut self, lc: LinearCombination<F>) {
        self.enforce(
            lc,
            LinearCombination::constant(F::one()),
            LinearCombination::zero(),
        );
    }

    /// Emits `(a - b) * 1 = 0`.
    fn enforce_equal(&mut self, a: LinearCombination<F>, b: LinearCombination<F>) {
        self.enforce_zero(a - b);
    }
}

/// Convenience extension methods that take closures (kept out of the core
/// trait so it stays object-safe).
pub trait SinkExt<F: Field>: ConstraintSink<F> {
    /// Allocates a witness whose value is computed by `f` — but only when
    /// this pass wants values, so a shape pass never runs witness code.
    fn alloc_witness_lazy(&mut self, f: impl FnOnce() -> F) -> Variable {
        let value = self.wants_values().then(f);
        self.alloc_witness_opt(value)
    }

    /// Allocates an instance variable whose value is computed by `f` only
    /// when this pass wants values.
    fn alloc_instance_lazy(&mut self, f: impl FnOnce() -> F) -> Variable {
        let value = self.wants_values().then(f);
        self.alloc_instance_opt(value)
    }

    /// `Some(a * b)` of two linear combinations when values are carried,
    /// `None` otherwise — the common product-witness hint.
    fn lc_product(&self, a: &LinearCombination<F>, b: &LinearCombination<F>) -> Option<F> {
        Some(self.lc_value(a)? * self.lc_value(b)?)
    }
}

impl<F: Field, S: ConstraintSink<F> + ?Sized> SinkExt<F> for S {}

/// The legacy single-pass driver: structure and assignment recorded
/// together in a full [`ConstraintSystem`].
impl<F: Field> ConstraintSink<F> for ConstraintSystem<F> {
    fn wants_values(&self) -> bool {
        true
    }

    fn alloc_instance_opt(&mut self, value: Option<F>) -> Variable {
        self.alloc_instance(value.expect("single-pass synthesis requires an instance value"))
    }

    fn alloc_witness_opt(&mut self, value: Option<F>) -> Variable {
        self.alloc_witness(value.expect("single-pass synthesis requires a witness value"))
    }

    fn enforce_named(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
        name: &'static str,
    ) {
        ConstraintSystem::enforce_named(self, a, b, c, name);
    }

    fn lc_value(&self, lc: &LinearCombination<F>) -> Option<F> {
        Some(self.eval_lc(lc))
    }

    fn var_value(&self, v: Variable) -> Option<F> {
        Some(self.value(v))
    }

    fn num_constraints(&self) -> usize {
        ConstraintSystem::num_constraints(self)
    }

    fn num_instance(&self) -> usize {
        ConstraintSystem::num_instance(self)
    }

    fn num_witness(&self) -> usize {
        ConstraintSystem::num_witness(self)
    }

    fn expect_boolean(&mut self, v: Variable) {
        ConstraintSystem::expect_boolean(self, v);
    }

    fn provide_boolean(&mut self, v: Variable) {
        ConstraintSystem::provide_boolean(self, v);
    }
}

/// Raw (insertion-order, un-normalised) linear combinations of one matrix,
/// stored flat: `terms` is the concatenation of every row's terms and
/// `bounds[i]` is the end offset of row `i`.
#[derive(Clone, Debug, Default)]
struct RawMatrix<F: Field> {
    terms: Vec<(Variable, F)>,
    bounds: Vec<usize>,
}

impl<F: Field> RawMatrix<F> {
    fn push_lc(&mut self, lc: LinearCombination<F>) {
        self.terms.extend(lc.terms);
        self.bounds.push(self.terms.len());
    }
}

/// The witness-free shape pass: records variable layout and constraint
/// structure, never touching a value. [`ShapeBuilder::finish`] converts the
/// recording into a [`CompiledShape`].
#[derive(Clone, Debug, Default)]
pub struct ShapeBuilder<F: Field> {
    num_instance: usize,
    num_witness: usize,
    a: RawMatrix<F>,
    b: RawMatrix<F>,
    c: RawMatrix<F>,
    expected_boolean: Vec<Variable>,
    provided_boolean: Vec<Variable>,
}

impl<F: PrimeField> ShapeBuilder<F> {
    /// An empty shape recording.
    pub fn new() -> Self {
        ShapeBuilder {
            num_instance: 0,
            num_witness: 0,
            a: RawMatrix::default(),
            b: RawMatrix::default(),
            c: RawMatrix::default(),
            expected_boolean: Vec::new(),
            provided_boolean: Vec::new(),
        }
    }

    /// Finishes the pass: computes the canonical shape digest over the raw
    /// recording (byte-identical to [`shape_digest`] of an equivalent
    /// single-pass [`ConstraintSystem`]) and lowers the three matrices to
    /// normalised CSR form.
    pub fn finish(self) -> CompiledShape<F> {
        let ni = self.num_instance;
        let nw = self.num_witness;
        let num_rows = self.a.bounds.len();
        let num_cols = 1 + ni + nw;

        let mut h = Sha256::new();
        absorb_header(&mut h, ni, nw, num_rows);
        for (tag, m) in [(b'A', &self.a), (b'B', &self.b), (b'C', &self.c)] {
            h.update(&[tag]);
            let mut start = 0;
            for &end in &m.bounds {
                absorb_lc(&mut h, &m.terms[start..end], ni);
                start = end;
            }
        }
        let digest = h.finalize();

        let lower = |m: RawMatrix<F>| -> SparseMatrix<F> {
            let mut sm = SparseMatrix::with_capacity(num_rows, num_cols, m.terms.len());
            let mut scratch: Vec<(usize, F)> = Vec::new();
            let mut start = 0;
            for &end in &m.bounds {
                scratch.clear();
                scratch.extend(
                    m.terms[start..end]
                        .iter()
                        .map(|(v, coeff)| (variable_column(*v, ni), *coeff)),
                );
                sm.push_row_normalizing(&mut scratch);
                start = end;
            }
            sm
        };

        CompiledShape {
            matrices: R1csMatrices {
                a: lower(self.a),
                b: lower(self.b),
                c: lower(self.c),
                num_instance: ni,
                num_witness: nw,
            },
            digest,
            expected_boolean: hint_columns(&self.expected_boolean, ni),
            provided_boolean: hint_columns(&self.provided_boolean, ni),
        }
    }
}

/// Lowers recorded boolean-hint variables to a sorted, deduplicated list
/// of assignment-vector columns. Hints are analysis metadata and are
/// deliberately *not* part of the shape digest.
fn hint_columns(vars: &[Variable], num_instance: usize) -> Vec<usize> {
    let mut cols: Vec<usize> = vars
        .iter()
        .map(|v| variable_column(*v, num_instance))
        .collect();
    cols.sort_unstable();
    cols.dedup();
    cols
}

impl<F: PrimeField> ConstraintSink<F> for ShapeBuilder<F> {
    fn wants_values(&self) -> bool {
        false
    }

    fn alloc_instance_opt(&mut self, _value: Option<F>) -> Variable {
        self.num_instance += 1;
        Variable::Instance(self.num_instance - 1)
    }

    fn alloc_witness_opt(&mut self, _value: Option<F>) -> Variable {
        self.num_witness += 1;
        Variable::Witness(self.num_witness - 1)
    }

    fn enforce_named(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
        _name: &'static str,
    ) {
        self.a.push_lc(a);
        self.b.push_lc(b);
        self.c.push_lc(c);
    }

    fn lc_value(&self, _lc: &LinearCombination<F>) -> Option<F> {
        None
    }

    fn var_value(&self, _v: Variable) -> Option<F> {
        None
    }

    fn num_constraints(&self) -> usize {
        self.a.bounds.len()
    }

    fn num_instance(&self) -> usize {
        self.num_instance
    }

    fn num_witness(&self) -> usize {
        self.num_witness
    }

    fn expect_boolean(&mut self, v: Variable) {
        self.expected_boolean.push(v);
    }

    fn provide_boolean(&mut self, v: Variable) {
        self.provided_boolean.push(v);
    }
}

/// The witness pass: evaluates synthesis against an already-compiled shape,
/// collecting only the flat assignment. Constraints are counted (so the
/// result can be validated against the shape) but never stored.
///
/// Linear-combination evaluation is memoised per pass: synthesis code that
/// reuses a folded combination many times (CRPC's `x_i`/`w_k` row folds are
/// evaluated once per output cell) pays the term-by-term sum once and a
/// hash lookup thereafter. Variable values are append-only within a pass,
/// so a cached sum can never go stale; the cache dies with the pass. The
/// memoised value is the *same field element* the uncached walk produces —
/// field addition is exact — so assignments are bit-identical either way
/// (asserted in tests).
#[derive(Clone, Debug, Default)]
pub struct WitnessFiller<F: Field> {
    instance: Vec<F>,
    witness: Vec<F>,
    constraints: usize,
    lc_cache: core::cell::RefCell<std::collections::HashMap<LinearCombination<F>, F>>,
    lc_cache_hits: core::cell::Cell<usize>,
}

/// Linear combinations shorter than this are evaluated directly: a one-term
/// sum is cheaper than hashing it.
const LC_CACHE_MIN_TERMS: usize = 2;

impl<F: Field> WitnessFiller<F> {
    /// An empty witness pass.
    pub fn new() -> Self {
        WitnessFiller::default()
    }

    /// How many [`ConstraintSink::lc_value`] calls were answered from the
    /// per-pass evaluation cache (diagnostics for benches and tests).
    pub fn lc_cache_hits(&self) -> usize {
        self.lc_cache_hits.get()
    }

    /// Evaluates a linear combination term by term, with no memoisation.
    fn eval_lc_uncached(&self, lc: &LinearCombination<F>) -> F {
        lc.terms
            .iter()
            .map(|(v, c)| self.var_value(*v).expect("witness pass carries values") * *c)
            .sum()
    }

    /// Finishes the pass without shape validation.
    pub fn finish(self) -> WitnessAssignment<F> {
        WitnessAssignment {
            instance: self.instance,
            witness: self.witness,
        }
    }

    /// Finishes the pass, validating the layout against a compiled shape.
    ///
    /// # Panics
    /// Panics if the allocation or constraint counts diverge from the
    /// shape — which means the circuit's `synthesize` is not
    /// pass-oblivious (a bug in the circuit implementation).
    pub fn finish_for(self, shape: &CompiledShape<F>) -> WitnessAssignment<F> {
        assert_eq!(
            (self.instance.len(), self.witness.len(), self.constraints),
            (
                shape.num_instance(),
                shape.num_witness(),
                shape.num_constraints()
            ),
            "witness pass diverged from the compiled shape"
        );
        self.finish()
    }
}

impl<F: Field> ConstraintSink<F> for WitnessFiller<F> {
    fn wants_values(&self) -> bool {
        true
    }

    fn alloc_instance_opt(&mut self, value: Option<F>) -> Variable {
        self.instance
            .push(value.expect("witness pass requires an instance value"));
        Variable::Instance(self.instance.len() - 1)
    }

    fn alloc_witness_opt(&mut self, value: Option<F>) -> Variable {
        self.witness
            .push(value.expect("witness pass requires a witness value"));
        Variable::Witness(self.witness.len() - 1)
    }

    fn enforce_named(
        &mut self,
        _a: LinearCombination<F>,
        _b: LinearCombination<F>,
        _c: LinearCombination<F>,
        _name: &'static str,
    ) {
        self.constraints += 1;
    }

    fn lc_value(&self, lc: &LinearCombination<F>) -> Option<F> {
        if lc.terms.len() < LC_CACHE_MIN_TERMS {
            return Some(self.eval_lc_uncached(lc));
        }
        if let Some(v) = self.lc_cache.borrow().get(lc) {
            self.lc_cache_hits.set(self.lc_cache_hits.get() + 1);
            return Some(*v);
        }
        let v = self.eval_lc_uncached(lc);
        self.lc_cache.borrow_mut().insert(lc.clone(), v);
        Some(v)
    }

    fn var_value(&self, v: Variable) -> Option<F> {
        Some(match v {
            Variable::One => F::one(),
            Variable::Instance(i) => self.instance[i],
            Variable::Witness(i) => self.witness[i],
        })
    }

    fn num_constraints(&self) -> usize {
        self.constraints
    }

    fn num_instance(&self) -> usize {
        self.instance.len()
    }

    fn num_witness(&self) -> usize {
        self.witness.len()
    }
}

/// The output of a witness pass: the flat instance and witness assignment
/// of one statement, against a shape compiled once elsewhere.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessAssignment<F: Field> {
    /// Public-input values, in allocation order.
    pub instance: Vec<F>,
    /// Private witness values, in allocation order.
    pub witness: Vec<F>,
}

impl<F: Field> WitnessAssignment<F> {
    /// The full assignment vector `z = (1, instance, witness)`.
    pub fn full(&self) -> Vec<F> {
        let mut z = Vec::with_capacity(1 + self.instance.len() + self.witness.len());
        z.push(F::one());
        z.extend_from_slice(&self.instance);
        z.extend_from_slice(&self.witness);
        z
    }
}

/// A circuit structure compiled by the witness-free shape pass (or lowered
/// from a legacy [`ConstraintSystem`]): normalised CSR matrices plus the
/// canonical shape digest. This is the reusable artifact proof-system
/// setup consumes and key caches store beside the keys.
#[derive(Clone, Debug)]
pub struct CompiledShape<F: Field> {
    /// The `A`, `B`, `C` matrices in flat CSR form.
    pub matrices: R1csMatrices<F>,
    /// The canonical shape digest (see [`shape_digest`]).
    pub digest: [u8; 32],
    /// Assignment-vector columns synthesis declared boolean-*expected*
    /// (sorted, deduplicated). Analysis metadata only: the digest does not
    /// cover it, so hint changes never invalidate cached key material.
    pub expected_boolean: Vec<usize>,
    /// Assignment-vector columns synthesis declared boolean *by
    /// construction* (sorted, deduplicated). Same metadata-only status as
    /// [`Self::expected_boolean`].
    pub provided_boolean: Vec<usize>,
}

impl<F: PrimeField> CompiledShape<F> {
    /// Lowers a legacy single-pass constraint system into a compiled shape.
    /// The digest equals [`shape_digest`] of `cs`, so both pipelines cache
    /// and verify interchangeably.
    pub fn from_cs(cs: &ConstraintSystem<F>) -> Self {
        let ni = cs.num_instance();
        let (expected, provided) = cs.boolean_hints();
        CompiledShape {
            matrices: cs.to_matrices(),
            digest: shape_digest(cs),
            expected_boolean: hint_columns(expected, ni),
            provided_boolean: hint_columns(provided, ni),
        }
    }
}

impl<F: Field> CompiledShape<F> {
    /// Number of constraints (rows).
    pub fn num_constraints(&self) -> usize {
        self.matrices.num_constraints()
    }

    /// Number of variables (columns), including the constant one.
    pub fn num_variables(&self) -> usize {
        self.matrices.num_variables()
    }

    /// Number of instance variables (excluding the constant one).
    pub fn num_instance(&self) -> usize {
        self.matrices.num_instance
    }

    /// Number of witness variables.
    pub fn num_witness(&self) -> usize {
        self.matrices.num_witness
    }

    /// Checks `Az ∘ Bz = Cz` for an assignment produced by the witness
    /// pass.
    pub fn is_satisfied(&self, assignment: &WitnessAssignment<F>) -> bool {
        self.matrices.is_satisfied(&assignment.full())
    }

    /// Approximate heap footprint of the compiled CSR buffers in bytes —
    /// what a byte-bounded key cache charges this shape against its budget.
    pub fn approx_bytes(&self) -> usize {
        self.matrices.approx_bytes()
    }
}

/// Replays a fully-built constraint system into a sink: every variable is
/// re-allocated (with its value) and every constraint re-emitted, in the
/// original order. This is how legacy eagerly-built circuits participate in
/// the two-pass pipeline.
pub fn replay<F: Field>(cs: &ConstraintSystem<F>, sink: &mut dyn ConstraintSink<F>) {
    let wants = sink.wants_values();
    for v in cs.instance_assignment() {
        sink.alloc_instance_opt(wants.then_some(*v));
    }
    for v in cs.witness_assignment() {
        sink.alloc_witness_opt(wants.then_some(*v));
    }
    let (a, b, c) = cs.constraints();
    for i in 0..a.len() {
        sink.enforce_named(a[i].clone(), b[i].clone(), c[i].clone(), "replay");
    }
    let (expected, provided) = cs.boolean_hints();
    for v in expected {
        sink.expect_boolean(*v);
    }
    for v in provided {
        sink.provide_boolean(*v);
    }
}

/// Column index of a variable in the full assignment vector, given the
/// final instance count.
fn variable_column(v: Variable, num_instance: usize) -> usize {
    match v {
        Variable::One => 0,
        Variable::Instance(i) => 1 + i,
        Variable::Witness(i) => 1 + num_instance + i,
    }
}

fn absorb_header(h: &mut Sha256, num_instance: usize, num_witness: usize, num_constraints: usize) {
    h.update(DIGEST_DOMAIN);
    h.update(&(num_instance as u64).to_le_bytes());
    h.update(&(num_witness as u64).to_le_bytes());
    h.update(&(num_constraints as u64).to_le_bytes());
}

fn absorb_lc<F: PrimeField>(h: &mut Sha256, terms: &[(Variable, F)], num_instance: usize) {
    h.update(&(terms.len() as u64).to_le_bytes());
    for (var, coeff) in terms {
        h.update(&(variable_column(*var, num_instance) as u64).to_le_bytes());
        h.update(&coeff.to_bytes_le());
    }
}

/// Computes the canonical shape digest of a constraint system: a
/// collision-resistant fingerprint of the R1CS *structure* (constraint
/// matrices, coefficient values and the instance/witness split — not the
/// assignment).
///
/// Two constraint systems get the same digest iff Groth16 CRS material and
/// Spartan preprocessed state are interchangeable between them. The
/// encoding is injective: every section is length-prefixed and each
/// linear-combination term serialises its resolved column index alongside
/// the canonical coefficient bytes. [`ShapeBuilder::finish`] computes the
/// same digest from a witness-free shape pass.
pub fn shape_digest<F: PrimeField>(cs: &ConstraintSystem<F>) -> [u8; 32] {
    let ni = cs.num_instance();
    let mut h = Sha256::new();
    absorb_header(&mut h, ni, cs.num_witness(), cs.num_constraints());
    let (a, b, c) = cs.constraints();
    for (tag, lcs) in [(b'A', a), (b'B', b), (b'C', c)] {
        h.update(&[tag]);
        for lc in lcs {
            absorb_lc(&mut h, &lc.terms, ni);
        }
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvc_ff::Fr;

    /// Emits the cubic circuit x^3 + x + 5 = out through any sink — the
    /// same code drives all three passes.
    fn emit_cubic(sink: &mut dyn ConstraintSink<Fr>, x_val: u64) {
        let out = sink.alloc_instance_lazy(|| Fr::from_u64(x_val * x_val * x_val + x_val + 5));
        let x = sink.alloc_witness_lazy(|| Fr::from_u64(x_val));
        let x2 = sink.alloc_witness_lazy(|| Fr::from_u64(x_val * x_val));
        let x3_val = sink.lc_value(&x2.into()).map(|v| v * Fr::from_u64(x_val));
        let x3 = sink.alloc_witness_opt(x3_val);
        sink.enforce(x.into(), x.into(), x2.into());
        sink.enforce(x2.into(), x.into(), x3.into());
        sink.enforce(
            LinearCombination::from(x3)
                + LinearCombination::from(x)
                + LinearCombination::constant(Fr::from_u64(5)),
            LinearCombination::constant(Fr::one()),
            out.into(),
        );
    }

    #[test]
    fn three_passes_agree() {
        // Single pass.
        let mut cs = ConstraintSystem::<Fr>::new();
        emit_cubic(&mut cs, 3);
        assert!(cs.is_satisfied());

        // Shape pass: no values requested, same structure, same digest.
        let mut sb = ShapeBuilder::<Fr>::new();
        emit_cubic(&mut sb, 3);
        let shape = sb.finish();
        assert_eq!(shape.num_constraints(), cs.num_constraints());
        assert_eq!(shape.num_instance(), cs.num_instance());
        assert_eq!(shape.num_witness(), cs.num_witness());
        assert_eq!(shape.digest, shape_digest(&cs));
        assert_eq!(shape.matrices.a, cs.to_matrices().a);
        assert_eq!(shape.matrices.b, cs.to_matrices().b);
        assert_eq!(shape.matrices.c, cs.to_matrices().c);

        // Witness pass: values only, validated against the shape.
        let mut wf = WitnessFiller::<Fr>::new();
        emit_cubic(&mut wf, 3);
        let w = wf.finish_for(&shape);
        assert_eq!(w.full(), cs.full_assignment());
        assert!(shape.is_satisfied(&w));

        // A different statement of the same shape.
        let mut wf = WitnessFiller::<Fr>::new();
        emit_cubic(&mut wf, 5);
        let w5 = wf.finish_for(&shape);
        assert!(shape.is_satisfied(&w5));
        assert_ne!(w5.instance, w.instance);
    }

    #[test]
    fn shape_pass_never_materialises_values() {
        struct Bomb;
        let mut sb = ShapeBuilder::<Fr>::new();
        let sink: &mut dyn ConstraintSink<Fr> = &mut sb;
        assert!(!sink.wants_values());
        let w = sink.alloc_witness_lazy(|| {
            let _bomb = Bomb;
            panic!("witness closure invoked during the shape pass")
        });
        assert!(sink.lc_value(&w.into()).is_none());
        assert!(sink.var_value(w).is_none());
        sink.enforce_zero(LinearCombination::from(w) - LinearCombination::from(w));
        let shape = sb.finish();
        assert_eq!(shape.num_constraints(), 1);
        assert_eq!(shape.num_witness(), 1);
    }

    #[test]
    fn replay_reproduces_digest_and_assignment() {
        let mut cs = ConstraintSystem::<Fr>::new();
        emit_cubic(&mut cs, 4);

        let mut sb = ShapeBuilder::<Fr>::new();
        replay(&cs, &mut sb);
        let shape = sb.finish();
        assert_eq!(shape.digest, shape_digest(&cs));

        let mut wf = WitnessFiller::<Fr>::new();
        replay(&cs, &mut wf);
        assert_eq!(wf.finish_for(&shape).full(), cs.full_assignment());
    }

    #[test]
    fn compiled_shape_from_cs_matches_shape_pass() {
        let mut cs = ConstraintSystem::<Fr>::new();
        emit_cubic(&mut cs, 6);
        let from_cs = CompiledShape::from_cs(&cs);
        let mut sb = ShapeBuilder::<Fr>::new();
        emit_cubic(&mut sb, 9);
        let from_pass = sb.finish();
        assert_eq!(from_cs.digest, from_pass.digest);
        assert_eq!(from_cs.matrices.a, from_pass.matrices.a);
        assert_eq!(from_cs.matrices.c, from_pass.matrices.c);
    }

    #[test]
    fn witness_pass_divergence_is_detected() {
        let mut sb = ShapeBuilder::<Fr>::new();
        emit_cubic(&mut sb, 3);
        let shape = sb.finish();
        let mut wf = WitnessFiller::<Fr>::new();
        emit_cubic(&mut wf, 3);
        wf.alloc_witness_opt(Some(Fr::zero())); // extra allocation
        let result = std::panic::catch_unwind(move || wf.finish_for(&shape));
        assert!(result.is_err());
    }

    /// A circuit that re-evaluates one shared multi-term combination per
    /// output — the access pattern the `lc_value` memo exists for.
    fn emit_shared_lc(sink: &mut dyn ConstraintSink<Fr>, seed: u64, uses: usize) {
        let vars: Vec<Variable> = (0..6)
            .map(|i| sink.alloc_witness_lazy(|| Fr::from_u64(seed.wrapping_mul(i + 3) ^ i)))
            .collect();
        let shared = vars
            .iter()
            .enumerate()
            .fold(LinearCombination::<Fr>::zero(), |lc, (i, v)| {
                lc.with_term(*v, Fr::from_u64(i as u64 + 1))
            });
        for _ in 0..uses {
            let prod = sink.lc_product(&shared, &shared);
            let sq = sink.alloc_witness_opt(prod);
            sink.enforce(shared.clone(), shared.clone(), sq.into());
        }
    }

    #[test]
    fn lc_memoisation_is_bit_identical_and_hits() {
        // Reference: the legacy single pass (no memo) and a shape to
        // validate against.
        let mut cs = ConstraintSystem::<Fr>::new();
        emit_shared_lc(&mut cs, 0xfeed, 8);
        assert!(cs.is_satisfied());
        let mut sb = ShapeBuilder::<Fr>::new();
        emit_shared_lc(&mut sb, 0xfeed, 8);
        let shape = sb.finish();

        let mut wf = WitnessFiller::<Fr>::new();
        emit_shared_lc(&mut wf, 0xfeed, 8);
        // `lc_product` evaluates the shared LC twice per use; only the
        // first call pays the term walk.
        assert!(wf.lc_cache_hits() >= 15, "hits = {}", wf.lc_cache_hits());
        let w = wf.finish_for(&shape);
        assert_eq!(
            w.full(),
            cs.full_assignment(),
            "memoised pass must be bit-identical to the uncached pass"
        );
        assert!(shape.is_satisfied(&w));
    }

    #[test]
    fn lc_memo_matches_uncached_evaluation_per_call() {
        let mut wf = WitnessFiller::<Fr>::new();
        emit_shared_lc(&mut wf, 0x5eed, 3);
        // Every cached entry equals a fresh uncached evaluation of its key.
        let cache = wf.lc_cache.borrow();
        assert!(!cache.is_empty());
        for (lc, v) in cache.iter() {
            assert_eq!(*v, wf.eval_lc_uncached(lc));
        }
    }

    #[test]
    fn digest_normalisation_is_not_applied() {
        // The digest covers the raw emission order (insertion-order terms,
        // duplicates kept), matching the pre-split encoding exactly: two
        // structurally identical circuits emitted with different raw term
        // orders digest differently, while the CSR matrices normalise.
        let x = Variable::Witness(0);
        let y = Variable::Witness(1);
        let build = |swap: bool| {
            let mut sb = ShapeBuilder::<Fr>::new();
            sb.alloc_witness_opt(None);
            sb.alloc_witness_opt(None);
            let lc = if swap {
                LinearCombination::from(y) + LinearCombination::from(x)
            } else {
                LinearCombination::from(x) + LinearCombination::from(y)
            };
            sb.enforce_zero(lc);
            sb.finish()
        };
        let a = build(false);
        let b = build(true);
        assert_ne!(a.digest, b.digest);
        assert_eq!(a.matrices.a, b.matrices.a);
    }
}
