//! Static soundness analysis over compiled circuit shapes.
//!
//! Under-constrained circuits are the canonical ZKP soundness bug class:
//! a prover can satisfy the R1CS with values the statement never meant to
//! admit, and no amount of honest-path testing notices, because honest
//! witnesses satisfy under-constrained systems too. This module lints a
//! [`CompiledShape`] — the flat CSR matrices every shipping circuit is
//! already lowered to — for the structural signatures of that bug class,
//! entirely witness-free.
//!
//! The entry point is [`CompiledShape::analyze`], which takes the number
//! of public outputs the circuit *declares* (its statement-level
//! interface, independent of how many instance columns synthesis actually
//! allocated) and runs the full lint catalog:
//!
//! | rule id                 | severity | fires when                                   |
//! |-------------------------|----------|----------------------------------------------|
//! | `unconstrained-witness` | deny     | a witness column no constraint can pin       |
//! | `unbound-public`        | deny     | a declared public output no constraint pins  |
//! | `constant-violation`    | deny     | a row unsatisfiable on constants alone       |
//! | `missing-booleanity`    | deny     | a boolean-expected column with no 0/1 proof  |
//! | `dead-constraint`       | warn     | a row trivially satisfied for every `z`      |
//! | `duplicate-constraint`  | warn     | two rows identical up to the `A`/`B` swap    |
//!
//! Every finding carries a stable rule id, a severity, and the constraint
//! row / variable column it anchors to, so reports are machine-checkable
//! (the `zkvc analyze` CLI gates CI on them) and waivable by fingerprint.

use zkvc_ff::PrimeField;

use crate::sink::CompiledShape;

/// How bad a finding is. Ordered: `Info < Warn < Deny`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never gates.
    Info,
    /// Suspicious structure that wastes constraints but cannot break
    /// soundness by itself.
    Warn,
    /// A soundness hole: the shape admits assignments the statement
    /// forbids, or can never be satisfied at all.
    Deny,
}

impl Severity {
    /// The lowercase token used in reports, CLI flags and baselines.
    pub fn token(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parses the token produced by [`Severity::token`].
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl core::fmt::Display for Severity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.token())
    }
}

/// The lint catalog: every rule the analyzer knows, with a stable id.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A witness column appears in no constraint that can pin its value:
    /// either in no row at all, or only on the `A` side of rows whose `B`
    /// is identically zero (and vice versa), where the product vanishes
    /// regardless of the column's value.
    UnconstrainedWitness,
    /// A declared public output is not pinned: the circuit declares more
    /// public outputs than it allocates instance columns (shape-only
    /// binding — a forgeable statement), or an allocated instance column
    /// appears in no constraint that can pin it.
    UnboundPublic,
    /// A row that holds for **no** assignment: both sides and the target
    /// are statically constant and `a · b ≠ c`. The circuit can never be
    /// satisfied, so every proof attempt fails.
    ConstantViolation,
    /// A column synthesis marked boolean-expected has neither a
    /// boolean-by-construction marker nor any row forcing it into
    /// `{0, 1}` (an `x · (x − 1) = 0`-shaped row, up to scaling and the
    /// `A`/`B` swap — `x · x = x` included).
    MissingBooleanity,
    /// A row satisfied by **every** assignment: both sides' product and
    /// the target are statically constant and equal. Wastes a constraint
    /// and usually signals a gadget emitting vacuous rows.
    DeadConstraint,
    /// Two rows with identical `(A, B, C)` triples (up to the commutative
    /// `A`/`B` swap): the second pins nothing new.
    DuplicateConstraint,
}

impl Rule {
    /// Every rule, in report order (denies first).
    pub const ALL: [Rule; 6] = [
        Rule::UnconstrainedWitness,
        Rule::UnboundPublic,
        Rule::ConstantViolation,
        Rule::MissingBooleanity,
        Rule::DeadConstraint,
        Rule::DuplicateConstraint,
    ];

    /// The stable rule id used in reports and baselines.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnconstrainedWitness => "unconstrained-witness",
            Rule::UnboundPublic => "unbound-public",
            Rule::ConstantViolation => "constant-violation",
            Rule::MissingBooleanity => "missing-booleanity",
            Rule::DeadConstraint => "dead-constraint",
            Rule::DuplicateConstraint => "duplicate-constraint",
        }
    }

    /// The severity every finding of this rule carries.
    pub fn severity(self) -> Severity {
        match self {
            Rule::UnconstrainedWitness
            | Rule::UnboundPublic
            | Rule::ConstantViolation
            | Rule::MissingBooleanity => Severity::Deny,
            Rule::DeadConstraint | Rule::DuplicateConstraint => Severity::Warn,
        }
    }
}

impl core::fmt::Display for Rule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.id())
    }
}

/// One structured lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub rule: Rule,
    /// The rule's severity (denormalised for report consumers).
    pub severity: Severity,
    /// Human-readable description naming the offender.
    pub message: String,
    /// The constraint row the finding anchors to, if row-scoped.
    pub constraint: Option<usize>,
    /// The assignment-vector column the finding anchors to, if
    /// variable-scoped.
    pub column: Option<usize>,
}

impl Finding {
    fn new(rule: Rule, message: String) -> Self {
        Finding {
            rule,
            severity: rule.severity(),
            message,
            constraint: None,
            column: None,
        }
    }

    fn at_row(mut self, row: usize) -> Self {
        self.constraint = Some(row);
        self
    }

    fn at_column(mut self, col: usize) -> Self {
        self.column = Some(col);
        self
    }

    /// A stable fingerprint for baselines: rule id plus the anchor
    /// (`rule@r<row>`, `rule@c<col>`, or bare `rule`). Deliberately
    /// message-free so wording changes never invalidate a waiver.
    pub fn fingerprint(&self) -> String {
        match (self.constraint, self.column) {
            (Some(r), _) => format!("{}@r{r}", self.rule.id()),
            (None, Some(c)) => format!("{}@c{c}", self.rule.id()),
            (None, None) => self.rule.id().to_string(),
        }
    }
}

/// The result of analyzing one compiled shape: shape statistics plus every
/// finding, ordered denies-first in catalog order.
#[derive(Clone, Debug, Default)]
pub struct ShapeReport {
    /// All findings, worst first.
    pub findings: Vec<Finding>,
    /// Constraint rows analyzed.
    pub num_constraints: usize,
    /// Variables analyzed (including the constant-one column).
    pub num_variables: usize,
    /// Instance columns the shape allocates.
    pub num_instance: usize,
    /// Witness columns the shape allocates.
    pub num_witness: usize,
    /// Public outputs the circuit declared to the analyzer.
    pub declared_publics: usize,
}

impl ShapeReport {
    /// `true` when no finding of any severity was produced.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The worst severity present, or `None` on a clean report.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Findings at or above `threshold`.
    pub fn at_least(&self, threshold: Severity) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(move |f| f.severity >= threshold)
    }

    /// Number of findings at or above `threshold`.
    pub fn count_at_least(&self, threshold: Severity) -> usize {
        self.at_least(threshold).count()
    }
}

/// A human name for an assignment-vector column.
fn describe_column(col: usize, num_instance: usize) -> String {
    if col == 0 {
        "the constant-one column".to_string()
    } else if col <= num_instance {
        format!("public output i{} (column {col})", col - 1)
    } else {
        format!("witness w{} (column {col})", col - 1 - num_instance)
    }
}

/// Per-row static summary of one matrix side.
#[derive(Clone, Debug)]
struct SideSummary<F> {
    /// `Some(k)` when the side evaluates to the constant `k` for every
    /// assignment: the row is empty (`k = 0`) or touches only column 0.
    constant: Option<F>,
    /// Whether the side has any term at all.
    empty: bool,
}

fn summarise_side<F: PrimeField>(terms: &[(usize, F)]) -> SideSummary<F> {
    let empty = terms.is_empty();
    let constant = if empty {
        Some(F::zero())
    } else if terms.len() == 1 && terms[0].0 == 0 {
        Some(terms[0].1)
    } else {
        None
    };
    SideSummary { constant, empty }
}

impl<F: PrimeField> CompiledShape<F> {
    /// Runs the full lint catalog over this shape. `declared_publics` is
    /// the number of public outputs the circuit's *statement* exposes —
    /// [`Circuit::declared_publics`] in `zkvc-core` — which may exceed the
    /// shape's instance count when a circuit was (mis)compiled with its
    /// outputs left private.
    ///
    /// The pass is witness-free and linear in the number of non-zero
    /// matrix entries (plus a hash-map pass for duplicate detection).
    pub fn analyze(&self, declared_publics: usize) -> ShapeReport {
        let m = &self.matrices;
        let ni = m.num_instance;
        let rows = self.num_constraints();
        let cols = self.num_variables();

        // Single sweep: per-row side summaries, per-column effective
        // occurrence counts, row fingerprints for duplicate detection and
        // single-variable rows for booleanity proofs.
        let mut effective = vec![0usize; cols];
        let mut row_findings: Vec<Finding> = Vec::new();
        let mut seen_rows: std::collections::HashMap<Vec<u8>, usize> =
            std::collections::HashMap::new();
        let mut duplicate_findings: Vec<Finding> = Vec::new();
        let mut proven_boolean: std::collections::HashSet<usize> = std::collections::HashSet::new();

        for i in 0..rows {
            let a: Vec<(usize, F)> = m.a.row(i).map(|(c, v)| (c, *v)).collect();
            let b: Vec<(usize, F)> = m.b.row(i).map(|(c, v)| (c, *v)).collect();
            let c: Vec<(usize, F)> = m.c.row(i).map(|(c, v)| (c, *v)).collect();
            let sa = summarise_side(&a);
            let sb = summarise_side(&b);
            let sc = summarise_side(&c);

            // Effective occurrences: a term can pin its variable unless it
            // sits on a multiplicative side whose partner is identically
            // zero (then the product vanishes for every assignment and the
            // term constrains nothing).
            for &(col, _) in &c {
                effective[col] += 1;
            }
            if !sb.empty {
                for &(col, _) in &a {
                    effective[col] += 1;
                }
            }
            if !sa.empty {
                for &(col, _) in &b {
                    effective[col] += 1;
                }
            }

            // Dead rows and constant violations: the product is statically
            // known when both sides are, or when either side is the
            // constant zero.
            let product = match (sa.constant, sb.constant) {
                (Some(x), Some(y)) => Some(x * y),
                (Some(x), None) | (None, Some(x)) if x == F::zero() => Some(F::zero()),
                _ => None,
            };
            if let (Some(p), Some(t)) = (product, sc.constant) {
                if p == t {
                    row_findings.push(
                        Finding::new(
                            Rule::DeadConstraint,
                            format!(
                                "constraint {i} is satisfied by every assignment \
                                 (both sides are constant and agree)"
                            ),
                        )
                        .at_row(i),
                    );
                } else {
                    row_findings.push(
                        Finding::new(
                            Rule::ConstantViolation,
                            format!(
                                "constraint {i} is unsatisfiable: its sides are \
                                 constant and a\u{b7}b \u{2260} c"
                            ),
                        )
                        .at_row(i),
                    );
                }
            }

            // Duplicate detection: canonical row key, A/B ordered so the
            // commutative swap collides.
            let key = row_key(&a, &b, &c);
            if let Some(&first) = seen_rows.get(&key) {
                duplicate_findings.push(
                    Finding::new(
                        Rule::DuplicateConstraint,
                        format!("constraint {i} duplicates constraint {first}"),
                    )
                    .at_row(i),
                );
            } else {
                seen_rows.insert(key, i);
            }

            // Booleanity proof: a row touching exactly one non-constant
            // column x encodes a univariate p(x) = (a0 + a1·x)(b0 + b1·x)
            // − (c0 + c1·x); it forces x ∈ {0, 1} iff p(0) = p(1) = 0 with
            // a genuinely quadratic leading term.
            if let Some(x) = single_variable(&a, &b, &c) {
                let (a0, a1) = const_and_var(&a, x);
                let (b0, b1) = const_and_var(&b, x);
                let (c0, c1) = const_and_var(&c, x);
                let p0 = a0 * b0 - c0;
                let p1 = (a0 + a1) * (b0 + b1) - (c0 + c1);
                if p0 == F::zero() && p1 == F::zero() && a1 * b1 != F::zero() {
                    proven_boolean.insert(x);
                }
            }
        }

        let mut findings: Vec<Finding> = Vec::new();

        // unconstrained-witness: witness columns nothing can pin.
        for (col, &uses) in effective.iter().enumerate().skip(1 + ni) {
            if uses == 0 {
                findings.push(
                    Finding::new(
                        Rule::UnconstrainedWitness,
                        format!(
                            "{} appears in no constraint that can pin its value",
                            describe_column(col, ni)
                        ),
                    )
                    .at_column(col),
                );
            }
        }

        // unbound-public: declared outputs the shape never allocated
        // (statement left private — the forgeable-binding class), then
        // allocated instance columns nothing pins.
        if declared_publics > ni {
            findings.push(Finding::new(
                Rule::UnboundPublic,
                format!(
                    "circuit declares {declared_publics} public output(s) but the shape \
                     allocates only {ni} instance column(s): the statement is not bound \
                     by any constraint"
                ),
            ));
        }
        for (col, &uses) in effective.iter().enumerate().take(1 + ni).skip(1) {
            if uses == 0 {
                findings.push(
                    Finding::new(
                        Rule::UnboundPublic,
                        format!(
                            "{} appears in no constraint that can pin it to the witness",
                            describe_column(col, ni)
                        ),
                    )
                    .at_column(col),
                );
            }
        }

        // missing-booleanity: expected columns with neither a provider
        // marker nor a pattern proof.
        let provided: std::collections::HashSet<usize> =
            self.provided_boolean.iter().copied().collect();
        for &col in &self.expected_boolean {
            if !provided.contains(&col) && !proven_boolean.contains(&col) {
                findings.push(
                    Finding::new(
                        Rule::MissingBooleanity,
                        format!(
                            "{} is consumed as a boolean but no x\u{b7}(x\u{2212}1)=0 \
                             constraint pins it to {{0, 1}}",
                            describe_column(col, ni)
                        ),
                    )
                    .at_column(col),
                );
            }
        }

        findings.extend(row_findings);
        findings.extend(duplicate_findings);
        // Report order: denies first, then catalog order, then anchor.
        findings.sort_by_key(|f| {
            (
                core::cmp::Reverse(f.severity),
                Rule::ALL.iter().position(|r| *r == f.rule),
                f.constraint,
                f.column,
            )
        });

        ShapeReport {
            findings,
            num_constraints: rows,
            num_variables: cols,
            num_instance: ni,
            num_witness: m.num_witness,
            declared_publics,
        }
    }
}

/// The constant-column coefficient and the `x`-column coefficient of one
/// side (CSR rows hold at most one term per column).
fn const_and_var<F: PrimeField>(terms: &[(usize, F)], x: usize) -> (F, F) {
    let mut k = F::zero();
    let mut v = F::zero();
    for &(col, coeff) in terms {
        if col == 0 {
            k = coeff;
        } else if col == x {
            v = coeff;
        }
    }
    (k, v)
}

/// `Some(x)` when the union of non-constant columns across all three
/// sides is exactly `{x}`.
fn single_variable<F: PrimeField>(
    a: &[(usize, F)],
    b: &[(usize, F)],
    c: &[(usize, F)],
) -> Option<usize> {
    let mut var: Option<usize> = None;
    for &(col, _) in a.iter().chain(b).chain(c) {
        if col == 0 {
            continue;
        }
        match var {
            None => var = Some(col),
            Some(v) if v == col => {}
            Some(_) => return None,
        }
    }
    var
}

/// Serialises one side into length-prefixed canonical bytes.
fn side_bytes<F: PrimeField>(terms: &[(usize, F)], out: &mut Vec<u8>) {
    out.extend_from_slice(&(terms.len() as u64).to_le_bytes());
    for &(col, coeff) in terms {
        out.extend_from_slice(&(col as u64).to_le_bytes());
        out.extend_from_slice(&coeff.to_bytes_le());
    }
}

/// A canonical key for one `(A, B, C)` row triple: the `A` and `B` sides
/// are ordered lexicographically so the commutative swap maps both
/// orientations to one key.
fn row_key<F: PrimeField>(a: &[(usize, F)], b: &[(usize, F)], c: &[(usize, F)]) -> Vec<u8> {
    let mut ab = Vec::new();
    side_bytes(a, &mut ab);
    let mut bb = Vec::new();
    side_bytes(b, &mut bb);
    let (first, second) = if ab <= bb { (ab, bb) } else { (bb, ab) };
    let mut key = first;
    key.extend_from_slice(&second);
    side_bytes(c, &mut key);
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::ConstraintSystem;
    use crate::lc::LinearCombination;
    use crate::sink::CompiledShape;
    use zkvc_ff::{Field, Fr};

    fn analyze(cs: &ConstraintSystem<Fr>) -> ShapeReport {
        let shape = CompiledShape::from_cs(cs);
        shape.analyze(cs.num_instance())
    }

    fn rules(report: &ShapeReport) -> Vec<Rule> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_circuit_is_clean() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(3));
        let y = cs.alloc_instance(Fr::from_u64(9));
        cs.enforce(x.into(), x.into(), y.into());
        let report = analyze(&cs);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.worst(), None);
        assert_eq!(report.num_constraints, 1);
        assert_eq!(report.declared_publics, 1);
    }

    #[test]
    fn unconstrained_witness_fires() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(3));
        let _orphan = cs.alloc_witness(Fr::from_u64(7));
        let y = cs.alloc_instance(Fr::from_u64(9));
        cs.enforce(x.into(), x.into(), y.into());
        let report = analyze(&cs);
        assert_eq!(rules(&report), vec![Rule::UnconstrainedWitness]);
        let f = &report.findings[0];
        assert_eq!(f.severity, Severity::Deny);
        assert_eq!(f.column, Some(3), "orphan is column 3 (1 + ni=1 + idx 1)");
        assert_eq!(f.fingerprint(), "unconstrained-witness@c3");
    }

    #[test]
    fn witness_only_against_zero_side_is_unconstrained() {
        // x appears only on the B side of a row whose A side is empty:
        // 0 · x = 0 holds for every x.
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(5));
        cs.enforce(
            LinearCombination::zero(),
            x.into(),
            LinearCombination::zero(),
        );
        let report = analyze(&cs);
        assert!(rules(&report).contains(&Rule::UnconstrainedWitness));
        // The vacuous row is also dead: 0 · (anything) = 0.
        assert!(rules(&report).contains(&Rule::DeadConstraint));
    }

    #[test]
    fn unbound_public_fires_on_missing_declaration() {
        // The `:private` miscompile: statement says one public output,
        // shape allocated none.
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(3));
        let y = cs.alloc_witness(Fr::from_u64(9));
        cs.enforce(x.into(), x.into(), y.into());
        let report = CompiledShape::from_cs(&cs).analyze(1);
        assert_eq!(rules(&report), vec![Rule::UnboundPublic]);
        assert_eq!(report.findings[0].fingerprint(), "unbound-public");
    }

    #[test]
    fn unbound_public_fires_on_unpinned_instance_column() {
        // The PR-3 class: an instance variable exists but no constraint
        // pins it.
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(3));
        let _floating = cs.alloc_instance(Fr::from_u64(9));
        cs.enforce(x.into(), x.into(), x.into());
        let report = analyze(&cs);
        assert_eq!(rules(&report), vec![Rule::UnboundPublic]);
        assert_eq!(report.findings[0].column, Some(1));
    }

    #[test]
    fn constant_violation_fires() {
        let mut cs = ConstraintSystem::<Fr>::new();
        cs.enforce(
            LinearCombination::constant(Fr::from_u64(2)),
            LinearCombination::constant(Fr::from_u64(3)),
            LinearCombination::constant(Fr::from_u64(7)),
        );
        let report = analyze(&cs);
        assert_eq!(rules(&report), vec![Rule::ConstantViolation]);
        assert_eq!(report.findings[0].constraint, Some(0));
        assert_eq!(report.worst(), Some(Severity::Deny));
    }

    #[test]
    fn dead_constraint_fires() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(3));
        let y = cs.alloc_instance(Fr::from_u64(9));
        cs.enforce(x.into(), x.into(), y.into());
        cs.enforce(
            LinearCombination::constant(Fr::from_u64(2)),
            LinearCombination::constant(Fr::from_u64(3)),
            LinearCombination::constant(Fr::from_u64(6)),
        );
        let report = analyze(&cs);
        assert!(rules(&report).contains(&Rule::DeadConstraint));
        assert_eq!(report.count_at_least(Severity::Deny), 0);
        assert_eq!(report.count_at_least(Severity::Warn), 1);
    }

    #[test]
    fn duplicate_constraint_fires_up_to_the_ab_swap() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(2));
        let y = cs.alloc_witness(Fr::from_u64(3));
        let z = cs.alloc_witness(Fr::from_u64(6));
        cs.enforce(x.into(), y.into(), z.into());
        cs.enforce(y.into(), x.into(), z.into()); // commuted duplicate
        let report = analyze(&cs);
        assert_eq!(rules(&report), vec![Rule::DuplicateConstraint]);
        assert_eq!(report.findings[0].constraint, Some(1));
        assert!(report.findings[0].message.contains("constraint 0"));
    }

    #[test]
    fn different_rows_are_not_duplicates() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(2));
        let y = cs.alloc_witness(Fr::from_u64(4));
        let z = cs.alloc_witness(Fr::from_u64(16));
        cs.enforce(x.into(), x.into(), y.into());
        cs.enforce(y.into(), y.into(), z.into());
        assert!(analyze(&cs).is_clean());
    }

    #[test]
    fn missing_booleanity_fires_without_a_pinning_row() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let b = cs.alloc_witness(Fr::from_u64(1));
        let out = cs.alloc_instance(Fr::from_u64(5));
        // b is used as a selector but never pinned to {0, 1}.
        cs.enforce(
            b.into(),
            LinearCombination::constant(Fr::from_u64(5)),
            out.into(),
        );
        cs.expect_boolean(b);
        let report = analyze(&cs);
        assert_eq!(rules(&report), vec![Rule::MissingBooleanity]);
        assert_eq!(report.findings[0].column, Some(2));
    }

    #[test]
    fn booleanity_row_satisfies_the_expectation() {
        for scale in [1u64, 3] {
            let mut cs = ConstraintSystem::<Fr>::new();
            let b = cs.alloc_witness(Fr::from_u64(1));
            let out = cs.alloc_instance(Fr::from_u64(5));
            // k·b · (1 − b) = 0, scaled: still proves b ∈ {0, 1}.
            cs.enforce(
                LinearCombination::from(b).scale(&Fr::from_u64(scale)),
                LinearCombination::constant(Fr::one()) - LinearCombination::from(b),
                LinearCombination::zero(),
            );
            cs.enforce(
                b.into(),
                LinearCombination::constant(Fr::from_u64(5)),
                out.into(),
            );
            cs.expect_boolean(b);
            assert!(analyze(&cs).is_clean(), "scale {scale}");
        }
    }

    #[test]
    fn x_squared_equals_x_satisfies_the_expectation() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let b = cs.alloc_witness(Fr::from_u64(1));
        let out = cs.alloc_instance(Fr::from_u64(5));
        cs.enforce(b.into(), b.into(), b.into()); // x·x = x
        cs.enforce(
            b.into(),
            LinearCombination::constant(Fr::from_u64(5)),
            out.into(),
        );
        cs.expect_boolean(b);
        assert!(analyze(&cs).is_clean());
    }

    #[test]
    fn a_lookalike_row_does_not_satisfy_booleanity() {
        // x · (2 − x) = 0 pins x to {0, 2}, not {0, 1}.
        let mut cs = ConstraintSystem::<Fr>::new();
        let b = cs.alloc_witness(Fr::from_u64(0));
        let out = cs.alloc_instance(Fr::from_u64(0));
        cs.enforce(
            b.into(),
            LinearCombination::constant(Fr::from_u64(2)) - LinearCombination::from(b),
            LinearCombination::zero(),
        );
        cs.enforce(
            b.into(),
            LinearCombination::constant(Fr::from_u64(5)),
            out.into(),
        );
        cs.expect_boolean(b);
        let report = analyze(&cs);
        assert_eq!(rules(&report), vec![Rule::MissingBooleanity]);
    }

    #[test]
    fn provider_hint_satisfies_the_expectation() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let b = cs.alloc_witness(Fr::from_u64(1));
        let out = cs.alloc_instance(Fr::from_u64(5));
        cs.enforce(
            b.into(),
            LinearCombination::constant(Fr::from_u64(5)),
            out.into(),
        );
        cs.expect_boolean(b);
        cs.provide_boolean(b);
        assert!(analyze(&cs).is_clean());
    }

    #[test]
    fn severity_order_and_tokens() {
        assert!(Severity::Info < Severity::Warn && Severity::Warn < Severity::Deny);
        for sev in [Severity::Info, Severity::Warn, Severity::Deny] {
            assert_eq!(Severity::parse(sev.token()), Some(sev));
        }
        assert_eq!(Severity::parse("DENY"), Some(Severity::Deny));
        assert_eq!(Severity::parse("nope"), None);
    }

    #[test]
    fn findings_sort_denies_first() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(3));
        let _orphan = cs.alloc_witness(Fr::from_u64(7));
        let y = cs.alloc_witness(Fr::from_u64(9));
        cs.enforce(x.into(), x.into(), y.into());
        cs.enforce(
            LinearCombination::constant(Fr::one()),
            LinearCombination::constant(Fr::one()),
            LinearCombination::constant(Fr::one()),
        ); // dead (warn)
        let report = analyze(&cs);
        assert_eq!(
            rules(&report),
            vec![Rule::UnconstrainedWitness, Rule::DeadConstraint]
        );
    }
}
