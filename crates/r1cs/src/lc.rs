//! Variables and linear combinations.

use core::ops::{Add, Mul, Neg, Sub};

use zkvc_ff::Field;

/// A variable in the constraint system.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Variable {
    /// The constant `1` wire.
    One,
    /// The `i`-th public-input (instance) variable.
    Instance(usize),
    /// The `i`-th private witness variable.
    Witness(usize),
}

/// A linear combination `sum_i coeff_i * var_i`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct LinearCombination<F: Field> {
    /// The terms of the combination (unordered; duplicates allowed and
    /// summed on evaluation).
    pub terms: Vec<(Variable, F)>,
}

impl<F: Field> LinearCombination<F> {
    /// The empty (zero) linear combination.
    pub fn zero() -> Self {
        LinearCombination { terms: vec![] }
    }

    /// A linear combination consisting of the constant `c`.
    pub fn constant(c: F) -> Self {
        LinearCombination {
            terms: vec![(Variable::One, c)],
        }
    }

    /// Returns `true` if the combination has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of terms (including any duplicate variables).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Adds `coeff * var` to the combination.
    pub fn push(&mut self, var: Variable, coeff: F) {
        if !coeff.is_zero() {
            self.terms.push((var, coeff));
        }
    }

    /// Returns a new combination equal to `self + coeff * var`.
    pub fn with_term(mut self, var: Variable, coeff: F) -> Self {
        self.push(var, coeff);
        self
    }

    /// Multiplies every coefficient by `k`.
    pub fn scale(&self, k: &F) -> Self {
        if k.is_zero() {
            return Self::zero();
        }
        LinearCombination {
            terms: self.terms.iter().map(|(v, c)| (*v, *c * *k)).collect(),
        }
    }

    /// Merges duplicate variables and removes zero coefficients. The number
    /// of *distinct* variables is what PSQ counts as "left wires".
    pub fn normalize(&self) -> Self {
        let mut map: std::collections::BTreeMap<Variable, F> = std::collections::BTreeMap::new();
        for (v, c) in &self.terms {
            let e = map.entry(*v).or_insert_with(F::zero);
            *e += *c;
        }
        LinearCombination {
            terms: map.into_iter().filter(|(_, c)| !c.is_zero()).collect(),
        }
    }

    /// Number of distinct variables with non-zero coefficient.
    pub fn num_wires(&self) -> usize {
        self.normalize().terms.len()
    }
}

impl<F: Field> From<Variable> for LinearCombination<F> {
    fn from(v: Variable) -> Self {
        LinearCombination {
            terms: vec![(v, F::one())],
        }
    }
}

impl<F: Field> Add for LinearCombination<F> {
    type Output = LinearCombination<F>;
    fn add(mut self, rhs: Self) -> Self {
        self.terms.extend(rhs.terms);
        self
    }
}

impl<F: Field> Add<&LinearCombination<F>> for LinearCombination<F> {
    type Output = LinearCombination<F>;
    fn add(mut self, rhs: &Self) -> Self {
        self.terms.extend(rhs.terms.iter().copied());
        self
    }
}

impl<F: Field> Sub for LinearCombination<F> {
    type Output = LinearCombination<F>;
    fn sub(mut self, rhs: Self) -> Self {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self
    }
}

impl<F: Field> Sub<&LinearCombination<F>> for LinearCombination<F> {
    type Output = LinearCombination<F>;
    fn sub(mut self, rhs: &Self) -> Self {
        self.terms.extend(rhs.terms.iter().map(|(v, c)| (*v, -*c)));
        self
    }
}

impl<F: Field> Neg for LinearCombination<F> {
    type Output = LinearCombination<F>;
    fn neg(self) -> Self {
        LinearCombination {
            terms: self.terms.into_iter().map(|(v, c)| (v, -c)).collect(),
        }
    }
}

impl<F: Field> Mul<F> for LinearCombination<F> {
    type Output = LinearCombination<F>;
    fn mul(self, k: F) -> Self {
        self.scale(&k)
    }
}

impl<F: Field> Add<LinearCombination<F>> for Variable {
    type Output = LinearCombination<F>;
    fn add(self, rhs: LinearCombination<F>) -> LinearCombination<F> {
        LinearCombination::from(self) + rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvc_ff::{Fr, PrimeField};

    #[test]
    fn build_and_normalize() {
        let x = Variable::Witness(0);
        let y = Variable::Witness(1);
        let lc: LinearCombination<Fr> = LinearCombination::from(x)
            + LinearCombination::from(y).scale(&Fr::from_u64(3))
            + LinearCombination::from(x);
        let n = lc.normalize();
        assert_eq!(n.num_wires(), 2);
        assert!(n
            .terms
            .iter()
            .any(|(v, c)| *v == x && *c == Fr::from_u64(2)));
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let x = Variable::Witness(0);
        let lc: LinearCombination<Fr> = LinearCombination::from(x) - LinearCombination::from(x);
        assert_eq!(lc.normalize().num_wires(), 0);
        let mut lc2 = LinearCombination::<Fr>::zero();
        lc2.push(x, Fr::zero());
        assert!(lc2.is_empty());
    }

    #[test]
    fn scale_and_neg() {
        let x = Variable::Instance(0);
        let lc: LinearCombination<Fr> = LinearCombination::from(x) * Fr::from_u64(5);
        assert_eq!(lc.terms[0].1, Fr::from_u64(5));
        let neg = -lc;
        assert_eq!(neg.terms[0].1, -Fr::from_u64(5));
        let zero = LinearCombination::<Fr>::from(x) * Fr::zero();
        assert!(zero.is_empty());
    }

    #[test]
    fn constant_combination() {
        let c: LinearCombination<Fr> = LinearCombination::constant(Fr::from_u64(7));
        assert_eq!(c.terms, vec![(Variable::One, Fr::from_u64(7))]);
    }
}
