//! Criterion bench for Table IV: proving a reduced-scale BERT block slice
//! under each token-mixer schedule (the `table4` binary prints the full
//! comparison with GLUE accuracy context).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;
use zkvc_nn::circuit::ModelCircuit;
use zkvc_nn::mixer::MixerSchedule;
use zkvc_nn::models::{BertConfig, ModelConfig};

fn bench_nlp(c: &mut Criterion) {
    let base = BertConfig::paper().to_model().scaled_down(16);
    let model = ModelConfig {
        name: base.name.clone(),
        input_dim: base.input_dim,
        layers: base.layers.into_iter().take(2).collect(),
        num_classes: base.num_classes,
    };
    let mut group = c.benchmark_group("table4_bert_slice_prove");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));

    for schedule in [
        MixerSchedule::soft_approx(2),
        MixerSchedule::soft_free_s(2),
        MixerSchedule::soft_free_l(2),
        MixerSchedule::zkvc_hybrid_nlp(2),
    ] {
        let circuit = ModelCircuit::build(&model, &schedule, Strategy::CrpcPsq, 9);
        assert!(circuit.cs.is_satisfied());
        group.bench_function(BenchmarkId::new("spartan", schedule.name), |b| {
            let mut rng = StdRng::seed_from_u64(8);
            // Preprocessing amortises per model; measure proving only.
            let (pk, _vk) = Backend::Spartan.setup(&circuit.cs, &mut rng);
            b.iter(|| Backend::Spartan.prove_with_key(&pk, &circuit.cs, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nlp);
criterion_main!(benches);
