//! Criterion bench for Table III: proving a reduced-scale ViT block slice
//! under each token-mixer schedule (the `table3` binary prints the full
//! dataset-by-dataset table).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;
use zkvc_nn::circuit::ModelCircuit;
use zkvc_nn::mixer::MixerSchedule;
use zkvc_nn::models::VitConfig;

fn bench_vision(c: &mut Criterion) {
    let model = VitConfig::custom(2, 2, 16, 4, 4).to_model();
    let mut group = c.benchmark_group("table3_vit_slice_prove");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));

    for schedule in [
        MixerSchedule::soft_approx(2),
        MixerSchedule::soft_free_s(2),
        MixerSchedule::soft_free_p(2),
        MixerSchedule::zkvc_hybrid(2),
    ] {
        let circuit = ModelCircuit::build(&model, &schedule, Strategy::CrpcPsq, 7);
        assert!(circuit.cs.is_satisfied());
        group.bench_function(BenchmarkId::new("spartan", schedule.name), |b| {
            let mut rng = StdRng::seed_from_u64(6);
            // Preprocessing amortises per model; measure proving only.
            let (pk, _vk) = Backend::Spartan.setup(&circuit.cs, &mut rng);
            b.iter(|| Backend::Spartan.prove_with_key(&pk, &circuit.cs, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vision);
criterion_main!(benches);
