//! Criterion bench for Table II: the CRPC x PSQ ablation on both backends
//! (reduced shape; the `table2` binary prints the full paper comparison).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::matmul::{MatMulBuilder, Strategy};
use zkvc_core::Backend;

fn bench_ablation(c: &mut Criterion) {
    let dims = (8usize, 16usize, 16usize);
    let mut group = c.benchmark_group("table2_ablation_prove");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    for strategy in Strategy::ALL {
        for backend in Backend::ALL {
            let id = BenchmarkId::new(backend.name(), strategy.name());
            group.bench_function(id, |b| {
                let mut rng = StdRng::seed_from_u64(5);
                let job = MatMulBuilder::new(dims.0, dims.1, dims.2)
                    .strategy(strategy)
                    .build_random(&mut rng);
                // Setup amortises per shape; measure proving only.
                let (pk, _vk) = backend.setup(&job.cs, &mut rng);
                b.iter(|| backend.prove_with_key(&pk, &job.cs, &mut rng));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
