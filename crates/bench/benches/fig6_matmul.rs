//! Criterion bench for Figure 6: zkVC proving time across embedding
//! dimensions, plus the interactive baseline (reduced shapes; the `fig6`
//! binary prints the full four-panel comparison).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkvc_core::matmul::{MatMulBuilder, Strategy};
use zkvc_core::Backend;
use zkvc_ff::{Fr, PrimeField};

fn bench_prover_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_zkvc_prove_by_dim");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    for dim in [64usize, 128, 320, 512] {
        let dims = (8, (dim / 16).max(2), (dim / 8).max(4));
        group.bench_with_input(BenchmarkId::new("zkvc_g", dim), &dims, |b, dims| {
            let mut rng = StdRng::seed_from_u64(2);
            let job = MatMulBuilder::new(dims.0, dims.1, dims.2)
                .strategy(Strategy::CrpcPsq)
                .build_random(&mut rng);
            // Setup amortises per shape; measure proving only.
            let (pk, _vk) = Backend::Groth16.setup(&job.cs, &mut rng);
            b.iter(|| Backend::Groth16.prove_with_key(&pk, &job.cs, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("zkvc_s", dim), &dims, |b, dims| {
            let mut rng = StdRng::seed_from_u64(3);
            let job = MatMulBuilder::new(dims.0, dims.1, dims.2)
                .strategy(Strategy::CrpcPsq)
                .build_random(&mut rng);
            let (pk, _vk) = Backend::Spartan.setup(&job.cs, &mut rng);
            b.iter(|| Backend::Spartan.prove_with_key(&pk, &job.cs, &mut rng));
        });
    }
    group.finish();
}

fn bench_interactive_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_interactive_baseline");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let mut rng = StdRng::seed_from_u64(4);
    let dims = (8usize, 32usize, 64usize);
    let x: Vec<Vec<Fr>> = (0..dims.0)
        .map(|_| {
            (0..dims.1)
                .map(|_| Fr::from_u64(rng.gen_range(0..256)))
                .collect()
        })
        .collect();
    let w: Vec<Vec<Fr>> = (0..dims.1)
        .map(|_| {
            (0..dims.2)
                .map(|_| Fr::from_u64(rng.gen_range(0..256)))
                .collect()
        })
        .collect();
    let claim = zkvc_interactive::MatMulClaim::compute(&x, &w);
    group.bench_function("zkcnn_style_prove", |b| {
        b.iter(|| zkvc_interactive::prove_matmul(&x, &w, &claim));
    });
    let proof = zkvc_interactive::prove_matmul(&x, &w, &claim);
    group.bench_function("zkcnn_style_verify", |b| {
        b.iter(|| assert!(zkvc_interactive::verify_matmul(&x, &w, &claim, &proof)));
    });
    group.finish();
}

criterion_group!(benches, bench_prover_scaling, bench_interactive_baseline);
criterion_main!(benches);
