//! Criterion bench for Figure 3: proving time of the `[49,64] x [64,128]`
//! matmul shape (reduced here to keep `cargo bench` fast; the `fig3` binary
//! runs the larger shapes).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::matmul::{MatMulBuilder, Strategy};
use zkvc_core::Backend;

fn bench_fig3(c: &mut Criterion) {
    let dims = (8usize, 8usize, 16usize);
    let mut group = c.benchmark_group("fig3_matmul_prove");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    for (name, strategy, backend) in [
        ("groth16_vanilla", Strategy::Vanilla, Backend::Groth16),
        ("spartan_vanilla", Strategy::Vanilla, Backend::Spartan),
        ("zkvc_g", Strategy::CrpcPsq, Backend::Groth16),
        ("zkvc_s", Strategy::CrpcPsq, Backend::Spartan),
    ] {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(1);
            let job = MatMulBuilder::new(dims.0, dims.1, dims.2)
                .strategy(strategy)
                .build_random(&mut rng);
            // Setup (CRS generation / preprocessing) is amortised per
            // circuit shape in practice, so it stays outside the hot loop:
            // the bench measures proving, not setup.
            let (pk, _vk) = backend.setup(&job.cs, &mut rng);
            b.iter(|| backend.prove_with_key(&pk, &job.cs, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
