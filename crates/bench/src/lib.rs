//! # zkvc-bench
//!
//! Shared measurement plumbing for the harness binaries and criterion
//! benches that regenerate the paper's tables and figures. See DESIGN.md
//! ("Per-experiment index") for the mapping from each table/figure to the
//! binary that reproduces it.
//!
//! All binaries accept `--full` to run the paper-scale shapes (slow: the
//! substrate here is an unoptimised pure-Rust pairing stack, not libsnark
//! with hand-tuned assembly on a 16-core Threadripper); the default "quick"
//! mode runs reduced shapes with the same structure so that the relative
//! behaviour — who wins and by roughly what factor — is visible in seconds.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::matmul::{MatMulBuilder, Strategy};
use zkvc_core::Backend;

pub mod paper;

/// One measured proving run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Label for the row/series.
    pub label: String,
    /// Setup / preprocessing time.
    pub setup: Duration,
    /// Proving time.
    pub prove: Duration,
    /// Verification time.
    pub verify: Duration,
    /// Proof size in bytes.
    pub proof_bytes: usize,
    /// Number of constraints proved.
    pub constraints: usize,
    /// Whether verification succeeded (must always be true).
    pub ok: bool,
}

impl RunResult {
    /// "Online time": the wall-clock both parties must stay live. For the
    /// non-interactive schemes this is just verification; for the
    /// interactive baseline the caller adds the proving time too.
    pub fn online_time(&self) -> Duration {
        self.verify
    }
}

/// Returns true when `--full` was passed on the command line.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Measures one matmul proving run for a strategy/backend pair.
///
/// Uses the split lifecycle API: setup is timed once, separately, and the
/// `prove` column measures proving against the prepared key — so the
/// Figure 3 / Figure 6 numbers report prover cost, not CRS generation.
pub fn run_matmul(
    label: &str,
    dims: (usize, usize, usize),
    strategy: Strategy,
    backend: Backend,
    seed: u64,
) -> RunResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let job = MatMulBuilder::new(dims.0, dims.1, dims.2)
        .strategy(strategy)
        .build_random(&mut rng);
    let t0 = Instant::now();
    let (pk, vk) = backend.setup(&job.cs, &mut rng);
    let setup = t0.elapsed();
    let artifacts = backend.prove_with_key(&pk, &job.cs, &mut rng);
    let t1 = Instant::now();
    let ok = backend.verify_with_key(&vk, &artifacts);
    let verify = t1.elapsed();
    RunResult {
        label: label.to_string(),
        setup,
        prove: artifacts.metrics.prove_time,
        verify,
        proof_bytes: artifacts.metrics.proof_size_bytes,
        constraints: artifacts.metrics.num_constraints,
        ok,
    }
}

/// Measures the interactive (zkCNN-style) sum-check baseline on the same
/// matmul shape.
pub fn run_interactive(label: &str, dims: (usize, usize, usize), seed: u64) -> RunResult {
    use rand::Rng;
    use zkvc_ff::{Fr, PrimeField};
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<Fr>> = (0..dims.0)
        .map(|_| {
            (0..dims.1)
                .map(|_| Fr::from_u64(rng.gen_range(0..256)))
                .collect()
        })
        .collect();
    let w: Vec<Vec<Fr>> = (0..dims.1)
        .map(|_| {
            (0..dims.2)
                .map(|_| Fr::from_u64(rng.gen_range(0..256)))
                .collect()
        })
        .collect();
    let claim = zkvc_interactive::MatMulClaim::compute(&x, &w);
    let t0 = Instant::now();
    let proof = zkvc_interactive::prove_matmul(&x, &w, &claim);
    let prove = t0.elapsed();
    let t1 = Instant::now();
    let ok = zkvc_interactive::verify_matmul(&x, &w, &claim, &proof);
    let verify = t1.elapsed();
    RunResult {
        label: label.to_string(),
        setup: Duration::ZERO,
        prove,
        verify,
        proof_bytes: proof.size_in_bytes(),
        constraints: 0,
        ok,
    }
}

/// Formats a duration in seconds with three decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Prints a measured-vs-paper comparison table row by row.
pub fn print_results(title: &str, results: &[RunResult]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "series", "setup(s)", "prove(s)", "verify(s)", "proof(B)", "constraints"
    );
    for r in results {
        assert!(r.ok, "verification failed for {}", r.label);
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>12} {:>12}",
            r.label,
            secs(r.setup),
            secs(r.prove),
            secs(r.verify),
            r.proof_bytes,
            r.constraints
        );
    }
}

/// Computes the speed-up of the last entry relative to the first (used to
/// print "zkVC is N x faster than the baseline").
pub fn speedup(results: &[RunResult]) -> f64 {
    if results.len() < 2 {
        return 1.0;
    }
    let base = results[0].prove.as_secs_f64();
    let last = results[results.len() - 1].prove.as_secs_f64();
    if last == 0.0 {
        f64::INFINITY
    } else {
        base / last
    }
}

/// The matmul dimensions used throughout the paper's micro-benchmarks:
/// `[tokens, dim/2] x [dim/2, dim]` with 49 tokens.
pub fn paper_matmul_dims(embedding_dim: usize) -> (usize, usize, usize) {
    (49, embedding_dim / 2, embedding_dim)
}

/// Reduced version of [`paper_matmul_dims`] for quick mode: same structure,
/// 8 tokens and dimensions divided by 8.
pub fn quick_matmul_dims(embedding_dim: usize) -> (usize, usize, usize) {
    (8, (embedding_dim / 16).max(2), (embedding_dim / 8).max(4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_run_is_consistent() {
        let r = run_matmul("t", (2, 3, 2), Strategy::CrpcPsq, Backend::Spartan, 1);
        assert!(r.ok);
        assert_eq!(r.constraints, 3);
    }

    #[test]
    fn interactive_run_is_consistent() {
        let r = run_interactive("i", (4, 4, 4), 2);
        assert!(r.ok);
        assert!(r.proof_bytes > 0);
    }

    #[test]
    fn dims_helpers() {
        assert_eq!(paper_matmul_dims(128), (49, 64, 128));
        let (a, n, b) = quick_matmul_dims(64);
        assert!(a > 0 && n > 0 && b > 0);
    }
}
