//! Pool-scaling harness: the acceptance demonstration for the sharded
//! work-stealing scheduler, emitting a machine-readable perf trajectory
//! (`BENCH_pool.json`) alongside the kernel harness's
//! `BENCH_kernels.json`.
//!
//! Two batches are measured, each across three execution strategies:
//!
//! * **uniform** — N same-shape matmul jobs, the classic amortisation
//!   case: serial one-shot proving (setup per job) vs the old
//!   single-queue pool vs the work-stealing pool at 1 and K workers.
//! * **skewed** — one model-block job next to a pile of small matmuls,
//!   the balance case the work-stealing + priority design exists for.
//!
//! The harness asserts the acceptance bars: work-stealing at K workers is
//! at least 2x the serial baseline on the uniform batch, work-stealing
//! does not lose to the single-queue baseline on the skewed batch, and —
//! most importantly — proofs and verdicts are **bit-identical** across
//! scheduling policies, worker counts, and reruns, and agree with
//! `prove_batch_serial`. Scheduler nondeterminism can never silently
//! change proof outcomes.
//!
//! ```text
//! pool [--smoke] [--full] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use zkvc_bench::{full_mode, paper_matmul_dims, quick_matmul_dims};
use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;
use zkvc_runtime::{
    prove_batch_serial, prove_batch_with_policy, BatchReport, JobSpec, ModelPreset, Priority,
    SchedulerPolicy,
};

/// Physical core count recorded alongside every measured point.
fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// One measured pool configuration.
struct Run {
    label: &'static str,
    workers: usize,
    wall: Duration,
    jobs_per_sec: f64,
    high_priority_mean_wait: Duration,
}

/// Best-of-`reps` run of one batch under one policy/worker count.
fn run_pool(
    specs: &[JobSpec],
    workers: usize,
    seed: u64,
    policy: SchedulerPolicy,
    reps: usize,
    label: &'static str,
) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let report = prove_batch_with_policy(specs, workers, seed, policy);
        let wall = t0.elapsed();
        assert!(report.all_verified(), "{label}: all proofs must verify");
        let candidate = Run {
            label,
            workers,
            wall,
            jobs_per_sec: specs.len() as f64 / wall.as_secs_f64(),
            high_priority_mean_wait: report
                .mean_queue_wait(|r| r.spec.priority() == Priority::High),
        };
        if best.as_ref().is_none_or(|b| candidate.wall < b.wall) {
            best = Some(candidate);
        }
    }
    best.expect("at least one rep")
}

fn run_serial(specs: &[JobSpec], seed: u64, reps: usize) -> (Duration, BatchReport) {
    let mut best: Option<(Duration, BatchReport)> = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let report = prove_batch_serial(specs, seed);
        let wall = t0.elapsed();
        assert!(report.all_verified(), "serial: all proofs must verify");
        if best.as_ref().is_none_or(|(w, _)| wall < *w) {
            best = Some((wall, report));
        }
    }
    best.expect("at least one rep")
}

struct Section {
    name: &'static str,
    spec_labels: Vec<String>,
    jobs: usize,
    workers: usize,
    serial_wall: Duration,
    runs: Vec<Run>,
}

impl Section {
    fn run_of(&self, label: &str) -> &Run {
        self.runs
            .iter()
            .find(|r| r.label == label)
            .expect("known run label")
    }

    fn speedup_vs_serial(&self, label: &str) -> f64 {
        self.serial_wall.as_secs_f64() / self.run_of(label).wall.as_secs_f64()
    }

    fn ws_vs_single_queue(&self) -> f64 {
        self.run_of("single_queue").wall.as_secs_f64()
            / self.run_of("work_stealing").wall.as_secs_f64()
    }

    fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "  \"{}\": {{", self.name);
        let _ = writeln!(
            out,
            "    \"specs\": [{}],",
            self.spec_labels
                .iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(out, "    \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "    \"workers\": {},", self.workers);
        let _ = writeln!(
            out,
            "    \"serial_wall_s\": {:.3},",
            self.serial_wall.as_secs_f64()
        );
        for (i, run) in self.runs.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {{\"workers\": {}, \"cores\": {}, \"wall_s\": {:.3}, \"jobs_per_sec\": {:.2}, \"speedup_vs_serial\": {:.2}, \"high_priority_mean_wait_ms\": {:.2}}}{}",
                run.label,
                run.workers,
                cores(),
                run.wall.as_secs_f64(),
                run.jobs_per_sec,
                self.speedup_vs_serial(run.label),
                run.high_priority_mean_wait.as_secs_f64() * 1e3,
                if i + 1 < self.runs.len() { "," } else { "" }
            );
        }
        let _ = write!(out, "  }}");
        out
    }
}

/// Measures one batch across serial / single-queue / work-stealing x
/// worker counts, printing human-readable lines as it goes.
fn measure(
    name: &'static str,
    specs: &[JobSpec],
    workers: usize,
    seed: u64,
    reps: usize,
) -> Section {
    println!("\n== {name}: {} jobs, {workers} workers ==", specs.len());
    let (serial_wall, _serial) = run_serial(specs, seed, reps);
    println!("  serial (one-shot per job)     {serial_wall:>10.3?}");
    let mut runs = Vec::new();
    for (label, policy, w) in [
        ("single_queue", SchedulerPolicy::SingleQueue, workers),
        ("work_stealing_1w", SchedulerPolicy::WorkStealing, 1),
        ("work_stealing", SchedulerPolicy::WorkStealing, workers),
    ] {
        let run = run_pool(specs, w, seed, policy, reps, label);
        println!(
            "  {label:<28}  {:>10.3?}  ({:.2} jobs/s, {:.2}x vs serial)",
            run.wall,
            run.jobs_per_sec,
            serial_wall.as_secs_f64() / run.wall.as_secs_f64()
        );
        runs.push(run);
    }
    let mut spec_labels: Vec<String> = specs.iter().map(std::string::ToString::to_string).collect();
    spec_labels.dedup();
    Section {
        name,
        spec_labels,
        jobs: specs.len(),
        workers,
        serial_wall,
        runs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = full_mode();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_pool.json".to_string());

    let mode = if smoke {
        "smoke"
    } else if full {
        "full"
    } else {
        "default"
    };
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let workers = 4;
    let seed = 0xB00570;
    let reps = if smoke { 1 } else { 3 };
    // Kernel dispatch under the same profile a production process would
    // load; the digest lands in the JSON as `tune_profile` provenance.
    let _ = zkvc_runtime::tune::startup(None);
    println!(
        "pool bench: mode={mode}, hardware threads={threads}, pool workers={workers}, tune profile {}",
        zkvc_runtime::tune::active_digest()
    );

    // Uniform batch: same-shape vanilla/Groth16 jobs — vanilla is the
    // setup-heaviest strategy per constraint, i.e. the workload where
    // amortisation matters most.
    let uniform_dims = if full {
        paper_matmul_dims(128)
    } else if smoke {
        (4, 4, 4)
    } else {
        quick_matmul_dims(64)
    };
    let uniform_jobs = 8;
    let uniform = vec![
        JobSpec::new(uniform_dims.0, uniform_dims.1, uniform_dims.2)
            .with_strategy(Strategy::Vanilla)
            .with_backend(Backend::Groth16);
        uniform_jobs
    ];
    let uniform_section = measure("uniform", &uniform, workers, seed, reps);

    // Skewed batch: one model block pins a worker while small matmuls
    // queue behind it — the case sharding + stealing + priorities exist
    // for. Small jobs are High priority by spec size; the model job is
    // Normal.
    let small = if smoke { (2, 2, 2) } else { (3, 3, 3) };
    let small_count = if smoke { 6 } else { 12 };
    let mut skewed = vec![JobSpec::model(ModelPreset::MixerBlock)];
    for _ in 0..small_count {
        skewed.push(JobSpec::new(small.0, small.1, small.2));
    }
    let skewed_section = measure("skewed", &skewed, workers, seed, reps);

    // Determinism: rerunning the skewed batch must reproduce every proof
    // byte-for-byte; the single-queue policy must agree with
    // work-stealing; and pool verdicts must match the serial baseline.
    println!("\n== determinism ==");
    let ws_a = prove_batch_with_policy(&skewed, workers, seed, SchedulerPolicy::WorkStealing);
    let ws_b = prove_batch_with_policy(&skewed, 2, seed, SchedulerPolicy::WorkStealing);
    let sq = prove_batch_with_policy(&skewed, workers, seed, SchedulerPolicy::SingleQueue);
    let serial = prove_batch_serial(&skewed, seed);
    let rerun_identical = ws_a
        .results
        .iter()
        .zip(ws_b.results.iter())
        .all(|(a, b)| a.id == b.id && a.proof_bytes == b.proof_bytes);
    let policies_agree = ws_a
        .results
        .iter()
        .zip(sq.results.iter())
        .all(|(a, b)| a.id == b.id && a.proof_bytes == b.proof_bytes);
    let verdicts_match_serial = ws_a
        .results
        .iter()
        .zip(serial.results.iter())
        .all(|(p, s)| (p.id, p.verified) == (s.id, s.verified));
    assert!(
        rerun_identical,
        "rerun at different worker count changed proof bytes"
    );
    assert!(policies_agree, "scheduling policy changed proof bytes");
    assert!(verdicts_match_serial, "pool verdicts diverge from serial");
    println!("  rerun identical: {rerun_identical}");
    println!("  policies agree:  {policies_agree}");
    println!("  verdicts match prove_batch_serial: {verdicts_match_serial}");

    // Acceptance bars. The 2x uniform bar holds even on one hardware
    // thread because the pool amortises setup; the smoke bar is laxer so
    // a noisy shared CI runner cannot flake the step.
    let uniform_speedup = uniform_section.speedup_vs_serial("work_stealing");
    let uniform_bar = if smoke { 1.3 } else { 2.0 };
    assert!(
        uniform_speedup >= uniform_bar,
        "acceptance: work-stealing must be >={uniform_bar}x serial on the uniform batch, got {uniform_speedup:.2}x"
    );
    println!(
        "\nacceptance: work-stealing {uniform_speedup:.2}x vs serial on uniform (bar {uniform_bar}x): PASS"
    );
    let skew_ratio = skewed_section.ws_vs_single_queue();
    let skew_bar = if smoke { 0.85 } else { 0.95 };
    assert!(
        skew_ratio >= skew_bar,
        "acceptance: work-stealing must not lose to single-queue on the skewed batch, got {skew_ratio:.3}"
    );
    println!(
        "acceptance: work-stealing/single-queue skewed ratio {skew_ratio:.3} (bar {skew_bar}): PASS"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"zkvc-bench-pool/v1\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"cores\": {},", cores());
    let _ = writeln!(
        json,
        "  \"tune_profile\": \"{}\",",
        zkvc_runtime::tune::active_digest()
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "{},", uniform_section.render_json());
    let _ = writeln!(json, "{},", skewed_section.render_json());
    let _ = writeln!(
        json,
        "  \"determinism\": {{\"rerun_identical\": {rerun_identical}, \"policies_agree\": {policies_agree}, \"verdicts_match_serial\": {verdicts_match_serial}}}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
