//! Batch-proving throughput harness: the acceptance demonstration for the
//! `zkvc-runtime` subsystem.
//!
//! Proves N same-shape matmul jobs two ways and prints both metric tables:
//!
//! 1. through the `ProvingPool` + `KeyCache` (one setup, K workers), and
//! 2. as N independent one-shot `Backend::prove` calls (setup every time,
//!    one thread) — the state of the stack before the runtime existed.
//!
//! Run with `--full` for the paper-scale `[49,64] x [64,128]` shape; the
//! default quick mode uses a reduced shape with the same structure. The
//! harness asserts the pooled path is at least 2x faster end-to-end.

use std::time::Instant;

use zkvc_bench::{full_mode, paper_matmul_dims, quick_matmul_dims};
use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;
use zkvc_runtime::{prove_batch, prove_batch_serial, JobSpec};

fn main() {
    let dims = if full_mode() {
        paper_matmul_dims(128)
    } else {
        quick_matmul_dims(64)
    };
    let jobs = 8;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs);
    let seed = 0xB00570;

    println!(
        "== pool throughput: {jobs} x {}x{}x{} vanilla/groth16 jobs, {workers} workers ==",
        dims.0, dims.1, dims.2
    );
    // Vanilla is the setup-heaviest strategy per constraint, i.e. the
    // workload where amortisation matters most; CRPC+PSQ numbers are in the
    // prove-batch CLI examples.
    let specs = vec![
        JobSpec::new(dims.0, dims.1, dims.2)
            .with_strategy(Strategy::Vanilla)
            .with_backend(Backend::Groth16);
        jobs
    ];

    let t0 = Instant::now();
    let pooled = prove_batch(&specs, workers, seed);
    let pooled_wall = t0.elapsed();
    print!("{}", pooled.render_table("pooled (ProvingPool + KeyCache)"));
    assert!(pooled.all_verified(), "pooled proofs must verify");

    let t1 = Instant::now();
    let serial = prove_batch_serial(&specs, seed);
    let serial_wall = t1.elapsed();
    print!(
        "{}",
        serial.render_table("serial baseline (one-shot prove per job)")
    );
    assert!(serial.all_verified(), "serial proofs must verify");

    let speedup = serial_wall.as_secs_f64() / pooled_wall.as_secs_f64();
    println!(
        "\nend-to-end: pooled {:.3}s vs serial {:.3}s -> {speedup:.2}x speedup",
        pooled_wall.as_secs_f64(),
        serial_wall.as_secs_f64()
    );
    assert!(
        speedup >= 2.0,
        "acceptance: pool+cache must be >=2x faster, got {speedup:.2}x"
    );
    println!("acceptance: >=2x speedup over one-shot proving: PASS");
}
