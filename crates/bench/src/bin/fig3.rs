//! Figure 3: proving-time comparison for the `[49,64] x [64,128]` matrix
//! multiplication against prior work.
//!
//! Measured series: vanilla Groth16 (which also stands in for vCNN — the
//! paper's own motivation is that vCNN's convolution encoding does not help
//! general matmul), vanilla Spartan, and zkVC on both backends. ZEN / zkML
//! numbers are echoed from the paper for context.
//!
//! Run with `--full` for the paper-scale shape; the default quick mode uses
//! a reduced shape with the same structure.

use zkvc_bench::{
    full_mode, paper, paper_matmul_dims, print_results, quick_matmul_dims, run_matmul, speedup,
};
use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;

fn main() {
    let dims = if full_mode() {
        paper_matmul_dims(128) // [49, 64] x [64, 128]
    } else {
        quick_matmul_dims(128)
    };
    println!(
        "Figure 3 — matmul proving time, dims [{}x{}] x [{}x{}] ({})",
        dims.0,
        dims.1,
        dims.1,
        dims.2,
        if full_mode() {
            "paper scale"
        } else {
            "quick mode; pass --full for paper scale"
        }
    );

    let results = vec![
        run_matmul(
            "groth16 (vanilla, ~vCNN)",
            dims,
            Strategy::Vanilla,
            Backend::Groth16,
            1,
        ),
        run_matmul(
            "spartan (vanilla)",
            dims,
            Strategy::Vanilla,
            Backend::Spartan,
            2,
        ),
        run_matmul(
            "zkVC-G (CRPC+PSQ)",
            dims,
            Strategy::CrpcPsq,
            Backend::Groth16,
            3,
        ),
        run_matmul(
            "zkVC-S (CRPC+PSQ)",
            dims,
            Strategy::CrpcPsq,
            Backend::Spartan,
            4,
        ),
    ];
    print_results("Figure 3 (measured)", &results);

    let g = [&results[0], &results[2]];
    println!(
        "\nzkVC-G speed-up over vanilla groth16: {:.1}x (paper reports ~{:.1}x over vCNN's ~{}s)",
        g[0].prove.as_secs_f64() / g[1].prove.as_secs_f64(),
        paper::FIG3_ZKVC_SPEEDUP,
        paper::FIG3_VCNN_SECONDS,
    );
    println!(
        "zkVC-S speed-up over vanilla spartan: {:.1}x",
        results[1].prove.as_secs_f64() / results[3].prove.as_secs_f64()
    );
    let _ = speedup(&results);
}
