//! Table II: ablation of CRPC and PSQ on the patch-embedding matmul
//! (`[49,320] x [320,512]` at paper scale), for both backends.

use zkvc_bench::{full_mode, paper, print_results, run_matmul, secs};
use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;

fn main() {
    let dims = if full_mode() {
        (49, 320, 512)
    } else {
        (8, 20, 32)
    };
    println!(
        "Table II — CRPC/PSQ ablation on [{}x{}] x [{}x{}] ({})",
        dims.0,
        dims.1,
        dims.1,
        dims.2,
        if full_mode() {
            "paper scale"
        } else {
            "quick mode; pass --full for paper scale"
        }
    );

    let rows = [
        ("CRPC: no,  PSQ: no ", Strategy::Vanilla),
        ("CRPC: no,  PSQ: yes", Strategy::VanillaPsq),
        ("CRPC: yes, PSQ: no ", Strategy::Crpc),
        ("CRPC: yes, PSQ: yes", Strategy::CrpcPsq),
    ];

    let mut groth = Vec::new();
    let mut spartan = Vec::new();
    for (i, (label, strategy)) in rows.iter().enumerate() {
        groth.push(run_matmul(
            label,
            dims,
            *strategy,
            Backend::Groth16,
            20 + i as u64,
        ));
        spartan.push(run_matmul(
            label,
            dims,
            *strategy,
            Backend::Spartan,
            30 + i as u64,
        ));
    }
    print_results("groth16 backend (measured)", &groth);
    print_results("spartan backend (measured)", &spartan);

    println!("\npaper-reported values for the same ablation ([49,320] x [320,512]):");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "row", "G prove(s)", "G verify(s)", "S prove(s)", "S verify(s)"
    );
    for ((crpc, psq, gp, gv, sp, sv), (label, _)) in paper::TABLE_II.iter().zip(rows.iter()) {
        let _ = (crpc, psq);
        println!("{label:<22} {gp:>12} {gv:>12} {sp:>12} {sv:>12}");
    }

    let g_speedup = groth[0].prove.as_secs_f64() / groth[3].prove.as_secs_f64();
    let s_speedup = spartan[0].prove.as_secs_f64() / spartan[3].prove.as_secs_f64();
    println!(
        "\nmeasured prove speed-up vanilla -> CRPC+PSQ: groth16 {g_speedup:.1}x (paper ~12.5x), spartan {s_speedup:.1}x (paper ~5.2x)"
    );
    println!(
        "measured verify times: groth16 {} -> {} s, spartan {} -> {} s",
        secs(groth[0].verify),
        secs(groth[3].verify),
        secs(spartan[0].verify),
        secs(spartan[3].verify)
    );
}
