//! Figure 6: matmul comparison across ViT embedding dimensions
//! {64, 128, 320, 512} — prover time, verifier time, proof size and online
//! time for the baselines, the interactive scheme and zkVC on both
//! backends.
//!
//! Measured series: vanilla groth16 / Spartan baselines (vCNN's matmul cost
//! is represented by vanilla groth16 — see DESIGN.md S5), the interactive
//! sum-check baseline standing in for zkCNN, and zkVC-G / zkVC-S.
//! ZEN / zkML are not re-implemented (S5).

use zkvc_bench::{
    full_mode, paper, paper_matmul_dims, print_results, quick_matmul_dims, run_interactive,
    run_matmul,
};
use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;

fn main() {
    let dims_list = [64usize, 128, 320, 512];
    let full = full_mode();
    println!(
        "Figure 6 — matmul benchmark across embedding dimensions ({})",
        if full {
            "paper scale"
        } else {
            "quick mode; pass --full for paper scale"
        }
    );
    println!(
        "paper-reported zkVC speed-up over the vanilla baselines: {:.0}x to {:.0}x",
        paper::FIG6_SPEEDUP_RANGE.0,
        paper::FIG6_SPEEDUP_RANGE.1
    );

    for dim in dims_list {
        let dims = if full {
            paper_matmul_dims(dim)
        } else {
            quick_matmul_dims(dim)
        };
        let results = vec![
            run_matmul(
                "groth16 (vanilla, ~vCNN)",
                dims,
                Strategy::Vanilla,
                Backend::Groth16,
                10,
            ),
            run_matmul(
                "spartan (vanilla)",
                dims,
                Strategy::Vanilla,
                Backend::Spartan,
                11,
            ),
            run_interactive("zkCNN-style (interactive)", dims, 12),
            run_matmul("zkVC-G", dims, Strategy::CrpcPsq, Backend::Groth16, 13),
            run_matmul("zkVC-S", dims, Strategy::CrpcPsq, Backend::Spartan, 14),
        ];
        // Online time of the interactive scheme includes the prover's time
        // because both parties must stay connected for the whole exchange.
        let title = format!(
            "embedding dim {dim}: [{}x{}] x [{}x{}]",
            dims.0, dims.1, dims.1, dims.2
        );
        print_results(&title, &results);
        let interactive_online = results[2].prove + results[2].verify;
        println!(
            "online time: interactive = {:.3}s (prover+verifier live), non-interactive = verify only",
            interactive_online.as_secs_f64()
        );
    }
}
