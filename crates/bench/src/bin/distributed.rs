//! Distributed scale-out bench: one coordinator (`zkvc serve`) plus 0, 2
//! and 4 local `zkvc worker` subprocesses, driven by the in-process client
//! library, emitting `BENCH_distributed.json`.
//!
//! What this measures is **coordinator/protocol scale-out**, not raw CPU:
//! each proof is stalled a fixed `pool.prove.delay` fault-injection delay
//! (in the serve pool and in every worker alike), emulating paper-scale
//! proof latency on shapes small enough for CI. Throughput is then bound
//! by concurrent prover *slots* — local threads plus remote capacity — so
//! jobs/sec must rise as workers attach, on any machine, single-core CI
//! runners included. The real-CPU story (where scale-out needs real
//! cores) lives in `BENCH_pool.json`; the injected delay is stamped into
//! the JSON so no reader can mistake this for a CPU benchmark.
//!
//! The run doubles as an acceptance gate: it asserts jobs/sec increases
//! strictly monotonically 0 -> 2 -> 4 workers and that every proof
//! verifies.
//!
//! * default: 24 jobs of `4x4x4:zkvc:g`, 60 ms injected prove latency
//! * `--smoke`: 12 jobs (CI-friendly, same structure)
//! * `--out PATH`: where to write the JSON (default BENCH_distributed.json)
//!
//! The `zkvc` binary is resolved next to this bench binary (same target
//! dir); `ZKVC_BIN` overrides.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use zkvc_runtime::codec::DISTRIBUTED_BENCH_SCHEMA;
use zkvc_runtime::{run_client, ClientConfig, JobSpec, ListenAddr};

/// Worker counts swept, in order; monotone throughput across this sweep
/// is the acceptance bar.
const WORKER_COUNTS: [usize; 3] = [0, 2, 4];
/// Concurrent slots per worker subprocess.
const WORKER_CAPACITY: usize = 2;
/// Local prover threads in the coordinator's own pool.
const LOCAL_THREADS: usize = 1;
/// Injected per-proof latency (ms), identical in pool and workers.
const PROVE_DELAY_MS: u64 = 60;

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// The `zkvc` CLI this bench orchestrates: `$ZKVC_BIN` if set, else the
/// sibling binary in the same target directory.
fn zkvc_bin() -> PathBuf {
    if let Ok(path) = std::env::var("ZKVC_BIN") {
        return PathBuf::from(path);
    }
    let mut path = std::env::current_exe().expect("current_exe");
    path.set_file_name("zkvc");
    path
}

fn fault_schedule() -> String {
    format!("seed=1;pool.prove.delay=1@{PROVE_DELAY_MS}")
}

fn spawn_serve(bin: &PathBuf, sock: &str) -> Child {
    Command::new(bin)
        .args([
            "serve",
            "--listen",
            sock,
            "--workers",
            &LOCAL_THREADS.to_string(),
        ])
        .env("ZKVC_FAULTS", fault_schedule())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn zkvc serve (build release binaries first)")
}

fn spawn_worker(bin: &PathBuf, sock: &str) -> Child {
    Command::new(bin)
        .args([
            "worker",
            "--connect",
            sock,
            "--capacity",
            &WORKER_CAPACITY.to_string(),
        ])
        .env("ZKVC_FAULTS", fault_schedule())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn zkvc worker")
}

fn wait_for_socket(path: &std::path::Path) {
    let t0 = Instant::now();
    while !path.exists() {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "serve did not bind {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

struct Point {
    workers: usize,
    slots: usize,
    wall: Duration,
    jobs_per_sec: f64,
}

/// One sweep point: fresh coordinator, `w` workers, warmup + best-of-reps.
fn measure(bin: &PathBuf, w: usize, spec: JobSpec, jobs: usize, reps: usize) -> Point {
    let sock_path =
        std::env::temp_dir().join(format!("zkvc-bench-dist-{}-{w}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock_path);
    let sock = format!("unix:{}", sock_path.display());
    let mut serve = spawn_serve(bin, &sock);
    wait_for_socket(&sock_path);
    let mut workers: Vec<Child> = (0..w).map(|_| spawn_worker(bin, &sock)).collect();
    // Registration is one line each way on a local socket; give it a beat.
    std::thread::sleep(Duration::from_millis(400));

    let config = ClientConfig::new(ListenAddr::parse(&sock).expect("socket addr"), spec)
        .count(jobs)
        .seed(Some(7))
        .retries(0);

    // Warmup: first batch pays key setup in every process (and ships
    // shapes to every worker); measured reps run warm.
    let warm = run_client(&config).expect("warmup batch");
    assert!(warm.all_ok(), "warmup must verify: {warm:?}");

    let mut best: Option<Duration> = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let report = run_client(&config).expect("measured batch");
        let wall = t0.elapsed();
        assert!(report.all_ok(), "measured batch must verify: {report:?}");
        assert_eq!(report.results(), jobs, "one answer per id");
        if best.is_none_or(|b| wall < b) {
            best = Some(wall);
        }
    }
    let wall = best.expect("at least one rep");

    for child in &mut workers {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = serve.kill();
    let _ = serve.wait();
    let _ = std::fs::remove_file(&sock_path);

    Point {
        workers: w,
        slots: LOCAL_THREADS + w * WORKER_CAPACITY,
        wall,
        jobs_per_sec: jobs as f64 / wall.as_secs_f64(),
    }
}

fn render_json(mode: &str, spec: &JobSpec, jobs: usize, reps: usize, points: &[Point]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{DISTRIBUTED_BENCH_SCHEMA}\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"spec\": \"{spec}\",");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(out, "  \"threads\": {},", cores());
    let _ = writeln!(out, "  \"cores\": {},", cores());
    let _ = writeln!(
        out,
        "  \"tune_profile\": \"{}\",",
        zkvc_runtime::tune::active_digest()
    );
    let _ = writeln!(out, "  \"local_threads\": {LOCAL_THREADS},");
    let _ = writeln!(out, "  \"worker_capacity\": {WORKER_CAPACITY},");
    let _ = writeln!(out, "  \"simulated_prove_ms\": {PROVE_DELAY_MS},");
    let _ = writeln!(out, "  \"points\": [");
    let base = points[0].jobs_per_sec;
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"workers\": {}, \"cores\": {}, \"slots\": {}, \"wall_s\": {:.3}, \"jobs_per_sec\": {:.2}, \"speedup_vs_local_only\": {:.2}}}{}",
            p.workers,
            cores(),
            p.slots,
            p.wall.as_secs_f64(),
            p.jobs_per_sec,
            p.jobs_per_sec / base,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_distributed.json".to_string());

    let mode = if smoke { "smoke" } else { "default" };
    let (jobs, reps) = if smoke { (12, 1) } else { (24, 2) };
    let (spec, _) = JobSpec::parse("4x4x4:zkvc:g").expect("spec");
    let bin = zkvc_bin();
    assert!(
        bin.exists(),
        "zkvc binary not found at {} (cargo build --release, or set ZKVC_BIN)",
        bin.display()
    );

    // Kernel dispatch under the same profile a production process would
    // load; the digest lands in the JSON as `tune_profile` provenance.
    let _ = zkvc_runtime::tune::startup(None);
    println!(
        "distributed bench: mode={mode}, {jobs} jobs of {spec}, {PROVE_DELAY_MS} ms injected prove latency, cores={}, tune profile {}",
        cores(),
        zkvc_runtime::tune::active_digest()
    );
    let mut points = Vec::new();
    for w in WORKER_COUNTS {
        let p = measure(&bin, w, spec, jobs, reps);
        println!(
            "  workers={:<2} slots={:<2} {:>8.3?}  ({:.2} jobs/s)",
            p.workers, p.slots, p.wall, p.jobs_per_sec
        );
        points.push(p);
    }

    // Acceptance: strictly monotone throughput as workers attach.
    for pair in points.windows(2) {
        assert!(
            pair[1].jobs_per_sec > pair[0].jobs_per_sec,
            "throughput must rise with workers: {} workers {:.2} jobs/s !> {} workers {:.2} jobs/s",
            pair[1].workers,
            pair[1].jobs_per_sec,
            pair[0].workers,
            pair[0].jobs_per_sec
        );
    }

    let json = render_json(mode, &spec, jobs, reps, &points);
    let mut file = std::fs::File::create(&out_path).expect("create output");
    file.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out_path}");
}
