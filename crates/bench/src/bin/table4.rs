//! Table IV: end-to-end BERT proving time for the four token-mixer
//! schedules (SoftApprox, SoftFree-S, SoftFree-L, zkVC hybrid).
//!
//! Quick mode proves a 1/8-scale two-block slice of the paper's BERT;
//! `--full` runs the full 4-layer, 256-dim, 128-token model. GLUE accuracy
//! columns are echoed from the paper (substitution S4).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_bench::{full_mode, paper, secs};
use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;
use zkvc_nn::circuit::ModelCircuit;
use zkvc_nn::mixer::MixerSchedule;
use zkvc_nn::models::{BertConfig, ModelConfig};

fn main() {
    let base = BertConfig::paper().to_model();
    let model: ModelConfig = if full_mode() {
        base
    } else {
        let scaled = base.scaled_down(8);
        ModelConfig {
            name: scaled.name.clone(),
            input_dim: scaled.input_dim,
            layers: scaled.layers.into_iter().take(2).collect(),
            num_classes: scaled.num_classes,
        }
    };
    let n = model.num_layers();
    let schedules = vec![
        MixerSchedule::soft_approx(n),
        MixerSchedule::soft_free_s(n),
        MixerSchedule::soft_free_l(n),
        MixerSchedule::zkvc_hybrid_nlp(n),
    ];

    println!(
        "Table IV — verifiable BERT inference ({})",
        if full_mode() {
            "paper-scale model"
        } else {
            "quick mode: 1/8-scale two-block slice; pass --full for paper scale"
        }
    );
    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "schedule", "constraints", "P_G (s)", "P_S (s)"
    );

    let mut rng = StdRng::seed_from_u64(123);
    for schedule in &schedules {
        let circuit = ModelCircuit::build(&model, schedule, Strategy::CrpcPsq, 13);
        assert!(circuit.cs.is_satisfied(), "{}", schedule.name);

        let t0 = Instant::now();
        let g = Backend::Groth16.prove_cs(&circuit.cs, &mut rng);
        let pg = t0.elapsed();
        assert!(Backend::Groth16.verify_cs(&circuit.cs, &g));

        let t1 = Instant::now();
        let s = Backend::Spartan.prove_cs(&circuit.cs, &mut rng);
        let ps = t1.elapsed();
        assert!(Backend::Spartan.verify_cs(&circuit.cs, &s));

        println!(
            "{:<12} {:>12} {:>10} {:>10}",
            schedule.name,
            circuit.num_constraints(),
            secs(pg),
            secs(ps)
        );
    }

    println!("\npaper-reported Table IV (GLUE accuracy echoed, not re-measured):");
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10}",
        "schedule", "MNLI", "QNLI", "SST-2", "MRPC", "P_G (s)", "P_S (s)"
    );
    for (schedule, acc, pg, ps) in paper::TABLE_IV {
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10}",
            schedule, acc[0], acc[1], acc[2], acc[3], pg, ps
        );
    }
}
