//! Table III: end-to-end ViT proving time for the four token-mixer
//! schedules on the CIFAR-10, Tiny-ImageNet and ImageNet architectures.
//!
//! Quick mode (default) proves a two-block slice of each architecture at
//! 1/8 scale — enough to show the SoftApprox > SoftFree-S > zkVC >
//! SoftFree-P ordering the paper reports — and prints the per-schedule
//! constraint counts of the slice. `--full` builds and proves the full
//! paper-scale models (very slow on this pure-Rust substrate).
//!
//! Accuracy columns are echoed from the paper: they are a property of
//! training, which is out of scope here (DESIGN.md, substitution S4).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_bench::{full_mode, paper, secs};
use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;
use zkvc_nn::circuit::ModelCircuit;
use zkvc_nn::mixer::MixerSchedule;
use zkvc_nn::models::{ModelConfig, VitConfig};

fn schedules(n: usize) -> Vec<MixerSchedule> {
    vec![
        MixerSchedule::soft_approx(n),
        MixerSchedule::soft_free_s(n),
        MixerSchedule::soft_free_p(n),
        MixerSchedule::zkvc_hybrid(n),
    ]
}

fn prepare(model: ModelConfig) -> ModelConfig {
    if full_mode() {
        model
    } else {
        // quick mode: 1/8 scale, two-block slice
        let scaled = model.scaled_down(8);
        ModelConfig {
            name: scaled.name.clone(),
            input_dim: scaled.input_dim,
            layers: scaled.layers.into_iter().take(2).collect(),
            num_classes: scaled.num_classes,
        }
    }
}

fn main() {
    let datasets: Vec<(&str, ModelConfig)> = vec![
        ("CIFAR-10", prepare(VitConfig::cifar10().to_model())),
        (
            "Tiny-ImageNet",
            prepare(VitConfig::tiny_imagenet().to_model()),
        ),
        (
            "ImageNet",
            prepare(VitConfig::imagenet_hierarchical().to_model()),
        ),
    ];
    println!(
        "Table III — verifiable ViT inference ({})",
        if full_mode() {
            "paper-scale models"
        } else {
            "quick mode: 1/8-scale two-block slices; pass --full for paper scale"
        }
    );
    println!(
        "{:<15} {:<12} {:>12} {:>10} {:>10} {:>10}",
        "dataset", "schedule", "constraints", "P_G (s)", "P_S (s)", "verify(s)"
    );

    let mut rng = StdRng::seed_from_u64(99);
    for (dataset, model) in &datasets {
        for schedule in schedules(model.num_layers()) {
            let circuit = ModelCircuit::build(model, &schedule, Strategy::CrpcPsq, 7);
            assert!(circuit.cs.is_satisfied(), "{dataset}/{}", schedule.name);

            let t0 = Instant::now();
            let g = Backend::Groth16.prove_cs(&circuit.cs, &mut rng);
            let pg = t0.elapsed();
            let (g_ok, gv) = Backend::Groth16.verify_cs_timed(&circuit.cs, &g);
            assert!(g_ok);

            let t1 = Instant::now();
            let s = Backend::Spartan.prove_cs(&circuit.cs, &mut rng);
            let ps = t1.elapsed();
            let (s_ok, _sv) = Backend::Spartan.verify_cs_timed(&circuit.cs, &s);
            assert!(s_ok);

            println!(
                "{:<15} {:<12} {:>12} {:>10} {:>10} {:>10}",
                dataset,
                schedule.name,
                circuit.num_constraints(),
                secs(pg),
                secs(ps),
                secs(gv)
            );
        }
    }

    println!("\npaper-reported Table III (accuracy echoed, not re-measured):");
    println!(
        "{:<15} {:<12} {:>8} {:>10} {:>10}",
        "dataset", "schedule", "top1(%)", "P_G (s)", "P_S (s)"
    );
    for (dataset, schedule, acc, pg, ps) in paper::TABLE_III {
        println!("{dataset:<15} {schedule:<12} {acc:>8} {pg:>10} {ps:>10}");
    }
}
