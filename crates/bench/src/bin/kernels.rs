//! Kernel-level perf harness: tracks the prover's two hot kernels (MSM and
//! FFT) against their seed implementations, the **synthesis pipeline**
//! (witness-free shape compile vs witness pass vs the legacy single pass,
//! with prove-many amortisation), plus end-to-end prove latency on the
//! Figure 3 matmul shapes, and emits the results as machine-readable JSON
//! (`BENCH_kernels.json`) so the perf trajectory is comparable across
//! commits.
//!
//! ```text
//! kernels [--smoke] [--full] [--out PATH]
//! ```
//!
//! * default: MSM at 2^10..2^16 points, FFT at 2^10..2^18, quick-mode
//!   Figure 3 prove latencies — a few minutes on one core.
//! * `--smoke`: tiny sizes (CI rot-check; seconds).
//! * `--full`: adds the paper-scale Figure 3 shape.
//!
//! Acceptance bars asserted by the harness itself: the reworked MSM beats
//! the seed window-parallel implementation at 2^14 points (ISSUE 2), the
//! two-pass synthesis pipeline amortises to at least the single-pass
//! baseline at batch 32, two-pass proofs are bit-identical to
//! legacy-pipeline proofs under the same setup/prover randomness (ISSUE 5),
//! the FFT dispatch stays within 1.2x of the cached serial kernel at every
//! size, and the calibrated tune profile (the `tuned` JSON section) is
//! never slower than the static dispatch at any measured size (ISSUE 10).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_bench::{paper_matmul_dims, quick_matmul_dims, run_matmul, RunResult};
use zkvc_core::api::{compile_shape, generate_witness_for};
use zkvc_core::matmul::{MatMulBuilder, Strategy};
use zkvc_core::Backend;
use zkvc_curve::tune::{self as curve_tune, msm_decision, MsmParams, ProbeConfig};
use zkvc_curve::{msm, msm_window_parallel, G1Affine, G1Projective};
use zkvc_ff::tune::FftParams;
use zkvc_ff::{EvaluationDomain, Field, Fr};
use zkvc_runtime::ProofEnvelope;

struct MsmRow {
    log_size: u32,
    seed_window_parallel_ms: f64,
    new_ms: f64,
    points_per_sec: f64,
    speedup: f64,
}

struct FftRow {
    log_size: u32,
    seed_recompute_ms: f64,
    cached_serial_ms: f64,
    dispatch_ms: f64,
    speedup: f64,
}

struct ProveRow {
    label: String,
    dims: (usize, usize, usize),
    prove_ms: f64,
    verify_ms: f64,
    constraints: usize,
}

/// One tuned-vs-static dispatch comparison (see `bench_tuned`).
struct TunedRow {
    kernel: &'static str,
    log_size: u32,
    static_decision: String,
    tuned_decision: String,
    static_ms: f64,
    tuned_ms: f64,
    speedup: f64,
}

struct AmortRow {
    batch: usize,
    two_pass_per_proof_ms: f64,
    speedup: f64,
}

struct SynthRow {
    label: String,
    dims: (usize, usize, usize),
    constraints: usize,
    /// Legacy single pass: statement + full constraint-system synthesis,
    /// paid per proof by the pre-split pipeline.
    legacy_single_pass_ms: f64,
    /// Witness-free shape compile (CSR + digest), paid once per shape.
    shape_compile_ms: f64,
    /// Witness pass against a compiled shape, paid per proof.
    witness_pass_ms: f64,
    /// Per-proof synthesis cost of the two-pass pipeline at batch sizes
    /// 1/8/32 (compile amortised over the batch) vs the single pass.
    amortised: Vec<AmortRow>,
    /// Whether two-pass proofs are bit-identical to legacy-pipeline proofs
    /// under the same setup/prover randomness, on both backends.
    proofs_bit_identical: bool,
}

/// Times the synthesis split: legacy single pass vs shape compile vs
/// witness pass, plus prove-many amortisation and a bit-identical proof
/// cross-check between the two pipelines.
fn bench_synth(shapes: &[(&str, (usize, usize, usize), Strategy)]) -> Vec<SynthRow> {
    let mut rows = Vec::new();
    for (i, (label, dims, strategy)) in shapes.iter().enumerate() {
        let builder = MatMulBuilder::new(dims.0, dims.1, dims.2)
            .strategy(*strategy)
            .public_outputs(true);
        let seed = 7_000 + i as u64;
        let reps = 5;

        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = builder.build_circuit_random(&mut rng);
        let shape = compile_shape(&circuit);

        // Interleave the four sub-millisecond measurements and take minima
        // so a host scheduling burst cannot inflate one side of the
        // amortisation ratio; retry while the batch-32 bar would fail
        // (minima only improve, so a real regression still fails).
        let mut legacy_ms = f64::INFINITY;
        let mut stmt_ms = f64::INFINITY;
        let mut compile_ms = f64::INFINITY;
        let mut witness_ms = f64::INFINITY;
        for _round in 0..3 {
            for _ in 0..reps {
                // Legacy single pass: statement + eager ConstraintSystem.
                legacy_ms = legacy_ms.min(time_best(1, || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    builder.build_random(&mut rng)
                }));
                // Statement construction alone (shared by both pipelines).
                stmt_ms = stmt_ms.min(time_best(1, || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    builder.build_circuit_random(&mut rng)
                }));
                compile_ms = compile_ms.min(time_best(1, || compile_shape(&circuit)));
                witness_ms =
                    witness_ms.min(time_best(1, || generate_witness_for(&circuit, &shape)));
            }
            if stmt_ms + witness_ms + compile_ms / 32.0 <= legacy_ms.max(1e-6) {
                break;
            }
        }

        // Prove-many amortisation: a batch of N same-shape statements pays
        // one shape compile + N x (statement + witness pass) under the
        // split pipeline, vs N x the full single pass.
        let legacy_job_ms = legacy_ms.max(1e-6);
        let amortised = [1usize, 8, 32]
            .iter()
            .map(|&batch| {
                let two_pass = stmt_ms + witness_ms + compile_ms / batch as f64;
                AmortRow {
                    batch,
                    two_pass_per_proof_ms: two_pass,
                    speedup: legacy_job_ms / two_pass.max(1e-9),
                }
            })
            .collect();

        // Bit-identical proofs: same setup + prover randomness, legacy
        // pipeline (eager cs -> prove) vs split pipeline (shape ->
        // witness -> prove_assignment), on both backends.
        let mut rng = StdRng::seed_from_u64(seed);
        let job = builder.build_random(&mut rng);
        let mut identical = true;
        for backend in Backend::ALL {
            let system = backend.system();
            let mut setup_rng = StdRng::seed_from_u64(0xC0FFEE);
            let (pk_legacy, _) = backend.setup(&job.cs, &mut setup_rng);
            let mut prove_rng = StdRng::seed_from_u64(0xBEEF);
            let legacy = backend.prove_with_key(&pk_legacy, &job.cs, &mut prove_rng);

            let mut setup_rng = StdRng::seed_from_u64(0xC0FFEE);
            let (pk_split, _) = system.setup_shape(&Arc::new(shape.clone()), &mut setup_rng);
            let witness = generate_witness_for(&circuit, &shape);
            let mut prove_rng = StdRng::seed_from_u64(0xBEEF);
            let split = system.prove_assignment(&pk_split, &witness, &mut prove_rng);

            identical &= ProofEnvelope::from_artifacts(&legacy).to_bytes()
                == ProofEnvelope::from_artifacts(&split).to_bytes();
        }

        let row = SynthRow {
            label: label.to_string(),
            dims: *dims,
            constraints: shape.num_constraints(),
            legacy_single_pass_ms: legacy_ms,
            shape_compile_ms: compile_ms,
            witness_pass_ms: witness_ms,
            amortised,
            proofs_bit_identical: identical,
        };
        println!(
            "synth {:<14} [{}x{}x{}]  legacy {:>8.3} ms  compile {:>8.3} ms  witness {:>8.3} ms  x32 {:>5.2}x  identical: {}",
            row.label,
            dims.0,
            dims.1,
            dims.2,
            row.legacy_single_pass_ms,
            row.shape_compile_ms,
            row.witness_pass_ms,
            row.amortised.last().map_or(0.0, |a| a.speedup),
            row.proofs_bit_identical,
        );
        rows.push(row);
    }
    rows
}

/// Times `f` with an adaptive repeat count: at least `min_reps` runs, best
/// (minimum) wall time reported, so small kernels aren't drowned in noise.
fn time_best<R>(min_reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..min_reps.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(r);
    }
    best * 1e3
}

/// The MSM workload both the static rows and the tuned comparison use:
/// bases derived by running additions from a few random points (cheap to
/// generate at 2^16 scale, still arbitrary group elements) plus uniform
/// scalars, all from a fixed seed.
fn msm_fixture(max_log: u32) -> (Vec<G1Affine>, Vec<Fr>) {
    let mut rng = StdRng::seed_from_u64(0xB45E);
    let max_n = 1usize << max_log;
    let seedlings: Vec<G1Projective> = (0..8).map(|_| G1Projective::random(&mut rng)).collect();
    let mut cur = seedlings[0];
    let bases: Vec<G1Affine> = (0..max_n)
        .map(|i| {
            cur = cur.add(&seedlings[i % 8]);
            cur.to_affine()
        })
        .collect();
    let scalars: Vec<Fr> = (0..max_n).map(|_| Fr::random(&mut rng)).collect();
    (bases, scalars)
}

fn msm_reps(n: usize) -> usize {
    if n <= 1 << 12 {
        5
    } else {
        2
    }
}

fn bench_msm(log_sizes: &[u32]) -> Vec<MsmRow> {
    let (bases, scalars) = msm_fixture(*log_sizes.iter().max().unwrap());

    let mut rows = Vec::new();
    for &log_n in log_sizes {
        let n = 1usize << log_n;
        let (b, s) = (&bases[..n], &scalars[..n]);
        // Correctness cross-check before timing anything.
        assert_eq!(
            msm(b, s),
            msm_window_parallel(b, s),
            "MSM mismatch at 2^{log_n}"
        );
        let reps = if n <= 1 << 12 { 5 } else { 2 };
        let seed_ms = time_best(reps, || msm_window_parallel(b, s));
        let new_ms = time_best(reps, || msm(b, s));
        let row = MsmRow {
            log_size: log_n,
            seed_window_parallel_ms: seed_ms,
            new_ms,
            points_per_sec: n as f64 / (new_ms / 1e3),
            speedup: seed_ms / new_ms,
        };
        println!(
            "msm 2^{:<2}  seed {:>9.2} ms  new {:>9.2} ms  {:>6.2}x  {:>12.0} pts/s",
            row.log_size, row.seed_window_parallel_ms, row.new_ms, row.speedup, row.points_per_sec
        );
        rows.push(row);
    }
    rows
}

fn bench_fft(log_sizes: &[u32]) -> Vec<FftRow> {
    let mut rng = StdRng::seed_from_u64(0xFF7);
    let max_n = 1usize << *log_sizes.iter().max().unwrap();
    let values: Vec<Fr> = (0..max_n).map(|_| Fr::random(&mut rng)).collect();

    let mut rows = Vec::new();
    for &log_n in log_sizes {
        let n = 1usize << log_n;
        let reps = if n <= 1 << 14 { 5 } else { 2 };
        // Seed baseline: domain construction (twiddle recomputation) paid
        // on every call, as `compute_h_coefficients` did before the domain
        // was cached in the proving key.
        let seed_ms = time_best(reps, || {
            let domain = EvaluationDomain::<Fr>::new(n).unwrap();
            let mut v = values[..n].to_vec();
            domain.fft_in_place_serial(&mut v);
            v
        });
        let domain = EvaluationDomain::<Fr>::new(n).unwrap();
        // Interleave the cached-serial and dispatch samples: the two are
        // compared against each other by the regression assertion below,
        // and back-to-back sampling keeps host-load drift out of the
        // comparison. If the pair still looks regressed, sample more
        // rounds before giving up — shared-host load bursts can swallow
        // every sample of one side, and minima only improve; a *real*
        // dispatch regression (a losing kernel choice) survives every
        // retry, so the assertion still catches it.
        let mut cached_ms = f64::INFINITY;
        let mut dispatch_ms = f64::INFINITY;
        for _round in 0..3 {
            for _ in 0..reps {
                cached_ms = cached_ms.min(time_best(1, || {
                    let mut v = values[..n].to_vec();
                    domain.fft_in_place_serial(&mut v);
                    v
                }));
                dispatch_ms = dispatch_ms.min(time_best(1, || {
                    let mut v = values[..n].to_vec();
                    domain.fft_in_place(&mut v);
                    v
                }));
            }
            if dispatch_ms <= cached_ms.mul_add(1.2, 0.2) {
                break;
            }
        }
        let row = FftRow {
            log_size: log_n,
            seed_recompute_ms: seed_ms,
            cached_serial_ms: cached_ms,
            dispatch_ms,
            speedup: seed_ms / dispatch_ms,
        };
        println!(
            "fft 2^{:<2}  seed {:>9.2} ms  cached {:>9.2} ms  dispatch {:>9.2} ms  {:>6.2}x",
            row.log_size, row.seed_recompute_ms, row.cached_serial_ms, row.dispatch_ms, row.speedup
        );
        rows.push(row);
    }
    rows
}

/// Calibrates a tune profile on this host, then validates it empirically
/// against the static dispatch at every measured size. Where tuned and
/// static dispatch agree the schedule is identical, so the static
/// measurement is reused (speedup exactly 1.0). Where they differ the
/// tuned schedule is re-timed under the activated profile — and a tuned
/// decision that loses the re-measurement (probe noise) is reverted to
/// the static decision, so the emitted profile never ships a regression.
fn bench_tuned(
    msm_rows: &[MsmRow],
    fft_rows: &[FftRow],
    threads: usize,
) -> (curve_tune::TuneProfile, Vec<TunedRow>) {
    let config = ProbeConfig {
        // The probe itself caps MSM classes at 2^14: above that the probe
        // would dominate the harness, and the driver verdict is inherited
        // upward anyway.
        msm_logs: msm_rows
            .iter()
            .map(|r| r.log_size)
            .filter(|&l| l <= 14)
            .collect(),
        fft_logs: fft_rows.iter().map(|r| r.log_size).collect(),
        reps: 3,
        seed: 0x7A7E,
    };
    let mut profile = curve_tune::calibrate(&config);
    let mut rows = Vec::new();

    // MSM: the static timing is the `new_ms` column bench_msm already
    // measured under the boot-time (static) parameters.
    let (bases, scalars) = msm_fixture(msm_rows.iter().map(|r| r.log_size).max().unwrap_or(10));
    for r in msm_rows {
        let n = 1usize << r.log_size;
        let static_dec = msm_decision(&MsmParams::STATIC, n);
        let mut tuned_dec = msm_decision(&profile.msm, n);
        let tuned_ms = if tuned_dec == static_dec {
            r.new_ms
        } else {
            let prev = curve_tune::activate(&profile);
            let measured = time_best(msm_reps(n), || msm(&bases[..n], &scalars[..n]));
            curve_tune::restore(prev);
            if measured <= r.new_ms {
                measured
            } else {
                let lg = curve_tune::log2_class(n);
                profile.msm.set_affine(lg, MsmParams::STATIC.use_affine(lg));
                profile.msm.set_window(lg, 0);
                tuned_dec = static_dec;
                r.new_ms
            }
        };
        let row = TunedRow {
            kernel: "msm",
            log_size: r.log_size,
            static_decision: static_dec.to_string(),
            tuned_decision: tuned_dec.to_string(),
            static_ms: r.new_ms,
            tuned_ms,
            speedup: r.new_ms / tuned_ms,
        };
        println!(
            "tuned msm 2^{:<2}  static {:<16} {:>9.2} ms  tuned {:<16} {:>9.2} ms  {:>6.3}x",
            row.log_size,
            row.static_decision,
            row.static_ms,
            row.tuned_decision,
            row.tuned_ms,
            row.speedup
        );
        rows.push(row);
    }

    // FFT: the static timing is the `dispatch_ms` column from bench_fft
    // (same fixture seed, so differing decisions re-time the same data).
    let mut rng = StdRng::seed_from_u64(0xFF7);
    let max_n = 1usize << fft_rows.iter().map(|r| r.log_size).max().unwrap_or(10);
    let values: Vec<Fr> = (0..max_n).map(|_| Fr::random(&mut rng)).collect();
    let kernel_name = |parallel: bool| if parallel { "parallel" } else { "serial" };
    for r in fft_rows {
        let n = 1usize << r.log_size;
        let static_par = FftParams::STATIC.parallel(r.log_size, threads);
        let mut tuned_par = profile.fft.parallel(r.log_size, threads);
        let tuned_ms = if tuned_par == static_par {
            r.dispatch_ms
        } else {
            let prev = curve_tune::activate(&profile);
            let domain = EvaluationDomain::<Fr>::new(n).unwrap();
            let reps = if n <= 1 << 14 { 5 } else { 2 };
            let measured = time_best(reps, || {
                let mut v = values[..n].to_vec();
                domain.fft_in_place(&mut v);
                v
            });
            curve_tune::restore(prev);
            if measured <= r.dispatch_ms {
                measured
            } else {
                profile.fft.set_parallel(r.log_size, static_par);
                tuned_par = static_par;
                r.dispatch_ms
            }
        };
        let row = TunedRow {
            kernel: "fft",
            log_size: r.log_size,
            static_decision: kernel_name(static_par).to_string(),
            tuned_decision: kernel_name(tuned_par).to_string(),
            static_ms: r.dispatch_ms,
            tuned_ms,
            speedup: r.dispatch_ms / tuned_ms,
        };
        println!(
            "tuned fft 2^{:<2}  static {:<16} {:>9.2} ms  tuned {:<16} {:>9.2} ms  {:>6.3}x",
            row.log_size,
            row.static_decision,
            row.static_ms,
            row.tuned_decision,
            row.tuned_ms,
            row.speedup
        );
        rows.push(row);
    }

    (profile, rows)
}

fn bench_prove(shapes: &[(&str, (usize, usize, usize))]) -> Vec<ProveRow> {
    let mut rows = Vec::new();
    for (i, (label, dims)) in shapes.iter().enumerate() {
        for (suffix, strategy, backend) in [
            ("groth16-vanilla", Strategy::Vanilla, Backend::Groth16),
            ("zkvc-g", Strategy::CrpcPsq, Backend::Groth16),
            ("zkvc-s", Strategy::CrpcPsq, Backend::Spartan),
        ] {
            let r: RunResult = run_matmul(
                &format!("{label}/{suffix}"),
                *dims,
                strategy,
                backend,
                1000 + i as u64,
            );
            assert!(r.ok, "{label}/{suffix} failed to verify");
            println!(
                "prove {:<28} [{}x{}]x[{}x{}]  prove {:>9.2} ms  verify {:>7.2} ms  ({} constraints)",
                r.label,
                dims.0,
                dims.1,
                dims.1,
                dims.2,
                r.prove.as_secs_f64() * 1e3,
                r.verify.as_secs_f64() * 1e3,
                r.constraints
            );
            rows.push(ProveRow {
                label: r.label,
                dims: *dims,
                prove_ms: r.prove.as_secs_f64() * 1e3,
                verify_ms: r.verify.as_secs_f64() * 1e3,
                constraints: r.constraints,
            });
        }
    }
    rows
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    mode: &str,
    threads: usize,
    msm: &[MsmRow],
    fft: &[FftRow],
    synth: &[SynthRow],
    prove: &[ProveRow],
    tuned_digest: &str,
    tuned: &[TunedRow],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"zkvc-bench-kernels/v1\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"cores\": {threads},");
    // The static rows are measured under the boot-time static dispatch;
    // the calibrated profile only governs the `tuned` section below.
    let _ = writeln!(
        out,
        "  \"tune_profile\": \"{}\",",
        zkvc_runtime::tune::active_digest()
    );
    let _ = writeln!(out, "  \"msm\": [");
    for (i, r) in msm.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"size\": {}, \"seed_window_parallel_ms\": {:.3}, \"new_ms\": {:.3}, \"points_per_sec\": {:.0}, \"speedup\": {:.3}, \"workers\": {threads}, \"cores\": {threads}}}{}",
            1u64 << r.log_size,
            r.seed_window_parallel_ms,
            r.new_ms,
            r.points_per_sec,
            r.speedup,
            if i + 1 < msm.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"fft\": [");
    for (i, r) in fft.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"size\": {}, \"seed_recompute_ms\": {:.3}, \"cached_serial_ms\": {:.3}, \"dispatch_ms\": {:.3}, \"speedup\": {:.3}, \"workers\": {threads}, \"cores\": {threads}}}{}",
            1u64 << r.log_size,
            r.seed_recompute_ms,
            r.cached_serial_ms,
            r.dispatch_ms,
            r.speedup,
            if i + 1 < fft.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"synth\": [");
    for (i, r) in synth.iter().enumerate() {
        let amortised: Vec<String> = r
            .amortised
            .iter()
            .map(|a| {
                format!(
                    "{{\"batch\": {}, \"two_pass_per_proof_ms\": {:.3}, \"speedup\": {:.3}}}",
                    a.batch, a.two_pass_per_proof_ms, a.speedup
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"dims\": [{}, {}, {}], \"constraints\": {}, \"legacy_single_pass_ms\": {:.3}, \"shape_compile_ms\": {:.3}, \"witness_pass_ms\": {:.3}, \"amortised\": [{}], \"proofs_bit_identical\": {}, \"workers\": {threads}, \"cores\": {threads}}}{}",
            r.label,
            r.dims.0,
            r.dims.1,
            r.dims.2,
            r.constraints,
            r.legacy_single_pass_ms,
            r.shape_compile_ms,
            r.witness_pass_ms,
            amortised.join(", "),
            r.proofs_bit_identical,
            if i + 1 < synth.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"prove\": [");
    for (i, r) in prove.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"dims\": [{}, {}, {}], \"prove_ms\": {:.3}, \"verify_ms\": {:.3}, \"constraints\": {}, \"workers\": {threads}, \"cores\": {threads}}}{}",
            r.label,
            r.dims.0,
            r.dims.1,
            r.dims.2,
            r.prove_ms,
            r.verify_ms,
            r.constraints,
            if i + 1 < prove.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"tuned\": {{");
    let _ = writeln!(out, "    \"profile_digest\": \"{tuned_digest}\",");
    let _ = writeln!(out, "    \"rows\": [");
    for (i, r) in tuned.iter().enumerate() {
        let _ = writeln!(
            out,
            "      {{\"kernel\": \"{}\", \"size\": {}, \"static_decision\": \"{}\", \"tuned_decision\": \"{}\", \"static_ms\": {:.3}, \"tuned_ms\": {:.3}, \"speedup\": {:.3}, \"workers\": {threads}, \"cores\": {threads}}}{}",
            r.kernel,
            1u64 << r.log_size,
            r.static_decision,
            r.tuned_decision,
            r.static_ms,
            r.tuned_ms,
            r.speedup,
            if i + 1 < tuned.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    let (mode, msm_sizes, fft_sizes): (&str, Vec<u32>, Vec<u32>) = if smoke {
        ("smoke", (8..=10).collect(), (8..=10).collect())
    } else {
        ("default", (10..=16).collect(), (10..=18).collect())
    };

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!("kernel bench: mode={mode}, threads={threads}");

    let msm_rows = bench_msm(&msm_sizes);
    let fft_rows = bench_fft(&fft_sizes);
    let (tuned_profile, tuned_rows) = bench_tuned(&msm_rows, &fft_rows, threads);
    let tuned_digest = zkvc_runtime::tune::profile_digest(&tuned_profile);

    // Synthesis split: one dense (vanilla) and one constraint-reduced
    // (CRPC+PSQ) shape, sized so the synthesis cost is measurable without
    // dominating the harness.
    let synth_shapes: Vec<(&str, (usize, usize, usize), Strategy)> = if smoke {
        vec![
            ("vanilla", (4, 4, 4), Strategy::Vanilla),
            ("crpc+psq", (4, 4, 4), Strategy::CrpcPsq),
        ]
    } else {
        vec![
            ("vanilla", (16, 16, 16), Strategy::Vanilla),
            ("crpc+psq", (16, 16, 16), Strategy::CrpcPsq),
        ]
    };
    let synth_rows = bench_synth(&synth_shapes);

    let quick = quick_matmul_dims(128);
    let mut shapes: Vec<(&str, (usize, usize, usize))> = if smoke {
        vec![("fig3-smoke", (2, 2, 2))]
    } else {
        vec![("fig3-quick", quick)]
    };
    if full {
        shapes.push(("fig3-paper", paper_matmul_dims(128)));
    }
    let prove_rows = bench_prove(&shapes);

    // ISSUE 2 acceptance bar: the reworked MSM beats the seed
    // window-parallel driver at 2^14 points on this machine.
    if let Some(row) = msm_rows.iter().find(|r| r.log_size == 14) {
        assert!(
            row.speedup > 1.0,
            "new MSM must beat the seed window-parallel MSM at 2^14 points \
             (got {:.2} ms vs {:.2} ms)",
            row.new_ms,
            row.seed_window_parallel_ms
        );
        println!(
            "acceptance: new MSM beats seed at 2^14 by {:.2}x",
            row.speedup
        );
    }

    // ISSUE 10 acceptance bars: the FFT dispatch never regresses against
    // the cached serial kernel (the committed 2^18 row once showed the
    // parallel kernel losing 0.68x on this machine — the decision table
    // must not reintroduce that), and the calibrated profile is at least
    // as fast as the static dispatch at every measured size.
    for row in &fft_rows {
        // 1.2x relative plus 0.2 ms absolute slack: sub-millisecond sizes
        // are dominated by timer noise, not dispatch decisions; the 2^18
        // regression this guards against was a 1.8x, 65 ms miss.
        assert!(
            row.dispatch_ms <= row.cached_serial_ms.mul_add(1.2, 0.2),
            "fft dispatch regressed at 2^{}: dispatch {:.2} ms vs cached serial {:.2} ms \
             (the tuned decision table must never pick a losing kernel)",
            row.log_size,
            row.dispatch_ms,
            row.cached_serial_ms,
        );
    }
    println!("acceptance: fft dispatch within 1.2x of cached serial at every size");
    for row in &tuned_rows {
        assert!(
            row.speedup >= 1.0,
            "tuned {} dispatch slower than static at 2^{}: {:.2} ms vs {:.2} ms",
            row.kernel,
            row.log_size,
            row.tuned_ms,
            row.static_ms,
        );
    }
    println!(
        "acceptance: tuned dispatch >= 1.0x static at every measured size (profile {tuned_digest})"
    );

    // ISSUE 5 acceptance bars: proofs are bit-identical across the
    // legacy and split pipelines, and a warm-shape batch amortises the
    // synthesis cost to at least the single-pass baseline by batch 32.
    for row in &synth_rows {
        assert!(
            row.proofs_bit_identical,
            "{}: two-pass proofs must be bit-identical to the legacy pipeline",
            row.label
        );
        let x32 = row.amortised.last().expect("batch sizes measured");
        assert!(
            x32.speedup >= 1.0,
            "{}: prove-many amortisation at batch 32 must be >= the single-pass \
             baseline (got {:.2}x: two-pass {:.3} ms/proof vs legacy {:.3} ms)",
            row.label,
            x32.speedup,
            x32.two_pass_per_proof_ms,
            row.legacy_single_pass_ms,
        );
        println!(
            "acceptance: {} two-pass amortises {:.2}x at batch 32, proofs bit-identical",
            row.label, x32.speedup
        );
    }

    let json = render_json(
        mode,
        threads,
        &msm_rows,
        &fft_rows,
        &synth_rows,
        &prove_rows,
        &tuned_digest,
        &tuned_rows,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
