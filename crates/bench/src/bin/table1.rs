//! Table I: the qualitative feature matrix comparing zkVC with prior
//! verifiable-DNN schemes.

fn main() {
    println!(
        "Table I — scheme feature comparison (last column marks what this repository implements)\n"
    );
    print!("{}", zkvc_core::schemes::render_table_i());
}
