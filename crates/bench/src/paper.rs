//! Reference values reported by the paper, echoed by the harnesses next to
//! the measured numbers so EXPERIMENTS.md can record paper-vs-measured for
//! every experiment.
//!
//! Sources: Fig. 3, Fig. 6, Table II, Table III and Table IV of
//! "zkVC: Fast Zero-Knowledge Proof for Private and Verifiable Computing"
//! (DAC 2025, arXiv:2504.12217).

/// Table II (matmul micro-benchmark on the `[49,320] x [320,512]` patch
/// embedding): (CRPC, PSQ, groth16 prove s, groth16 verify s, spartan prove
/// s, spartan verify s).
pub const TABLE_II: [(bool, bool, f64, f64, f64, f64); 4] = [
    (false, false, 9.12, 0.002, 9.04, 0.36),
    (false, true, 8.69, 0.002, 8.95, 0.32),
    (true, false, 1.01, 0.002, 1.79, 0.08),
    (true, true, 0.73, 0.002, 1.75, 0.05),
];

/// Fig. 3 headline numbers for `[49,64] x [64,128]`: vCNN takes ~9 s and
/// zkVC achieves a ~12.5x reduction over it.
pub const FIG3_VCNN_SECONDS: f64 = 9.0;
/// The speed-up over vCNN the paper reports for the same shape.
pub const FIG3_ZKVC_SPEEDUP: f64 = 12.5;

/// A Table III row: (dataset, model/schedule, top-1 accuracy %, P_G seconds,
/// P_S seconds). Accuracy is echoed from the paper (substitution S4) —
/// it is a training-time property this repository does not re-measure.
pub type VisionRow = (&'static str, &'static str, f64, f64, f64);

/// Table III as reported in the paper.
pub const TABLE_III: [VisionRow; 12] = [
    ("CIFAR-10", "SoftApprox.", 93.5, 725.2, 1006.2),
    ("CIFAR-10", "SoftFree-S", 88.3, 568.4, 742.8),
    ("CIFAR-10", "SoftFree-P", 75.1, 262.7, 300.6),
    ("CIFAR-10", "zkVC", 91.6, 458.6, 591.0),
    ("Tiny-ImageNet", "SoftApprox.", 60.5, 1609.6, 2197.4),
    ("Tiny-ImageNet", "SoftFree-S", 51.4, 1004.9, 1348.8),
    ("Tiny-ImageNet", "SoftFree-P", 42.7, 443.7, 503.6),
    ("Tiny-ImageNet", "zkVC", 55.8, 879.3, 1161.4),
    ("ImageNet", "SoftApprox.", 81.0, 10700.0, 12857.7),
    ("ImageNet", "SoftFree-S", 78.5, 4521.3, 5812.7),
    ("ImageNet", "SoftFree-P", 77.2, 2904.0, 3667.8),
    ("ImageNet", "zkVC", 80.3, 3457.1, 4417.1),
];

/// A Table IV row: (schedule, [MNLI, QNLI, SST-2, MRPC] accuracy %, P_G
/// seconds, P_S seconds).
pub type NlpRow = (&'static str, [f64; 4], f64, f64);

/// Table IV as reported in the paper.
pub const TABLE_IV: [NlpRow; 4] = [
    ("SoftApprox.", [74.5, 83.9, 85.8, 71.2], 1299.5, 1793.3),
    ("SoftFree-S", [72.7, 81.1, 85.2, 70.4], 917.1, 1201.4),
    ("SoftFree-L", [67.3, 75.3, 84.5, 68.7], 680.8, 782.0),
    ("zkVC", [70.8, 80.2, 84.7, 69.3], 798.9, 992.2),
];

/// Fig. 6 proving-time speed-up range of zkVC over the vanilla groth16 /
/// Spartan baselines reported in §V-A.
pub const FIG6_SPEEDUP_RANGE: (f64, f64) = (5.0, 12.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_trends() {
        // CRPC alone gives ~9x on groth16; CRPC+PSQ gives ~12x.
        let base = TABLE_II[0].2;
        let crpc = TABLE_II[2].2;
        let full = TABLE_II[3].2;
        assert!(base / crpc > 8.0);
        assert!(base / full > 12.0);
    }

    #[test]
    fn zkvc_is_never_slowest_in_end_to_end_tables() {
        for chunk in TABLE_III.chunks(4) {
            let zkvc = chunk.iter().find(|r| r.1 == "zkVC").unwrap();
            let softapprox = chunk.iter().find(|r| r.1 == "SoftApprox.").unwrap();
            assert!(zkvc.3 < softapprox.3);
            assert!(zkvc.4 < softapprox.4);
        }
        let zkvc = TABLE_IV.iter().find(|r| r.0 == "zkVC").unwrap();
        assert!(zkvc.2 < TABLE_IV[0].2);
    }
}
