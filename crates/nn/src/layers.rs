//! Circuit synthesis for Transformer building blocks.
//!
//! Every function takes a "token matrix" — `seq_len x dim` linear
//! combinations inside a [`ConstraintSink`] — and returns the transformed
//! token matrix, adding the constraints that verify the computation. Matrix
//! multiplications go through the configurable zkVC strategy; non-linear
//! functions use the gadgets from `zkvc-core`. Because everything is
//! written against the sink trait, the whole block compiler runs on the
//! witness-free shape pass as well as the witness and legacy passes.

use zkvc_core::fixed::FixedPointConfig;
use zkvc_core::matmul::{synthesize_matmul, Strategy};
use zkvc_core::nonlinear::{
    div_by_const_pow2, synthesize_gelu, synthesize_rsqrt, synthesize_softmax, SoftmaxConfig,
};
use zkvc_ff::{Field, Fr, PrimeField};
use zkvc_r1cs::{ConstraintSink, LinearCombination, SinkExt};

use crate::mixer::TokenMixer;
use crate::tensor::Tensor;

/// A `rows x cols` matrix of linear combinations.
pub type LcMatrix = Vec<Vec<LinearCombination<Fr>>>;

/// Allocates a quantised tensor as witness variables.
pub fn alloc_tensor<S: ConstraintSink<Fr> + ?Sized>(cs: &mut S, t: &Tensor) -> LcMatrix {
    alloc_tensor_opt(cs, t.rows(), t.cols(), Some(t))
}

/// Allocates a `rows x cols` witness tensor whose values come from `t` when
/// present — the shape-pass form: passing `None` allocates the same
/// variables with no values (and no tensor ever needs to be generated).
pub fn alloc_tensor_opt<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    rows: usize,
    cols: usize,
    t: Option<&Tensor>,
) -> LcMatrix {
    if let Some(t) = t {
        assert_eq!((t.rows(), t.cols()), (rows, cols), "tensor shape mismatch");
    }
    (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| {
                    cs.alloc_witness_opt(t.map(|t| Fr::from_i64(t.get(r, c))))
                        .into()
                })
                .collect()
        })
        .collect()
}

/// A verified linear layer: `Y = rescale(X * W)`.
///
/// The matrix product uses the selected zkVC strategy; every output element
/// is rescaled from `2^{2f}` back to `2^f` with a verified power-of-two
/// division.
///
/// # Panics
/// Panics if dimensions mismatch or an intermediate value exceeds the
/// configured fixed-point range.
pub fn linear<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &LcMatrix,
    w: &LcMatrix,
    strategy: Strategy,
    z: Fr,
    cfg: &FixedPointConfig,
) -> LcMatrix {
    let y = synthesize_matmul(&mut *cs, x, w, strategy, z);
    rescale_all(cs, &y, cfg)
}

/// Rescales every element of a matrix of double-scale values back to single
/// scale.
pub fn rescale_all<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &LcMatrix,
    cfg: &FixedPointConfig,
) -> LcMatrix {
    x.iter()
        .map(|row| {
            row.iter()
                .map(|v| {
                    div_by_const_pow2(&mut *cs, v, cfg.fraction_bits, 2 * cfg.total_bits as usize)
                        .expect("fixed-point value out of range during rescale")
                        .into()
                })
                .collect()
        })
        .collect()
}

/// Element-wise verified GELU.
pub fn gelu_all<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &LcMatrix,
    cfg: &FixedPointConfig,
) -> LcMatrix {
    x.iter()
        .map(|row| {
            row.iter()
                .map(|v| {
                    synthesize_gelu(&mut *cs, v, cfg)
                        .expect("fixed-point value out of range in GELU")
                        .into()
                })
                .collect()
        })
        .collect()
}

/// Row-wise verified SoftMax.
pub fn softmax_rows<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &LcMatrix,
    cfg: &SoftmaxConfig,
) -> LcMatrix {
    x.iter()
        .map(|row| {
            synthesize_softmax(&mut *cs, row, cfg)
                .expect("fixed-point value out of range in SoftMax")
                .into_iter()
                .map(LinearCombination::from)
                .collect()
        })
        .collect()
}

/// Row-wise RMS normalisation (`x_i * rsqrt(mean(x^2))`), the
/// LayerNorm-style stabiliser used between blocks. The reciprocal square
/// root is verified with the gadget from `zkvc-core`.
pub fn rmsnorm_rows<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &LcMatrix,
    cfg: &FixedPointConfig,
) -> LcMatrix {
    let d = x[0].len() as i64;
    x.iter()
        .map(|row| {
            // sum of squares (scale 2^{2f})
            let mut ss_lc = LinearCombination::zero();
            for v in row {
                let sq_val = cs.lc_product(v, v);
                let sq = cs.alloc_witness_opt(sq_val);
                cs.enforce_named(v.clone(), v.clone(), sq.into(), "rmsnorm square");
                ss_lc.push(sq, Fr::one());
            }
            // mean square, still at scale 2^{2f}: divide by d (witnessed with
            // a power-of-two division after multiplying by a constant would
            // lose exactness for non-power-of-two d, so fold 1/d into the
            // rsqrt input instead: rsqrt(ss) * sqrt(d) ~ handled by scaling
            // the output).
            // s = rsqrt(ss / 2^f)  (ss is at 2^{2f}; the gadget expects 2^f)
            let ms = div_by_const_pow2(
                &mut *cs,
                &ss_lc,
                cfg.fraction_bits,
                2 * cfg.total_bits as usize,
            )
            .expect("rmsnorm mean square out of range");
            // epsilon of one quantisation unit keeps the rsqrt input positive
            let ms_eps = LinearCombination::from(ms) + LinearCombination::constant(Fr::one());
            let s = synthesize_rsqrt(&mut *cs, &ms_eps, cfg).expect("rmsnorm rsqrt failed");
            // out_i = rescale(x_i * s * sqrt(d)); sqrt(d) is folded in as an
            // integer constant approximation.
            let sqrt_d = ((d as f64).sqrt().round() as i64).max(1);
            row.iter()
                .map(|v| {
                    let prod_val = cs.lc_value(v).and_then(|a| cs.var_value(s).map(|b| a * b));
                    let prod = cs.alloc_witness_opt(prod_val);
                    cs.enforce_named(v.clone(), s.into(), prod.into(), "rmsnorm scale");
                    let scaled = LinearCombination::from(prod) * Fr::from_i64(sqrt_d);
                    div_by_const_pow2(
                        &mut *cs,
                        &scaled,
                        cfg.fraction_bits,
                        2 * cfg.total_bits as usize,
                    )
                    .expect("rmsnorm output out of range")
                    .into()
                })
                .collect()
        })
        .collect()
}

/// Element-wise addition of two token matrices (residual connections);
/// purely linear, no constraints.
pub fn add_matrices(a: &LcMatrix, b: &LcMatrix) -> LcMatrix {
    a.iter()
        .zip(b.iter())
        .map(|(ra, rb)| {
            ra.iter()
                .zip(rb.iter())
                .map(|(x, y)| x.clone() + y)
                .collect()
        })
        .collect()
}

/// Weights of a single Transformer block.
#[derive(Clone, Debug)]
pub struct BlockWeights {
    /// Query projection (`dim x dim`).
    pub wq: Tensor,
    /// Key projection.
    pub wk: Tensor,
    /// Value projection.
    pub wv: Tensor,
    /// Output projection.
    pub wo: Tensor,
    /// Token-mixing matrix (`seq x seq`), used by the linear mixer only.
    pub wt: Tensor,
    /// First MLP weight (`dim x mlp_dim`).
    pub w1: Tensor,
    /// Second MLP weight (`mlp_dim x dim`).
    pub w2: Tensor,
}

impl BlockWeights {
    /// Synthetic random weights for a block (substitution S4).
    pub fn random<R: rand::Rng + ?Sized>(
        seq: usize,
        dim: usize,
        mlp_dim: usize,
        cfg: &FixedPointConfig,
        rng: &mut R,
    ) -> Self {
        BlockWeights {
            wq: Tensor::random(dim, dim, cfg, rng),
            wk: Tensor::random(dim, dim, cfg, rng),
            wv: Tensor::random(dim, dim, cfg, rng),
            wo: Tensor::random(dim, dim, cfg, rng),
            wt: Tensor::random(seq, seq, cfg, rng),
            w1: Tensor::random(dim, mlp_dim, cfg, rng),
            w2: Tensor::random(mlp_dim, dim, cfg, rng),
        }
    }
}

/// Synthesises one full Transformer block: token mixer + residual + MLP.
///
/// `num_heads` splits the hidden dimension for the attention-style mixers;
/// the constraint count is what Tables III/IV measure, so the head split is
/// honoured even though it does not change the asymptotics.
#[allow(clippy::too_many_arguments)]
pub fn transformer_block<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    tokens: &LcMatrix,
    weights: &BlockWeights,
    mixer: TokenMixer,
    num_heads: usize,
    strategy: Strategy,
    z: Fr,
    cfg: &FixedPointConfig,
    softmax_cfg: &SoftmaxConfig,
) -> LcMatrix {
    transformer_block_opt(
        cs,
        tokens,
        Some(weights),
        BlockDims::of(tokens, weights),
        mixer,
        num_heads,
        strategy,
        z,
        cfg,
        softmax_cfg,
    )
}

/// The `(seq, dim, mlp_dim)` dimensions of a block — all a shape pass needs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockDims {
    /// Sequence length (token count).
    pub seq: usize,
    /// Hidden dimension.
    pub dim: usize,
    /// MLP inner dimension.
    pub mlp_dim: usize,
}

impl BlockDims {
    fn of(tokens: &LcMatrix, weights: &BlockWeights) -> Self {
        BlockDims {
            seq: tokens.len(),
            dim: tokens[0].len(),
            mlp_dim: weights.w1.cols(),
        }
    }
}

/// [`transformer_block`] with the weights optional: on a witness-free shape
/// pass no weight tensors exist (or need to be generated) and only the
/// dimensions drive synthesis. The constraint structure is identical.
///
/// # Panics
/// Panics if `weights` is `None` while the sink wants values.
#[allow(clippy::too_many_arguments)]
pub fn transformer_block_opt<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    tokens: &LcMatrix,
    weights: Option<&BlockWeights>,
    dims: BlockDims,
    mixer: TokenMixer,
    num_heads: usize,
    strategy: Strategy,
    z: Fr,
    cfg: &FixedPointConfig,
    softmax_cfg: &SoftmaxConfig,
) -> LcMatrix {
    assert!(
        weights.is_some() || !cs.wants_values(),
        "value-carrying passes need block weights"
    );
    let (seq, dim, mlp_dim) = (dims.seq, dims.dim, dims.mlp_dim);
    let wo = alloc_tensor_opt(&mut *cs, dim, dim, weights.map(|w| &w.wo));

    let mixed = match mixer {
        TokenMixer::SoftmaxAttention => {
            let wq = alloc_tensor_opt(&mut *cs, dim, dim, weights.map(|w| &w.wq));
            let wk = alloc_tensor_opt(&mut *cs, dim, dim, weights.map(|w| &w.wk));
            let wv = alloc_tensor_opt(&mut *cs, dim, dim, weights.map(|w| &w.wv));
            let q = linear(&mut *cs, tokens, &wq, strategy, z, cfg);
            let k = linear(&mut *cs, tokens, &wk, strategy, z, cfg);
            let v = linear(&mut *cs, tokens, &wv, strategy, z, cfg);
            let mut head_outputs: Vec<LcMatrix> = Vec::with_capacity(num_heads);
            let dim = q[0].len();
            let head_dim = (dim / num_heads).max(1);
            for h in 0..num_heads.min(dim) {
                let lo = h * head_dim;
                let hi = (lo + head_dim).min(dim);
                let qh = slice_cols(&q, lo, hi);
                let kh = slice_cols(&k, lo, hi);
                let vh = slice_cols(&v, lo, hi);
                // scores = Q_h * K_h^T  (seq x seq), rescaled
                let kt = transpose_lcs(&kh);
                let scores = linear(&mut *cs, &qh, &kt, strategy, z, cfg);
                // attention weights via verified SoftMax
                let attn = softmax_rows(&mut *cs, &scores, softmax_cfg);
                // context = attn * V_h
                let ctx = linear(&mut *cs, &attn, &vh, strategy, z, cfg);
                head_outputs.push(ctx);
            }
            let concat = concat_cols(&head_outputs);
            linear(&mut *cs, &concat, &wo, strategy, z, cfg)
        }
        TokenMixer::ScalingAttention => {
            let wq = alloc_tensor_opt(&mut *cs, dim, dim, weights.map(|w| &w.wq));
            let wk = alloc_tensor_opt(&mut *cs, dim, dim, weights.map(|w| &w.wk));
            let wv = alloc_tensor_opt(&mut *cs, dim, dim, weights.map(|w| &w.wv));
            let q = linear(&mut *cs, tokens, &wq, strategy, z, cfg);
            let k = linear(&mut *cs, tokens, &wk, strategy, z, cfg);
            let v = linear(&mut *cs, tokens, &wv, strategy, z, cfg);
            // ctx = K^T * V  (dim x dim), out = Q * ctx — linear complexity
            // in the sequence length, no SoftMax.
            let kt = transpose_lcs(&k);
            let ctx = linear(&mut *cs, &kt, &v, strategy, z, cfg);
            let out = linear(&mut *cs, &q, &ctx, strategy, z, cfg);
            linear(&mut *cs, &out, &wo, strategy, z, cfg)
        }
        TokenMixer::Pooling => {
            // Average pooling over tokens (the 1/seq factor is folded into
            // the following projection weights): every token becomes the
            // column sum, then the output projection is applied.
            let dim = tokens[0].len();
            let mut pooled_row: Vec<LinearCombination<Fr>> = Vec::with_capacity(dim);
            for c in 0..dim {
                let mut acc = LinearCombination::zero();
                for row in tokens.iter().take(seq) {
                    acc = acc + &row[c];
                }
                pooled_row.push(acc);
            }
            let pooled: LcMatrix = vec![pooled_row; seq];
            linear(&mut *cs, &pooled, &wo, strategy, z, cfg)
        }
        TokenMixer::LinearMixing => {
            // tokens' = Wt * tokens (mix over the token axis), then project.
            let wt = alloc_tensor_opt(&mut *cs, seq, seq, weights.map(|w| &w.wt));
            let mixed = linear(&mut *cs, &wt, tokens, strategy, z, cfg);
            linear(&mut *cs, &mixed, &wo, strategy, z, cfg)
        }
    };

    // residual + norm
    let res1 = add_matrices(tokens, &mixed);
    let normed = rmsnorm_rows(&mut *cs, &res1, cfg);

    // MLP: linear -> GELU -> linear, with residual
    let w1 = alloc_tensor_opt(&mut *cs, dim, mlp_dim, weights.map(|w| &w.w1));
    let w2 = alloc_tensor_opt(&mut *cs, mlp_dim, dim, weights.map(|w| &w.w2));
    let h = linear(&mut *cs, &normed, &w1, strategy, z, cfg);
    let h = gelu_all(&mut *cs, &h, cfg);
    let h = linear(&mut *cs, &h, &w2, strategy, z, cfg);
    add_matrices(&normed, &h)
}

fn slice_cols(m: &LcMatrix, lo: usize, hi: usize) -> LcMatrix {
    m.iter().map(|row| row[lo..hi].to_vec()).collect()
}

fn transpose_lcs(m: &LcMatrix) -> LcMatrix {
    let rows = m.len();
    let cols = m[0].len();
    (0..cols)
        .map(|c| (0..rows).map(|r| m[r][c].clone()).collect())
        .collect()
}

fn concat_cols(parts: &[LcMatrix]) -> LcMatrix {
    let rows = parts[0].len();
    (0..rows)
        .map(|r| parts.iter().flat_map(|p| p[r].iter().cloned()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_r1cs::ConstraintSystem;

    fn setup() -> (
        ConstraintSystem<Fr>,
        FixedPointConfig,
        SoftmaxConfig,
        StdRng,
    ) {
        (
            ConstraintSystem::<Fr>::new(),
            FixedPointConfig::default(),
            SoftmaxConfig::default(),
            StdRng::seed_from_u64(17),
        )
    }

    #[test]
    fn linear_layer_matches_tensor_reference() {
        let (mut cs, cfg, _, mut rng) = setup();
        let x = Tensor::random(3, 4, &cfg, &mut rng);
        let w = Tensor::random(4, 2, &cfg, &mut rng);
        let x_lcs = alloc_tensor(&mut cs, &x);
        let w_lcs = alloc_tensor(&mut cs, &w);
        let y = linear(
            &mut cs,
            &x_lcs,
            &w_lcs,
            Strategy::CrpcPsq,
            Fr::from_u64(99991),
            &cfg,
        );
        assert!(cs.is_satisfied());
        let reference = x.matmul(&w, &cfg);
        for (i, row) in y.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(cs.eval_lc(cell), Fr::from_i64(reference.get(i, j)));
            }
        }
    }

    #[test]
    fn all_mixers_produce_satisfiable_blocks() {
        let cfg = FixedPointConfig::default();
        let softmax_cfg = SoftmaxConfig::default();
        let mut rng = StdRng::seed_from_u64(18);
        let seq = 4;
        let dim = 4;
        for mixer in [
            TokenMixer::SoftmaxAttention,
            TokenMixer::ScalingAttention,
            TokenMixer::Pooling,
            TokenMixer::LinearMixing,
        ] {
            let mut cs = ConstraintSystem::<Fr>::new();
            let tokens_t = Tensor::random(seq, dim, &cfg, &mut rng);
            let tokens = alloc_tensor(&mut cs, &tokens_t);
            let weights = BlockWeights::random(seq, dim, dim * 2, &cfg, &mut rng);
            let out = transformer_block(
                &mut cs,
                &tokens,
                &weights,
                mixer,
                2,
                Strategy::CrpcPsq,
                Fr::from_u64(65537),
                &cfg,
                &softmax_cfg,
            );
            assert_eq!(out.len(), seq, "{mixer:?}");
            assert_eq!(out[0].len(), dim, "{mixer:?}");
            assert!(cs.is_satisfied(), "{mixer:?}");
        }
    }

    #[test]
    fn block_shape_pass_matches_single_pass() {
        // The witness-free pass (no weight tensors at all) must produce the
        // same structure as the single pass, for every mixer.
        use zkvc_r1cs::{shape_digest, ShapeBuilder};
        let cfg = FixedPointConfig::default();
        let softmax_cfg = SoftmaxConfig::default();
        let (seq, dim, mlp) = (3usize, 4usize, 8usize);
        for mixer in [
            TokenMixer::SoftmaxAttention,
            TokenMixer::ScalingAttention,
            TokenMixer::Pooling,
            TokenMixer::LinearMixing,
        ] {
            let mut rng = StdRng::seed_from_u64(21);
            let mut cs = ConstraintSystem::<Fr>::new();
            let tokens_t = Tensor::random(seq, dim, &cfg, &mut rng);
            let tokens = alloc_tensor(&mut cs, &tokens_t);
            let weights = BlockWeights::random(seq, dim, mlp, &cfg, &mut rng);
            transformer_block(
                &mut cs,
                &tokens,
                &weights,
                mixer,
                2,
                Strategy::CrpcPsq,
                Fr::from_u64(65537),
                &cfg,
                &softmax_cfg,
            );

            let mut sb = ShapeBuilder::<Fr>::new();
            let tokens_shape = alloc_tensor_opt(&mut sb, seq, dim, None);
            transformer_block_opt(
                &mut sb,
                &tokens_shape,
                None,
                BlockDims {
                    seq,
                    dim,
                    mlp_dim: mlp,
                },
                mixer,
                2,
                Strategy::CrpcPsq,
                Fr::from_u64(65537),
                &cfg,
                &softmax_cfg,
            );
            assert_eq!(sb.finish().digest, shape_digest(&cs), "{mixer:?}");
        }
    }

    #[test]
    fn softmax_attention_costs_more_than_pooling() {
        let cfg = FixedPointConfig::default();
        let softmax_cfg = SoftmaxConfig::default();
        let mut rng = StdRng::seed_from_u64(19);
        let count = |mixer: TokenMixer, rng: &mut StdRng| {
            let mut cs = ConstraintSystem::<Fr>::new();
            let tokens_t = Tensor::random(6, 8, &cfg, rng);
            let tokens = alloc_tensor(&mut cs, &tokens_t);
            let weights = BlockWeights::random(6, 8, 16, &cfg, rng);
            transformer_block(
                &mut cs,
                &tokens,
                &weights,
                mixer,
                2,
                Strategy::CrpcPsq,
                Fr::from_u64(65537),
                &cfg,
                &softmax_cfg,
            );
            cs.num_constraints()
        };
        let softmax = count(TokenMixer::SoftmaxAttention, &mut rng);
        let scaling = count(TokenMixer::ScalingAttention, &mut rng);
        let pooling = count(TokenMixer::Pooling, &mut rng);
        assert!(softmax > scaling, "softmax {softmax} vs scaling {scaling}");
        assert!(scaling > pooling, "scaling {scaling} vs pooling {pooling}");
    }

    #[test]
    fn rmsnorm_is_satisfiable_and_bounded() {
        let (mut cs, cfg, _, mut rng) = setup();
        let x = Tensor::random(2, 8, &cfg, &mut rng);
        let x_lcs = alloc_tensor(&mut cs, &x);
        let out = rmsnorm_rows(&mut cs, &x_lcs, &cfg);
        assert!(cs.is_satisfied());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 8);
    }
}
