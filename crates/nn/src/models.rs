//! Model configurations matching the paper's experimental setup (§IV).

use crate::mixer::MixerSchedule;

/// Shape of one Transformer layer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LayerSpec {
    /// Sequence length (number of tokens) entering the layer.
    pub seq_len: usize,
    /// Hidden (embedding) dimension.
    pub dim: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// MLP expansion dimension.
    pub mlp_dim: usize,
}

/// A full model: patch/token embedding, a stack of Transformer layers and a
/// classifier head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Name used in tables ("ViT-CIFAR10", "BERT-GLUE", ...).
    pub name: String,
    /// Input feature dimension per token before the embedding projection
    /// (patch pixels for ViT, vocabulary embedding width for BERT).
    pub input_dim: usize,
    /// The per-layer shapes, in order.
    pub layers: Vec<LayerSpec>,
    /// Number of output classes.
    pub num_classes: usize,
}

impl ModelConfig {
    /// Number of Transformer layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// A copy with every sequence length and dimension divided by `divisor`
    /// (minimum 1/2/4 respectively), used by the harnesses to produce
    /// tractable "reduced-scale" runs on the same architecture shape.
    pub fn scaled_down(&self, divisor: usize) -> ModelConfig {
        let d = divisor.max(1);
        ModelConfig {
            name: format!("{} (1/{d} scale)", self.name),
            input_dim: (self.input_dim / d).max(4),
            layers: self
                .layers
                .iter()
                .map(|l| LayerSpec {
                    seq_len: (l.seq_len / d).max(2),
                    dim: (l.dim / d).max(4),
                    num_heads: l.num_heads.min((l.dim / d).max(4)),
                    mlp_dim: (l.mlp_dim / d).max(8),
                })
                .collect(),
            num_classes: self.num_classes.min(10),
        }
    }

    /// Total number of multiply-accumulate operations in all matmuls (a
    /// hardware-independent size proxy used in reports).
    pub fn total_macs(&self) -> u128 {
        let mut total: u128 = 0;
        for l in &self.layers {
            let (s, d, m) = (l.seq_len as u128, l.dim as u128, l.mlp_dim as u128);
            // qkv + output projections + attention matmuls + MLP
            total += 4 * s * d * d + 2 * s * s * d + 2 * s * d * m;
        }
        total
    }
}

/// Vision Transformer configurations from §IV.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct VitConfig {
    /// Number of Transformer layers.
    pub num_layers: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Hidden dimension (0 selects the hierarchical ImageNet dims).
    pub hidden_dim: usize,
    /// Number of tokens after patchification.
    pub num_tokens: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Patch size (pixels).
    pub patch_size: usize,
    /// Hierarchical stage dims (ImageNet model); empty for flat ViTs.
    pub stage_dims: [usize; 4],
    /// Layers per stage for the hierarchical model.
    pub stage_layers: [usize; 4],
}

impl VitConfig {
    /// CIFAR-10 ViT: 7 layers, 4 heads, hidden 256, patch 4 on 32x32 images
    /// (64 tokens).
    pub fn cifar10() -> Self {
        VitConfig {
            num_layers: 7,
            num_heads: 4,
            hidden_dim: 256,
            num_tokens: (32 / 4) * (32 / 4),
            num_classes: 10,
            patch_size: 4,
            stage_dims: [0; 4],
            stage_layers: [0; 4],
        }
    }

    /// Tiny-ImageNet ViT: 9 layers, 12 heads, hidden 192, patch 4 on 64x64
    /// images (256 tokens).
    pub fn tiny_imagenet() -> Self {
        VitConfig {
            num_layers: 9,
            num_heads: 12,
            hidden_dim: 192,
            num_tokens: (64 / 4) * (64 / 4),
            num_classes: 200,
            patch_size: 4,
            stage_dims: [0; 4],
            stage_layers: [0; 4],
        }
    }

    /// ImageNet hierarchical model: 12 layers over 4 stages with embedding
    /// dimensions 64/128/320/512 on 224x224 images, patch 4 (3136 tokens in
    /// the first stage, downsampled 4x between stages).
    pub fn imagenet_hierarchical() -> Self {
        VitConfig {
            num_layers: 12,
            num_heads: 4,
            hidden_dim: 0,
            num_tokens: (224 / 4) * (224 / 4),
            num_classes: 1000,
            patch_size: 4,
            stage_dims: [64, 128, 320, 512],
            stage_layers: [2, 2, 6, 2],
        }
    }

    /// A small custom flat ViT (used by examples and tests).
    pub fn custom(
        num_layers: usize,
        num_heads: usize,
        hidden_dim: usize,
        num_tokens: usize,
        num_classes: usize,
    ) -> Self {
        VitConfig {
            num_layers,
            num_heads,
            hidden_dim,
            num_tokens,
            num_classes,
            patch_size: 4,
            stage_dims: [0; 4],
            stage_layers: [0; 4],
        }
    }

    /// Expands the configuration into a generic [`ModelConfig`].
    pub fn to_model(&self) -> ModelConfig {
        let patch_dim = self.patch_size * self.patch_size * 3;
        let layers = if self.stage_dims[0] != 0 {
            // hierarchical: tokens shrink 4x per stage, dims follow stage_dims
            let mut layers = Vec::new();
            let mut tokens = self.num_tokens;
            for (stage, (&dim, &count)) in self
                .stage_dims
                .iter()
                .zip(self.stage_layers.iter())
                .enumerate()
            {
                for _ in 0..count {
                    layers.push(LayerSpec {
                        seq_len: tokens,
                        dim,
                        num_heads: self.num_heads,
                        mlp_dim: dim * 4,
                    });
                }
                if stage < 3 {
                    tokens = (tokens / 4).max(1);
                }
            }
            layers
        } else {
            vec![
                LayerSpec {
                    seq_len: self.num_tokens,
                    dim: self.hidden_dim,
                    num_heads: self.num_heads,
                    mlp_dim: self.hidden_dim * 4,
                };
                self.num_layers
            ]
        };
        ModelConfig {
            name: format!("ViT-{}L", self.num_layers),
            input_dim: patch_dim,
            layers,
            num_classes: self.num_classes,
        }
    }

    /// The default zkVC hybrid mixer schedule for this model.
    pub fn default_schedule(&self) -> MixerSchedule {
        MixerSchedule::zkvc_hybrid(self.num_layers)
    }
}

/// BERT configuration from §IV: 4 layers, 4 heads, embedding 256, evaluated
/// on GLUE tasks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BertConfig {
    /// Number of Transformer layers.
    pub num_layers: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Embedding dimension.
    pub hidden_dim: usize,
    /// Input sequence length.
    pub seq_len: usize,
    /// Number of output classes of the GLUE task head.
    pub num_classes: usize,
}

impl BertConfig {
    /// The paper's BERT: 4 layers, 4 heads, 256-dim embeddings.
    pub fn paper() -> Self {
        BertConfig {
            num_layers: 4,
            num_heads: 4,
            hidden_dim: 256,
            seq_len: 128,
            num_classes: 3,
        }
    }

    /// Expands into a generic [`ModelConfig`].
    pub fn to_model(&self) -> ModelConfig {
        ModelConfig {
            name: format!("BERT-{}L", self.num_layers),
            input_dim: self.hidden_dim,
            layers: vec![
                LayerSpec {
                    seq_len: self.seq_len,
                    dim: self.hidden_dim,
                    num_heads: self.num_heads,
                    mlp_dim: self.hidden_dim * 4,
                };
                self.num_layers
            ],
            num_classes: self.num_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let cifar = VitConfig::cifar10();
        assert_eq!(cifar.num_layers, 7);
        assert_eq!(cifar.num_tokens, 64);
        assert_eq!(cifar.to_model().layers.len(), 7);
        assert_eq!(cifar.to_model().layers[0].dim, 256);

        let tiny = VitConfig::tiny_imagenet();
        assert_eq!(tiny.num_tokens, 256);
        assert_eq!(tiny.to_model().layers[0].dim, 192);

        let imagenet = VitConfig::imagenet_hierarchical();
        let m = imagenet.to_model();
        assert_eq!(m.layers.len(), 12);
        assert_eq!(m.layers[0].seq_len, 3136);
        assert_eq!(m.layers[0].dim, 64);
        assert_eq!(m.layers[11].dim, 512);
        assert_eq!(m.layers[11].seq_len, 49);

        let bert = BertConfig::paper();
        assert_eq!(bert.to_model().layers.len(), 4);
        assert_eq!(bert.to_model().layers[0].seq_len, 128);
    }

    #[test]
    fn scaled_down_preserves_layer_count() {
        let m = VitConfig::imagenet_hierarchical().to_model();
        let s = m.scaled_down(8);
        assert_eq!(s.layers.len(), m.layers.len());
        assert!(s.layers[0].seq_len < m.layers[0].seq_len);
        assert!(s.total_macs() < m.total_macs());
    }

    #[test]
    fn macs_grow_with_model_size() {
        let small = VitConfig::cifar10().to_model();
        let big = VitConfig::imagenet_hierarchical().to_model();
        assert!(big.total_macs() > small.total_macs());
    }
}
