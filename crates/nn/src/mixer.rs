//! Token mixers — the architectural knob the paper's end-to-end experiments
//! turn (Tables III and IV).

/// How tokens exchange information inside a Transformer block.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TokenMixer {
    /// Standard SoftMax self-attention, verified through the approximation
    /// of §III-C ("SoftApprox." rows).
    SoftmaxAttention,
    /// Scaling (efficient/linear) attention: `Q (K^T V) / n` — no SoftMax,
    /// linear in sequence length ("SoftFree-S" rows).
    ScalingAttention,
    /// Average pooling over tokens ("SoftFree-P" rows).
    Pooling,
    /// A learned linear transformation over the token axis (FNet-style,
    /// "SoftFree-L" rows of Table IV).
    LinearMixing,
}

impl TokenMixer {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            TokenMixer::SoftmaxAttention => "SoftApprox.",
            TokenMixer::ScalingAttention => "SoftFree-S",
            TokenMixer::Pooling => "SoftFree-P",
            TokenMixer::LinearMixing => "SoftFree-L",
        }
    }
}

/// A per-layer assignment of token mixers — what the paper calls the model
/// produced by its "planner". zkVC's hybrid schedules mix SoftMax attention
/// (in the later, shorter-sequence layers) with SoftMax-free mixers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixerSchedule {
    /// One mixer per Transformer layer.
    pub layers: Vec<TokenMixer>,
    /// Name used by the harnesses ("SoftApprox.", "zkVC", ...).
    pub name: &'static str,
}

impl MixerSchedule {
    /// All layers use verified SoftMax attention.
    pub fn soft_approx(num_layers: usize) -> Self {
        MixerSchedule {
            layers: vec![TokenMixer::SoftmaxAttention; num_layers],
            name: "SoftApprox.",
        }
    }

    /// All layers use scaling attention.
    pub fn soft_free_s(num_layers: usize) -> Self {
        MixerSchedule {
            layers: vec![TokenMixer::ScalingAttention; num_layers],
            name: "SoftFree-S",
        }
    }

    /// All layers use average pooling.
    pub fn soft_free_p(num_layers: usize) -> Self {
        MixerSchedule {
            layers: vec![TokenMixer::Pooling; num_layers],
            name: "SoftFree-P",
        }
    }

    /// All layers use linear token mixing (the NLP "SoftFree-L" variant).
    pub fn soft_free_l(num_layers: usize) -> Self {
        MixerSchedule {
            layers: vec![TokenMixer::LinearMixing; num_layers],
            name: "SoftFree-L",
        }
    }

    /// The zkVC hybrid: SoftMax-free mixers in the early (long-sequence)
    /// layers, SoftMax attention re-introduced in the last third of the
    /// network where sequences are short — the planner outcome described in
    /// §V-B.
    pub fn zkvc_hybrid(num_layers: usize) -> Self {
        let cutover = num_layers - num_layers / 3;
        let layers = (0..num_layers)
            .map(|i| {
                if i < cutover {
                    TokenMixer::ScalingAttention
                } else {
                    TokenMixer::SoftmaxAttention
                }
            })
            .collect();
        MixerSchedule {
            layers,
            name: "zkVC",
        }
    }

    /// The zkVC hybrid for NLP models: linear mixing early, SoftMax late.
    pub fn zkvc_hybrid_nlp(num_layers: usize) -> Self {
        let cutover = num_layers - num_layers / 3;
        let layers = (0..num_layers)
            .map(|i| {
                if i < cutover {
                    TokenMixer::ScalingAttention
                } else {
                    TokenMixer::SoftmaxAttention
                }
            })
            .collect();
        MixerSchedule {
            layers,
            name: "zkVC",
        }
    }

    /// Number of layers covered by the schedule.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_cover_all_layers() {
        for n in [1usize, 4, 7, 12] {
            assert_eq!(MixerSchedule::soft_approx(n).num_layers(), n);
            assert_eq!(MixerSchedule::zkvc_hybrid(n).num_layers(), n);
        }
    }

    #[test]
    fn hybrid_uses_softmax_late_only() {
        let s = MixerSchedule::zkvc_hybrid(9);
        assert_eq!(s.layers[0], TokenMixer::ScalingAttention);
        assert_eq!(s.layers[8], TokenMixer::SoftmaxAttention);
        let softmax_count = s
            .layers
            .iter()
            .filter(|m| **m == TokenMixer::SoftmaxAttention)
            .count();
        assert_eq!(softmax_count, 3);
    }

    #[test]
    fn names_match_paper_rows() {
        assert_eq!(TokenMixer::SoftmaxAttention.name(), "SoftApprox.");
        assert_eq!(TokenMixer::Pooling.name(), "SoftFree-P");
        assert_eq!(MixerSchedule::zkvc_hybrid(4).name, "zkVC");
    }
}
