//! # zkvc-nn
//!
//! The quantised Transformer substrate used for the paper's end-to-end
//! experiments (Tables III and IV): fixed-point tensors, the four token
//! mixers compared in the evaluation (SoftMax attention, scaling attention,
//! average pooling, linear mixing), ViT and BERT model configurations, and
//! the compiler that turns a model's forward pass into one R1CS per layer.
//!
//! Model weights are synthetically initialised (substitution S4 in
//! DESIGN.md): the proving-time columns of Tables III/IV depend only on the
//! circuit structure — layer shapes, sequence lengths and mixer choices —
//! not on trained weight values, so the cost profile is reproduced without
//! the GPUs/datasets needed to re-train the models. Accuracy columns are
//! echoed from the paper and marked as such by the harness.
//!
//! ## Example
//!
//! ```rust
//! use zkvc_nn::models::VitConfig;
//! use zkvc_nn::mixer::MixerSchedule;
//! use zkvc_nn::circuit::ModelCircuit;
//! use zkvc_core::matmul::Strategy;
//!
//! // A tiny ViT: 2 layers, 16 tokens, hidden dim 32.
//! let cfg = VitConfig::custom(2, 2, 32, 16, 10);
//! let schedule = MixerSchedule::zkvc_hybrid(cfg.num_layers);
//! let circuit = ModelCircuit::build(&cfg.to_model(), &schedule, Strategy::CrpcPsq, 42);
//! assert!(circuit.cs.is_satisfied());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod circuit;
pub mod layers;
pub mod mixer;
pub mod models;
pub mod tensor;

pub use circuit::{LayerStats, ModelCircuit, ModelStatement};
pub use mixer::{MixerSchedule, TokenMixer};
pub use models::{BertConfig, ModelConfig, VitConfig};
pub use tensor::Tensor;
