//! A minimal 2-D fixed-point tensor used for reference forward passes and
//! witness generation.

use rand::Rng;
use zkvc_core::fixed::FixedPointConfig;

/// A row-major 2-D tensor of quantised (fixed-point) values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a tensor from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Tensor { rows, cols, data }
    }

    /// Creates a tensor with small random quantised values (used for the
    /// synthetic weights of substitution S4).
    pub fn random<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        cfg: &FixedPointConfig,
        rng: &mut R,
    ) -> Self {
        let scale = cfg.scale();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale / 2..=scale / 2))
            .collect();
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> i64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: i64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow the raw data (row-major).
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    /// The tensor as nested vectors (row-major), the format the circuit
    /// builders consume.
    pub fn to_rows(&self) -> Vec<Vec<i64>> {
        (0..self.rows)
            .map(|r| self.data[r * self.cols..(r + 1) * self.cols].to_vec())
            .collect()
    }

    /// Matrix multiplication with rescaling back to single scale.
    ///
    /// # Panics
    /// Panics if the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor, cfg: &FixedPointConfig) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc: i64 = 0;
                for k in 0..self.cols {
                    acc += self.get(i, k) * rhs.get(k, j);
                }
                out.set(i, j, cfg.rescale(acc));
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Mean over each row (used by the pooling mixer), truncating division.
    pub fn row_mean(&self) -> Vec<i64> {
        (0..self.rows)
            .map(|r| {
                let s: i64 = self.data[r * self.cols..(r + 1) * self.cols].iter().sum();
                s.div_euclid(self.cols as i64)
            })
            .collect()
    }

    /// Mean over each column (token pooling), truncating division.
    pub fn col_mean(&self) -> Vec<i64> {
        (0..self.cols)
            .map(|c| {
                let s: i64 = (0..self.rows).map(|r| self.get(r, c)).sum();
                s.div_euclid(self.rows as i64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_manual() {
        let cfg = FixedPointConfig::new(4, 32); // scale 16
                                                // A = [[1.0, 2.0]], B = [[0.5], [0.25]] -> 1.0*0.5 + 2.0*0.25 = 1.0
        let a = Tensor::from_data(1, 2, vec![16, 32]);
        let b = Tensor::from_data(2, 1, vec![8, 4]);
        let c = a.matmul(&b, &cfg);
        assert_eq!(c.get(0, 0), 16);
    }

    #[test]
    fn transpose_and_add() {
        let a = Tensor::from_data(2, 3, vec![1, 2, 3, 4, 5, 6]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6);
        let s = a.add(&a);
        assert_eq!(s.get(1, 2), 12);
    }

    #[test]
    fn means() {
        let a = Tensor::from_data(2, 2, vec![2, 4, 6, 8]);
        assert_eq!(a.row_mean(), vec![3, 7]);
        assert_eq!(a.col_mean(), vec![4, 6]);
    }

    #[test]
    fn random_is_bounded() {
        let cfg = FixedPointConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::random(4, 4, &cfg, &mut rng);
        assert!(t.data().iter().all(|v| v.abs() <= cfg.scale() / 2));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn bad_matmul_panics() {
        let cfg = FixedPointConfig::default();
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        a.matmul(&b, &cfg);
    }
}
