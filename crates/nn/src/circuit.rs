//! The model-to-circuit compiler: turns a [`ModelConfig`] plus a
//! [`MixerSchedule`] into one R1CS covering the whole forward pass
//! (embedding, every Transformer block, pooling and the classifier head),
//! together with per-layer constraint statistics.
//!
//! Two entry points share one emission driver:
//!
//! * [`ModelStatement`] — the lazy, two-pass-native form: holds only the
//!   configuration, weight seed and CRPC challenge, and synthesises on
//!   demand into any [`ConstraintSink`]. A shape pass over it generates
//!   **no weight tensors at all**; a witness pass computes exactly the flat
//!   assignment. This is what the `zkvc-runtime` pool proves with.
//! * [`ModelCircuit`] — the eager legacy form: one single pass up front,
//!   keeping the full [`ConstraintSystem`], per-layer stats and the logits.
//!
//! The class logits of the reference run are bound as **public instance
//! variables**, so a proof over either form commits to the concrete
//! inference result: verifying the same proof against different claimed
//! logits fails.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::Circuit;
use zkvc_core::fixed::FixedPointConfig;
use zkvc_core::matmul::Strategy;
use zkvc_core::nonlinear::SoftmaxConfig;
use zkvc_ff::{Fr, PrimeField};
use zkvc_r1cs::{ConstraintSink, ConstraintSystem};

use crate::layers::{
    alloc_tensor_opt, linear, transformer_block_opt, BlockDims, BlockWeights, LcMatrix,
};
use crate::mixer::MixerSchedule;
use crate::models::ModelConfig;
use crate::tensor::Tensor;

/// Per-layer constraint accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerStats {
    /// Layer label ("embed", "block 3 (SoftFree-S)", "classifier").
    pub label: String,
    /// Constraints added by this layer.
    pub constraints: usize,
    /// Variables added by this layer.
    pub variables: usize,
}

/// A verifiable-inference *statement*: model + schedule + strategy + weight
/// seed + CRPC challenge, synthesised on demand. Implements [`Circuit`], so
/// the runtime can compile its shape witness-free and then run only the
/// witness pass per proof.
#[derive(Clone, Debug)]
pub struct ModelStatement {
    model: ModelConfig,
    schedule: MixerSchedule,
    strategy: Strategy,
    weight_seed: u64,
    z: Fr,
    name: String,
}

impl ModelStatement {
    /// Creates the statement. Because `z` is baked into the constraint
    /// coefficients, every statement built with the same
    /// `(model, schedule, strategy, z)` shares one shape — which is what
    /// lets a batch of per-`weight_seed` model jobs share a single setup
    /// in the runtime's key cache.
    ///
    /// # Panics
    /// Panics if the schedule does not cover every model layer.
    pub fn new(
        model: ModelConfig,
        schedule: MixerSchedule,
        strategy: Strategy,
        weight_seed: u64,
        z: Fr,
    ) -> Self {
        assert_eq!(
            schedule.num_layers(),
            model.num_layers(),
            "mixer schedule must cover every layer"
        );
        let name = format!("{} / {}", model.name, schedule.name);
        ModelStatement {
            model,
            schedule,
            strategy,
            weight_seed,
            z,
            name,
        }
    }

    /// Emits the whole forward pass into `sink`. Weight/input tensors are
    /// generated (from the seeded rng, in a fixed order) only when the sink
    /// carries values; the structure is identical either way. Returns the
    /// logits when values were carried, and appends per-layer stats when a
    /// collector is supplied.
    fn emit(
        &self,
        sink: &mut dyn ConstraintSink<Fr>,
        mut stats: Option<&mut Vec<LayerStats>>,
    ) -> Option<Vec<Fr>> {
        let model = &self.model;
        let strategy = self.strategy;
        let z = self.z;
        let wants = sink.wants_values();
        let cfg = FixedPointConfig::default();
        let softmax_cfg = SoftmaxConfig::default();
        let mut rng = StdRng::seed_from_u64(self.weight_seed);
        let record = |stats: &mut Option<&mut Vec<LayerStats>>,
                      label: String,
                      before: (usize, usize),
                      sink: &dyn ConstraintSink<Fr>| {
            if let Some(stats) = stats.as_deref_mut() {
                stats.push(LayerStats {
                    label,
                    constraints: sink.num_constraints() - before.0,
                    variables: sink.num_variables() - before.1,
                });
            }
        };

        let first = &model.layers[0];
        // Synthetic input tokens and embedding.
        let input = wants.then(|| Tensor::random(first.seq_len, model.input_dim, &cfg, &mut rng));
        let w_embed = wants.then(|| Tensor::random(model.input_dim, first.dim, &cfg, &mut rng));
        let before = (sink.num_constraints(), sink.num_variables());
        let input_lcs = alloc_tensor_opt(sink, first.seq_len, model.input_dim, input.as_ref());
        let w_embed_lcs = alloc_tensor_opt(sink, model.input_dim, first.dim, w_embed.as_ref());
        let mut tokens: LcMatrix = linear(sink, &input_lcs, &w_embed_lcs, strategy, z, &cfg);
        record(&mut stats, "embed".to_string(), before, sink);

        // Transformer blocks.
        for (idx, (spec, mixer)) in model
            .layers
            .iter()
            .zip(self.schedule.layers.iter())
            .enumerate()
        {
            // When the spec's sequence length or dim changes between stages
            // (hierarchical ViT), downsample tokens by truncation/projection.
            tokens = resize_tokens(
                sink,
                &tokens,
                spec.seq_len,
                spec.dim,
                strategy,
                z,
                &cfg,
                &mut rng,
            );
            let weights = wants.then(|| {
                BlockWeights::random(spec.seq_len, spec.dim, spec.mlp_dim, &cfg, &mut rng)
            });
            let before = (sink.num_constraints(), sink.num_variables());
            tokens = transformer_block_opt(
                sink,
                &tokens,
                weights.as_ref(),
                BlockDims {
                    seq: spec.seq_len,
                    dim: spec.dim,
                    mlp_dim: spec.mlp_dim,
                },
                *mixer,
                spec.num_heads,
                strategy,
                z,
                &cfg,
                &softmax_cfg,
            );
            record(
                &mut stats,
                format!("block {idx} ({})", mixer.name()),
                before,
                sink,
            );
        }

        // Classifier: mean-pool tokens (linear), then a projection to
        // `num_classes` logits.
        let last = model.layers.last().expect("at least one layer");
        let before = (sink.num_constraints(), sink.num_variables());
        let mut pooled: LcMatrix = vec![Vec::with_capacity(last.dim)];
        for c in 0..tokens[0].len() {
            let mut acc = zkvc_r1cs::LinearCombination::zero();
            for row in &tokens {
                acc = acc + &row[c];
            }
            pooled[0].push(acc);
        }
        let head_dim = tokens[0].len();
        let w_head = wants.then(|| Tensor::random(head_dim, model.num_classes, &cfg, &mut rng));
        let w_head_lcs = alloc_tensor_opt(sink, head_dim, model.num_classes, w_head.as_ref());
        let logits_lcs = linear(sink, &pooled, &w_head_lcs, strategy, z, &cfg);
        let logits: Option<Vec<Fr>> = wants.then(|| {
            logits_lcs[0]
                .iter()
                .map(|lc| sink.lc_value(lc).expect("sink carries values"))
                .collect()
        });
        // Bind the inference result: each logit becomes a public instance
        // variable constrained to equal the classifier output, so the proof
        // commits to the concrete logits, not just the circuit shape.
        let public_logits: Vec<zkvc_r1cs::LinearCombination<Fr>> = (0..model.num_classes)
            .map(|i| {
                sink.alloc_instance_opt(logits.as_ref().map(|l| l[i]))
                    .into()
            })
            .collect();
        zkvc_core::api::bind_public_outputs(sink, &logits_lcs[0], &public_logits);
        record(&mut stats, "classifier".to_string(), before, sink);

        logits
    }
}

impl Circuit for ModelStatement {
    fn synthesize(&self, sink: &mut dyn ConstraintSink<Fr>) {
        self.emit(sink, None);
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn declared_publics(&self) -> usize {
        // One public logit per class, always bound.
        self.model.num_classes
    }
}

/// A fully synthesised verifiable-inference circuit (the eager form; see
/// [`ModelStatement`] for the lazy two-pass form).
#[derive(Clone, Debug)]
pub struct ModelCircuit {
    /// The constraint system with the complete witness.
    pub cs: ConstraintSystem<Fr>,
    /// Per-layer statistics.
    pub layers: Vec<LayerStats>,
    /// The model's class-logit outputs (quantised) from the reference run.
    pub logits: Vec<Fr>,
    /// Name of the model + schedule combination.
    pub name: String,
    /// The underlying statement, kept so the circuit can re-synthesise
    /// through the two-pass pipeline.
    statement: ModelStatement,
}

impl ModelCircuit {
    /// Builds the circuit for a model with synthetic weights and a synthetic
    /// input, using the given matmul strategy. `seed` makes the synthetic
    /// initialisation reproducible and also derives the CRPC challenge.
    pub fn build(
        model: &ModelConfig,
        schedule: &MixerSchedule,
        strategy: Strategy,
        seed: u64,
    ) -> ModelCircuit {
        // CRPC challenge: derived from the seed here; production callers
        // would derive it from a transcript over committed inputs/weights
        // (see zkvc-core::matmul::ZSource) or sample it at setup time and
        // pass it through [`ModelCircuit::build_seeded`].
        let z = Fr::from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        Self::build_seeded(model, schedule, strategy, seed, z)
    }

    /// Like [`ModelCircuit::build`], but with the CRPC challenge supplied
    /// by the caller, decoupled from the weight/input seed. Because `z` is
    /// baked into the constraint coefficients, every circuit built with the
    /// same `(model, schedule, strategy, z)` shares one shape — which is
    /// what lets a batch of per-`weight_seed` model jobs share a single
    /// setup in the runtime's key cache.
    pub fn build_seeded(
        model: &ModelConfig,
        schedule: &MixerSchedule,
        strategy: Strategy,
        weight_seed: u64,
        z: Fr,
    ) -> ModelCircuit {
        let statement =
            ModelStatement::new(model.clone(), schedule.clone(), strategy, weight_seed, z);
        let mut cs = ConstraintSystem::<Fr>::new();
        let mut layers = Vec::new();
        let logits = statement
            .emit(&mut cs, Some(&mut layers))
            .expect("single pass carries values");
        ModelCircuit {
            cs,
            layers,
            logits,
            name: statement.name.clone(),
            statement,
        }
    }

    /// The lazy statement form of this circuit (same configuration, same
    /// weight seed and challenge).
    pub fn statement(&self) -> &ModelStatement {
        &self.statement
    }

    /// Total constraints in the circuit.
    pub fn num_constraints(&self) -> usize {
        self.cs.num_constraints()
    }

    /// Total variables in the circuit.
    pub fn num_variables(&self) -> usize {
        self.cs.num_variables()
    }
}

impl Circuit for ModelCircuit {
    fn synthesize(&self, sink: &mut dyn ConstraintSink<Fr>) {
        self.statement.emit(sink, None);
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn public_outputs(&self) -> Vec<Fr> {
        self.logits.clone()
    }

    fn shape_digest(&self) -> [u8; 32] {
        zkvc_core::api::circuit_shape_digest(&self.cs)
    }

    fn declared_publics(&self) -> usize {
        self.statement.declared_publics()
    }
}

/// Adjusts the token matrix to a target `(seq, dim)` shape between stages:
/// sequences are shortened by merging adjacent tokens (sum), dimensions are
/// changed with a verified linear projection.
#[allow(clippy::too_many_arguments)]
fn resize_tokens(
    sink: &mut dyn ConstraintSink<Fr>,
    tokens: &LcMatrix,
    target_seq: usize,
    target_dim: usize,
    strategy: Strategy,
    z: Fr,
    cfg: &FixedPointConfig,
    rng: &mut StdRng,
) -> LcMatrix {
    let cur_seq = tokens.len();
    let cur_dim = tokens[0].len();
    let mut out: LcMatrix = tokens.clone();
    if target_seq < cur_seq {
        let merge = cur_seq.div_ceil(target_seq);
        out = (0..target_seq)
            .map(|t| {
                let mut merged = vec![zkvc_r1cs::LinearCombination::zero(); cur_dim];
                for s in 0..merge {
                    let idx = t * merge + s;
                    if idx < cur_seq {
                        for (c, m) in merged.iter_mut().enumerate() {
                            *m = m.clone() + &out[idx][c];
                        }
                    }
                }
                merged
            })
            .collect();
    }
    if target_dim != cur_dim {
        let proj = sink
            .wants_values()
            .then(|| Tensor::random(cur_dim, target_dim, cfg, rng));
        let proj_lcs = alloc_tensor_opt(sink, cur_dim, target_dim, proj.as_ref());
        out = linear(sink, &out, &proj_lcs, strategy, z, cfg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::VitConfig;
    use zkvc_core::api::{circuit_shape_digest, compile_shape, generate_witness_for};
    use zkvc_ff::Field;

    #[test]
    fn tiny_vit_circuit_is_satisfiable_for_all_schedules() {
        let cfg = VitConfig::custom(2, 2, 8, 4, 4).to_model();
        for schedule in [
            MixerSchedule::soft_approx(2),
            MixerSchedule::soft_free_s(2),
            MixerSchedule::soft_free_p(2),
            MixerSchedule::zkvc_hybrid(2),
        ] {
            let circuit = ModelCircuit::build(&cfg, &schedule, Strategy::CrpcPsq, 7);
            assert!(circuit.cs.is_satisfied(), "{}", schedule.name);
            // embed + 2 blocks + classifier
            assert_eq!(circuit.layers.len(), 4);
            assert_eq!(circuit.logits.len(), 4);
            assert!(circuit.num_constraints() > 0);
        }
    }

    #[test]
    fn statement_two_pass_matches_eager_build() {
        // The lazy statement's shape pass (no weights generated) and
        // witness pass must reproduce the eager build exactly: same digest,
        // same matrices, same flat assignment, same logits.
        let cfg = VitConfig::custom(2, 2, 8, 4, 4).to_model();
        let schedule = MixerSchedule::zkvc_hybrid(2);
        let z = Fr::from_u64(0xFEED_5EED);
        let eager = ModelCircuit::build_seeded(&cfg, &schedule, Strategy::CrpcPsq, 9, z);
        let statement = ModelStatement::new(cfg, schedule, Strategy::CrpcPsq, 9, z);

        let shape = compile_shape(&statement);
        assert_eq!(shape.digest, circuit_shape_digest(&eager.cs));
        assert_eq!(shape.num_constraints(), eager.num_constraints());

        let witness = generate_witness_for(&statement, &shape);
        assert_eq!(witness.full(), eager.cs.full_assignment());
        assert_eq!(witness.instance, eager.logits);
        assert!(shape.is_satisfied(&witness));

        // The eager circuit re-synthesises to the same shape too.
        assert_eq!(compile_shape(&eager).digest, shape.digest);
    }

    #[test]
    fn zkvc_strategy_shrinks_the_circuit() {
        let cfg = VitConfig::custom(2, 2, 8, 4, 4).to_model();
        let schedule = MixerSchedule::soft_approx(2);
        let vanilla = ModelCircuit::build(&cfg, &schedule, Strategy::Vanilla, 7);
        let zkvc = ModelCircuit::build(&cfg, &schedule, Strategy::CrpcPsq, 7);
        assert!(zkvc.num_constraints() < vanilla.num_constraints());
        assert!(vanilla.cs.is_satisfied() && zkvc.cs.is_satisfied());
    }

    #[test]
    fn softmax_schedule_costs_more_than_hybrid() {
        let cfg = VitConfig::custom(3, 2, 8, 6, 4).to_model();
        let soft = ModelCircuit::build(&cfg, &MixerSchedule::soft_approx(3), Strategy::CrpcPsq, 3);
        let hybrid =
            ModelCircuit::build(&cfg, &MixerSchedule::zkvc_hybrid(3), Strategy::CrpcPsq, 3);
        let pool = ModelCircuit::build(&cfg, &MixerSchedule::soft_free_p(3), Strategy::CrpcPsq, 3);
        assert!(soft.num_constraints() > hybrid.num_constraints());
        assert!(hybrid.num_constraints() > pool.num_constraints());
    }

    #[test]
    fn logits_are_bound_as_public_outputs() {
        let cfg = VitConfig::custom(1, 1, 4, 2, 3).to_model();
        let circuit =
            ModelCircuit::build(&cfg, &MixerSchedule::soft_free_p(1), Strategy::CrpcPsq, 5);
        assert!(circuit.cs.is_satisfied());
        // The instance assignment is exactly the logits, in order.
        assert_eq!(circuit.cs.num_instance(), 3);
        assert_eq!(circuit.public_outputs(), circuit.logits);
        // Claiming different logits breaks the circuit.
        let mut instance = circuit.cs.instance_assignment().to_vec();
        instance[1] += Fr::one();
        let mut cs = circuit.cs;
        cs.set_instance_assignment(instance);
        assert!(!cs.is_satisfied(), "tampered logit accepted");
    }

    #[test]
    fn build_seeded_shares_shape_across_weight_seeds() {
        // Same (model, schedule, strategy, z), different weights: one
        // circuit shape — the property the runtime key cache relies on.
        let cfg = VitConfig::custom(1, 1, 4, 2, 2).to_model();
        let schedule = MixerSchedule::soft_free_p(1);
        let z = Fr::from_u64(0xABCD_1234);
        let c1 = ModelCircuit::build_seeded(&cfg, &schedule, Strategy::CrpcPsq, 1, z);
        let c2 = ModelCircuit::build_seeded(&cfg, &schedule, Strategy::CrpcPsq, 2, z);
        assert!(c1.cs.is_satisfied() && c2.cs.is_satisfied());
        assert_eq!(c1.shape_digest(), c2.shape_digest());
        assert_ne!(c1.logits, c2.logits, "different weights, different result");
        // A different challenge is a different shape (z sits in the
        // constraint coefficients).
        let c3 = ModelCircuit::build_seeded(&cfg, &schedule, Strategy::CrpcPsq, 1, z + Fr::one());
        assert_ne!(c1.shape_digest(), c3.shape_digest());
    }

    #[test]
    fn hierarchical_resize_keeps_satisfiability() {
        // Two layers with different seq/dim force a resize between them.
        use crate::models::{LayerSpec, ModelConfig};
        let model = ModelConfig {
            name: "mini-hierarchical".to_string(),
            input_dim: 12,
            layers: vec![
                LayerSpec {
                    seq_len: 8,
                    dim: 8,
                    num_heads: 2,
                    mlp_dim: 16,
                },
                LayerSpec {
                    seq_len: 2,
                    dim: 12,
                    num_heads: 2,
                    mlp_dim: 24,
                },
            ],
            num_classes: 3,
        };
        let circuit = ModelCircuit::build(
            &model,
            &MixerSchedule::zkvc_hybrid(2),
            Strategy::CrpcPsq,
            11,
        );
        assert!(circuit.cs.is_satisfied());
        assert_eq!(circuit.logits.len(), 3);
        // The hierarchical resize path is pass-oblivious too.
        let shape = compile_shape(circuit.statement());
        assert_eq!(shape.digest, circuit.shape_digest());
    }
}
