//! The model-to-circuit compiler: turns a [`ModelConfig`] plus a
//! [`MixerSchedule`] into one R1CS covering the whole forward pass
//! (embedding, every Transformer block, pooling and the classifier head),
//! together with per-layer constraint statistics.
//!
//! The class logits of the reference run are bound as **public instance
//! variables**, so a proof over a [`ModelCircuit`] commits to the concrete
//! inference result: verifying the same proof against different claimed
//! logits fails. `ModelCircuit` implements [`Circuit`], which is how the
//! `zkvc-runtime` proving pool and CLI consume it.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::Circuit;
use zkvc_core::fixed::FixedPointConfig;
use zkvc_core::matmul::Strategy;
use zkvc_core::nonlinear::SoftmaxConfig;
use zkvc_ff::{Fr, PrimeField};
use zkvc_r1cs::ConstraintSystem;

use crate::layers::{alloc_tensor, linear, transformer_block, BlockWeights, LcMatrix};
use crate::mixer::MixerSchedule;
use crate::models::ModelConfig;
use crate::tensor::Tensor;

/// Per-layer constraint accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerStats {
    /// Layer label ("embed", "block 3 (SoftFree-S)", "classifier").
    pub label: String,
    /// Constraints added by this layer.
    pub constraints: usize,
    /// Variables added by this layer.
    pub variables: usize,
}

/// A fully synthesised verifiable-inference circuit.
#[derive(Clone, Debug)]
pub struct ModelCircuit {
    /// The constraint system with the complete witness.
    pub cs: ConstraintSystem<Fr>,
    /// Per-layer statistics.
    pub layers: Vec<LayerStats>,
    /// The model's class-logit outputs (quantised) from the reference run.
    pub logits: Vec<Fr>,
    /// Name of the model + schedule combination.
    pub name: String,
}

impl ModelCircuit {
    /// Builds the circuit for a model with synthetic weights and a synthetic
    /// input, using the given matmul strategy. `seed` makes the synthetic
    /// initialisation reproducible and also derives the CRPC challenge.
    pub fn build(
        model: &ModelConfig,
        schedule: &MixerSchedule,
        strategy: Strategy,
        seed: u64,
    ) -> ModelCircuit {
        // CRPC challenge: derived from the seed here; production callers
        // would derive it from a transcript over committed inputs/weights
        // (see zkvc-core::matmul::ZSource) or sample it at setup time and
        // pass it through [`ModelCircuit::build_seeded`].
        let z = Fr::from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        Self::build_seeded(model, schedule, strategy, seed, z)
    }

    /// Like [`ModelCircuit::build`], but with the CRPC challenge supplied
    /// by the caller, decoupled from the weight/input seed. Because `z` is
    /// baked into the constraint coefficients, every circuit built with the
    /// same `(model, schedule, strategy, z)` shares one shape — which is
    /// what lets a batch of per-`weight_seed` model jobs share a single
    /// setup in the runtime's key cache.
    pub fn build_seeded(
        model: &ModelConfig,
        schedule: &MixerSchedule,
        strategy: Strategy,
        weight_seed: u64,
        z: Fr,
    ) -> ModelCircuit {
        assert_eq!(
            schedule.num_layers(),
            model.num_layers(),
            "mixer schedule must cover every layer"
        );
        let cfg = FixedPointConfig::default();
        let softmax_cfg = SoftmaxConfig::default();
        let mut rng = StdRng::seed_from_u64(weight_seed);
        let mut cs = ConstraintSystem::<Fr>::new();
        let mut layers = Vec::new();

        let first = &model.layers[0];
        // Synthetic input tokens and embedding.
        let input = Tensor::random(first.seq_len, model.input_dim, &cfg, &mut rng);
        let w_embed = Tensor::random(model.input_dim, first.dim, &cfg, &mut rng);
        let before = (cs.num_constraints(), cs.num_variables());
        let input_lcs = alloc_tensor(&mut cs, &input);
        let w_embed_lcs = alloc_tensor(&mut cs, &w_embed);
        let mut tokens: LcMatrix = linear(&mut cs, &input_lcs, &w_embed_lcs, strategy, z, &cfg);
        layers.push(LayerStats {
            label: "embed".to_string(),
            constraints: cs.num_constraints() - before.0,
            variables: cs.num_variables() - before.1,
        });

        // Transformer blocks.
        for (idx, (spec, mixer)) in model.layers.iter().zip(schedule.layers.iter()).enumerate() {
            // When the spec's sequence length or dim changes between stages
            // (hierarchical ViT), downsample tokens by truncation/projection.
            tokens = resize_tokens(
                &mut cs,
                &tokens,
                spec.seq_len,
                spec.dim,
                strategy,
                z,
                &cfg,
                &mut rng,
            );
            let weights =
                BlockWeights::random(spec.seq_len, spec.dim, spec.mlp_dim, &cfg, &mut rng);
            let before = (cs.num_constraints(), cs.num_variables());
            tokens = transformer_block(
                &mut cs,
                &tokens,
                &weights,
                *mixer,
                spec.num_heads,
                strategy,
                z,
                &cfg,
                &softmax_cfg,
            );
            layers.push(LayerStats {
                label: format!("block {idx} ({})", mixer.name()),
                constraints: cs.num_constraints() - before.0,
                variables: cs.num_variables() - before.1,
            });
        }

        // Classifier: mean-pool tokens (linear), then a projection to
        // `num_classes` logits.
        let last = model.layers.last().expect("at least one layer");
        let before = (cs.num_constraints(), cs.num_variables());
        let mut pooled: LcMatrix = vec![Vec::with_capacity(last.dim)];
        for c in 0..tokens[0].len() {
            let mut acc = zkvc_r1cs::LinearCombination::zero();
            for row in &tokens {
                acc = acc + &row[c];
            }
            pooled[0].push(acc);
        }
        let w_head = Tensor::random(tokens[0].len(), model.num_classes, &cfg, &mut rng);
        let w_head_lcs = alloc_tensor(&mut cs, &w_head);
        let logits_lcs = linear(&mut cs, &pooled, &w_head_lcs, strategy, z, &cfg);
        let logits: Vec<Fr> = logits_lcs[0].iter().map(|lc| cs.eval_lc(lc)).collect();
        // Bind the inference result: each logit becomes a public instance
        // variable constrained to equal the classifier output, so the proof
        // commits to the concrete logits, not just the circuit shape.
        let public_logits: Vec<zkvc_r1cs::LinearCombination<Fr>> = logits
            .iter()
            .map(|value| cs.alloc_instance(*value).into())
            .collect();
        zkvc_core::api::bind_public_outputs(&mut cs, &logits_lcs[0], &public_logits);
        layers.push(LayerStats {
            label: "classifier".to_string(),
            constraints: cs.num_constraints() - before.0,
            variables: cs.num_variables() - before.1,
        });

        ModelCircuit {
            cs,
            layers,
            logits,
            name: format!("{} / {}", model.name, schedule.name),
        }
    }

    /// Total constraints in the circuit.
    pub fn num_constraints(&self) -> usize {
        self.cs.num_constraints()
    }

    /// Total variables in the circuit.
    pub fn num_variables(&self) -> usize {
        self.cs.num_variables()
    }
}

impl Circuit for ModelCircuit {
    fn constraint_system(&self) -> &ConstraintSystem<Fr> {
        &self.cs
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// Adjusts the token matrix to a target `(seq, dim)` shape between stages:
/// sequences are shortened by merging adjacent tokens (sum), dimensions are
/// changed with a verified linear projection.
#[allow(clippy::too_many_arguments)]
fn resize_tokens(
    cs: &mut ConstraintSystem<Fr>,
    tokens: &LcMatrix,
    target_seq: usize,
    target_dim: usize,
    strategy: Strategy,
    z: Fr,
    cfg: &FixedPointConfig,
    rng: &mut StdRng,
) -> LcMatrix {
    let cur_seq = tokens.len();
    let cur_dim = tokens[0].len();
    let mut out: LcMatrix = tokens.clone();
    if target_seq < cur_seq {
        let merge = cur_seq.div_ceil(target_seq);
        out = (0..target_seq)
            .map(|t| {
                let mut merged = vec![zkvc_r1cs::LinearCombination::zero(); cur_dim];
                for s in 0..merge {
                    let idx = t * merge + s;
                    if idx < cur_seq {
                        for (c, m) in merged.iter_mut().enumerate() {
                            *m = m.clone() + &out[idx][c];
                        }
                    }
                }
                merged
            })
            .collect();
    }
    if target_dim != cur_dim {
        let proj = Tensor::random(cur_dim, target_dim, cfg, rng);
        let proj_lcs = alloc_tensor(cs, &proj);
        out = linear(cs, &out, &proj_lcs, strategy, z, cfg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::VitConfig;
    use zkvc_ff::Field;

    #[test]
    fn tiny_vit_circuit_is_satisfiable_for_all_schedules() {
        let cfg = VitConfig::custom(2, 2, 8, 4, 4).to_model();
        for schedule in [
            MixerSchedule::soft_approx(2),
            MixerSchedule::soft_free_s(2),
            MixerSchedule::soft_free_p(2),
            MixerSchedule::zkvc_hybrid(2),
        ] {
            let circuit = ModelCircuit::build(&cfg, &schedule, Strategy::CrpcPsq, 7);
            assert!(circuit.cs.is_satisfied(), "{}", schedule.name);
            // embed + 2 blocks + classifier
            assert_eq!(circuit.layers.len(), 4);
            assert_eq!(circuit.logits.len(), 4);
            assert!(circuit.num_constraints() > 0);
        }
    }

    #[test]
    fn zkvc_strategy_shrinks_the_circuit() {
        let cfg = VitConfig::custom(2, 2, 8, 4, 4).to_model();
        let schedule = MixerSchedule::soft_approx(2);
        let vanilla = ModelCircuit::build(&cfg, &schedule, Strategy::Vanilla, 7);
        let zkvc = ModelCircuit::build(&cfg, &schedule, Strategy::CrpcPsq, 7);
        assert!(zkvc.num_constraints() < vanilla.num_constraints());
        assert!(vanilla.cs.is_satisfied() && zkvc.cs.is_satisfied());
    }

    #[test]
    fn softmax_schedule_costs_more_than_hybrid() {
        let cfg = VitConfig::custom(3, 2, 8, 6, 4).to_model();
        let soft = ModelCircuit::build(&cfg, &MixerSchedule::soft_approx(3), Strategy::CrpcPsq, 3);
        let hybrid =
            ModelCircuit::build(&cfg, &MixerSchedule::zkvc_hybrid(3), Strategy::CrpcPsq, 3);
        let pool = ModelCircuit::build(&cfg, &MixerSchedule::soft_free_p(3), Strategy::CrpcPsq, 3);
        assert!(soft.num_constraints() > hybrid.num_constraints());
        assert!(hybrid.num_constraints() > pool.num_constraints());
    }

    #[test]
    fn logits_are_bound_as_public_outputs() {
        let cfg = VitConfig::custom(1, 1, 4, 2, 3).to_model();
        let circuit =
            ModelCircuit::build(&cfg, &MixerSchedule::soft_free_p(1), Strategy::CrpcPsq, 5);
        assert!(circuit.cs.is_satisfied());
        // The instance assignment is exactly the logits, in order.
        assert_eq!(circuit.cs.num_instance(), 3);
        assert_eq!(circuit.public_outputs(), circuit.logits);
        // Claiming different logits breaks the circuit.
        let mut instance = circuit.cs.instance_assignment().to_vec();
        instance[1] += Fr::one();
        let mut cs = circuit.cs.clone();
        cs.set_instance_assignment(instance);
        assert!(!cs.is_satisfied(), "tampered logit accepted");
    }

    #[test]
    fn build_seeded_shares_shape_across_weight_seeds() {
        // Same (model, schedule, strategy, z), different weights: one
        // circuit shape — the property the runtime key cache relies on.
        let cfg = VitConfig::custom(1, 1, 4, 2, 2).to_model();
        let schedule = MixerSchedule::soft_free_p(1);
        let z = Fr::from_u64(0xABCD_1234);
        let c1 = ModelCircuit::build_seeded(&cfg, &schedule, Strategy::CrpcPsq, 1, z);
        let c2 = ModelCircuit::build_seeded(&cfg, &schedule, Strategy::CrpcPsq, 2, z);
        assert!(c1.cs.is_satisfied() && c2.cs.is_satisfied());
        assert_eq!(c1.shape_digest(), c2.shape_digest());
        assert_ne!(c1.logits, c2.logits, "different weights, different result");
        // A different challenge is a different shape (z sits in the
        // constraint coefficients).
        let c3 = ModelCircuit::build_seeded(&cfg, &schedule, Strategy::CrpcPsq, 1, z + Fr::one());
        assert_ne!(c1.shape_digest(), c3.shape_digest());
    }

    #[test]
    fn hierarchical_resize_keeps_satisfiability() {
        // Two layers with different seq/dim force a resize between them.
        use crate::models::{LayerSpec, ModelConfig};
        let model = ModelConfig {
            name: "mini-hierarchical".to_string(),
            input_dim: 12,
            layers: vec![
                LayerSpec {
                    seq_len: 8,
                    dim: 8,
                    num_heads: 2,
                    mlp_dim: 16,
                },
                LayerSpec {
                    seq_len: 2,
                    dim: 12,
                    num_heads: 2,
                    mlp_dim: 24,
                },
            ],
            num_classes: 3,
        };
        let circuit = ModelCircuit::build(
            &model,
            &MixerSchedule::zkvc_hybrid(2),
            Strategy::CrpcPsq,
            11,
        );
        assert!(circuit.cs.is_satisfied());
        assert_eq!(circuit.logits.len(), 3);
    }
}
