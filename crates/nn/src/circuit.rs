//! The model-to-circuit compiler: turns a [`ModelConfig`] plus a
//! [`MixerSchedule`] into one R1CS covering the whole forward pass
//! (embedding, every Transformer block, pooling and the classifier head),
//! together with per-layer constraint statistics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::fixed::FixedPointConfig;
use zkvc_core::matmul::Strategy;
use zkvc_core::nonlinear::SoftmaxConfig;
use zkvc_ff::{Fr, PrimeField};
use zkvc_r1cs::ConstraintSystem;

use crate::layers::{alloc_tensor, linear, transformer_block, BlockWeights, LcMatrix};
use crate::mixer::MixerSchedule;
use crate::models::ModelConfig;
use crate::tensor::Tensor;

/// Per-layer constraint accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerStats {
    /// Layer label ("embed", "block 3 (SoftFree-S)", "classifier").
    pub label: String,
    /// Constraints added by this layer.
    pub constraints: usize,
    /// Variables added by this layer.
    pub variables: usize,
}

/// A fully synthesised verifiable-inference circuit.
#[derive(Clone, Debug)]
pub struct ModelCircuit {
    /// The constraint system with the complete witness.
    pub cs: ConstraintSystem<Fr>,
    /// Per-layer statistics.
    pub layers: Vec<LayerStats>,
    /// The model's class-logit outputs (quantised) from the reference run.
    pub logits: Vec<Fr>,
    /// Name of the model + schedule combination.
    pub name: String,
}

impl ModelCircuit {
    /// Builds the circuit for a model with synthetic weights and a synthetic
    /// input, using the given matmul strategy. `seed` makes the synthetic
    /// initialisation reproducible.
    pub fn build(
        model: &ModelConfig,
        schedule: &MixerSchedule,
        strategy: Strategy,
        seed: u64,
    ) -> ModelCircuit {
        assert_eq!(
            schedule.num_layers(),
            model.num_layers(),
            "mixer schedule must cover every layer"
        );
        let cfg = FixedPointConfig::default();
        let softmax_cfg = SoftmaxConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cs = ConstraintSystem::<Fr>::new();
        let mut layers = Vec::new();

        // CRPC challenge: derived from the seed here; production callers
        // would derive it from a transcript over committed inputs/weights
        // (see zkvc-core::matmul::ZSource).
        let z = Fr::from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);

        let first = &model.layers[0];
        // Synthetic input tokens and embedding.
        let input = Tensor::random(first.seq_len, model.input_dim, &cfg, &mut rng);
        let w_embed = Tensor::random(model.input_dim, first.dim, &cfg, &mut rng);
        let before = (cs.num_constraints(), cs.num_variables());
        let input_lcs = alloc_tensor(&mut cs, &input);
        let w_embed_lcs = alloc_tensor(&mut cs, &w_embed);
        let mut tokens: LcMatrix = linear(&mut cs, &input_lcs, &w_embed_lcs, strategy, z, &cfg);
        layers.push(LayerStats {
            label: "embed".to_string(),
            constraints: cs.num_constraints() - before.0,
            variables: cs.num_variables() - before.1,
        });

        // Transformer blocks.
        for (idx, (spec, mixer)) in model.layers.iter().zip(schedule.layers.iter()).enumerate() {
            // When the spec's sequence length or dim changes between stages
            // (hierarchical ViT), downsample tokens by truncation/projection.
            tokens = resize_tokens(
                &mut cs,
                &tokens,
                spec.seq_len,
                spec.dim,
                strategy,
                z,
                &cfg,
                &mut rng,
            );
            let weights =
                BlockWeights::random(spec.seq_len, spec.dim, spec.mlp_dim, &cfg, &mut rng);
            let before = (cs.num_constraints(), cs.num_variables());
            tokens = transformer_block(
                &mut cs,
                &tokens,
                &weights,
                *mixer,
                spec.num_heads,
                strategy,
                z,
                &cfg,
                &softmax_cfg,
            );
            layers.push(LayerStats {
                label: format!("block {idx} ({})", mixer.name()),
                constraints: cs.num_constraints() - before.0,
                variables: cs.num_variables() - before.1,
            });
        }

        // Classifier: mean-pool tokens (linear), then a projection to
        // `num_classes` logits.
        let last = model.layers.last().expect("at least one layer");
        let before = (cs.num_constraints(), cs.num_variables());
        let mut pooled: LcMatrix = vec![Vec::with_capacity(last.dim)];
        for c in 0..tokens[0].len() {
            let mut acc = zkvc_r1cs::LinearCombination::zero();
            for row in &tokens {
                acc = acc + &row[c];
            }
            pooled[0].push(acc);
        }
        let w_head = Tensor::random(tokens[0].len(), model.num_classes, &cfg, &mut rng);
        let w_head_lcs = alloc_tensor(&mut cs, &w_head);
        let logits_lcs = linear(&mut cs, &pooled, &w_head_lcs, strategy, z, &cfg);
        let logits: Vec<Fr> = logits_lcs[0].iter().map(|lc| cs.eval_lc(lc)).collect();
        layers.push(LayerStats {
            label: "classifier".to_string(),
            constraints: cs.num_constraints() - before.0,
            variables: cs.num_variables() - before.1,
        });

        ModelCircuit {
            cs,
            layers,
            logits,
            name: format!("{} / {}", model.name, schedule.name),
        }
    }

    /// Total constraints in the circuit.
    pub fn num_constraints(&self) -> usize {
        self.cs.num_constraints()
    }

    /// Total variables in the circuit.
    pub fn num_variables(&self) -> usize {
        self.cs.num_variables()
    }
}

/// Adjusts the token matrix to a target `(seq, dim)` shape between stages:
/// sequences are shortened by merging adjacent tokens (sum), dimensions are
/// changed with a verified linear projection.
#[allow(clippy::too_many_arguments)]
fn resize_tokens(
    cs: &mut ConstraintSystem<Fr>,
    tokens: &LcMatrix,
    target_seq: usize,
    target_dim: usize,
    strategy: Strategy,
    z: Fr,
    cfg: &FixedPointConfig,
    rng: &mut StdRng,
) -> LcMatrix {
    let cur_seq = tokens.len();
    let cur_dim = tokens[0].len();
    let mut out: LcMatrix = tokens.clone();
    if target_seq < cur_seq {
        let merge = cur_seq.div_ceil(target_seq);
        out = (0..target_seq)
            .map(|t| {
                let mut merged = vec![zkvc_r1cs::LinearCombination::zero(); cur_dim];
                for s in 0..merge {
                    let idx = t * merge + s;
                    if idx < cur_seq {
                        for (c, m) in merged.iter_mut().enumerate() {
                            *m = m.clone() + &out[idx][c];
                        }
                    }
                }
                merged
            })
            .collect();
    }
    if target_dim != cur_dim {
        let proj = Tensor::random(cur_dim, target_dim, cfg, rng);
        let proj_lcs = alloc_tensor(cs, &proj);
        out = linear(cs, &out, &proj_lcs, strategy, z, cfg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::VitConfig;

    #[test]
    fn tiny_vit_circuit_is_satisfiable_for_all_schedules() {
        let cfg = VitConfig::custom(2, 2, 8, 4, 4).to_model();
        for schedule in [
            MixerSchedule::soft_approx(2),
            MixerSchedule::soft_free_s(2),
            MixerSchedule::soft_free_p(2),
            MixerSchedule::zkvc_hybrid(2),
        ] {
            let circuit = ModelCircuit::build(&cfg, &schedule, Strategy::CrpcPsq, 7);
            assert!(circuit.cs.is_satisfied(), "{}", schedule.name);
            // embed + 2 blocks + classifier
            assert_eq!(circuit.layers.len(), 4);
            assert_eq!(circuit.logits.len(), 4);
            assert!(circuit.num_constraints() > 0);
        }
    }

    #[test]
    fn zkvc_strategy_shrinks_the_circuit() {
        let cfg = VitConfig::custom(2, 2, 8, 4, 4).to_model();
        let schedule = MixerSchedule::soft_approx(2);
        let vanilla = ModelCircuit::build(&cfg, &schedule, Strategy::Vanilla, 7);
        let zkvc = ModelCircuit::build(&cfg, &schedule, Strategy::CrpcPsq, 7);
        assert!(zkvc.num_constraints() < vanilla.num_constraints());
        assert!(vanilla.cs.is_satisfied() && zkvc.cs.is_satisfied());
    }

    #[test]
    fn softmax_schedule_costs_more_than_hybrid() {
        let cfg = VitConfig::custom(3, 2, 8, 6, 4).to_model();
        let soft = ModelCircuit::build(&cfg, &MixerSchedule::soft_approx(3), Strategy::CrpcPsq, 3);
        let hybrid =
            ModelCircuit::build(&cfg, &MixerSchedule::zkvc_hybrid(3), Strategy::CrpcPsq, 3);
        let pool = ModelCircuit::build(&cfg, &MixerSchedule::soft_free_p(3), Strategy::CrpcPsq, 3);
        assert!(soft.num_constraints() > hybrid.num_constraints());
        assert!(hybrid.num_constraints() > pool.num_constraints());
    }

    #[test]
    fn hierarchical_resize_keeps_satisfiability() {
        // Two layers with different seq/dim force a resize between them.
        use crate::models::{LayerSpec, ModelConfig};
        let model = ModelConfig {
            name: "mini-hierarchical".to_string(),
            input_dim: 12,
            layers: vec![
                LayerSpec {
                    seq_len: 8,
                    dim: 8,
                    num_heads: 2,
                    mlp_dim: 16,
                },
                LayerSpec {
                    seq_len: 2,
                    dim: 12,
                    num_heads: 2,
                    mlp_dim: 24,
                },
            ],
            num_classes: 3,
        };
        let circuit = ModelCircuit::build(
            &model,
            &MixerSchedule::zkvc_hybrid(2),
            Strategy::CrpcPsq,
            11,
        );
        assert!(circuit.cs.is_satisfied());
        assert_eq!(circuit.logits.len(), 3);
    }
}
