//! # zkvc-interactive
//!
//! Thaler's interactive sum-check protocol for matrix multiplication
//! (J. Thaler, "Time-Optimal Interactive Proofs for Circuit Evaluation",
//! CRYPTO 2013), which is the core of how zkCNN-style GKR systems prove
//! matmul layers. It plays the role of the paper's **interactive baseline**
//! in Fig. 6: very fast proving, but the verifier must stay online, do work
//! linear in the matrix size, and exchange `O(log n)` messages.
//!
//! The claim `Y = X * W` is reduced to
//! `Y~(rx, ry) = sum_k X~(rx, k) * W~(k, ry)`, a single sum-check over the
//! inner dimension. Here it is made non-interactive with the shared
//! Fiat-Shamir transcript so the same harness can time it; the "online
//! time" reported by the Fig. 6 harness counts both prover and verifier
//! work, reflecting that both parties must be live in the interactive
//! setting.
//!
//! ## Example
//!
//! ```rust
//! use zkvc_interactive::{prove_matmul, verify_matmul, MatMulClaim};
//! use zkvc_ff::{Fr, PrimeField};
//!
//! // 2x2 matrices
//! let x = vec![vec![Fr::from_u64(1), Fr::from_u64(2)],
//!              vec![Fr::from_u64(3), Fr::from_u64(4)]];
//! let w = vec![vec![Fr::from_u64(5), Fr::from_u64(6)],
//!              vec![Fr::from_u64(7), Fr::from_u64(8)]];
//! let claim = MatMulClaim::compute(&x, &w);
//! let proof = prove_matmul(&x, &w, &claim);
//! assert!(verify_matmul(&x, &w, &claim, &proof));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use zkvc_ff::poly::eq_evals;
use zkvc_ff::{Field, Fr, MultilinearPolynomial};
use zkvc_hash::Transcript;
use zkvc_spartan::sumcheck::{self, SumcheckProof};

const LABEL: &[u8] = b"zkvc-interactive-matmul";

/// A matrix-multiplication statement `Y = X * W` with `X: a x n`,
/// `W: n x b`, together with the product matrix the prover claims.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatMulClaim {
    /// Number of rows of `X` (and `Y`).
    pub a: usize,
    /// Inner dimension.
    pub n: usize,
    /// Number of columns of `W` (and `Y`).
    pub b: usize,
    /// The claimed product matrix `Y`, row-major.
    pub y: Vec<Vec<Fr>>,
}

impl MatMulClaim {
    /// Computes the true product and wraps it as a claim.
    ///
    /// # Panics
    /// Panics if the dimensions are inconsistent.
    pub fn compute(x: &[Vec<Fr>], w: &[Vec<Fr>]) -> Self {
        let a = x.len();
        let n = w.len();
        assert!(a > 0 && n > 0, "matrices must be non-empty");
        assert!(x.iter().all(|r| r.len() == n), "X column count mismatch");
        let b = w[0].len();
        assert!(w.iter().all(|r| r.len() == b), "W column count mismatch");
        let mut y = vec![vec![Fr::zero(); b]; a];
        for (i, yi) in y.iter_mut().enumerate() {
            for (j, yij) in yi.iter_mut().enumerate() {
                let mut acc = Fr::zero();
                for k in 0..n {
                    acc += x[i][k] * w[k][j];
                }
                *yij = acc;
            }
        }
        MatMulClaim { a, n, b, y }
    }
}

/// The proof: one sum-check over the inner dimension plus the two final
/// evaluations of `X~` and `W~` at the random point.
#[derive(Clone, Debug)]
pub struct MatMulProof {
    /// The sum-check messages.
    pub sumcheck: SumcheckProof,
    /// `X~(rx, rk)`.
    pub x_eval: Fr,
    /// `W~(rk, ry)`.
    pub w_eval: Fr,
}

impl MatMulProof {
    /// Proof size in bytes (field elements only — the matrices themselves
    /// are known to the verifier in this baseline).
    pub fn size_in_bytes(&self) -> usize {
        32 * (self.sumcheck.num_field_elements() + 2)
    }
}

fn log2_ceil(x: usize) -> usize {
    x.max(1).next_power_of_two().trailing_zeros() as usize
}

/// Evaluates the MLE of a matrix at `(row_point, col_point)`.
fn matrix_eval(m: &[Vec<Fr>], rows: usize, cols: usize, rp: &[Fr], cp: &[Fr]) -> Fr {
    let chi_r = eq_evals(rp);
    let chi_c = eq_evals(cp);
    let mut acc = Fr::zero();
    for (i, row) in m.iter().enumerate().take(rows) {
        for (j, v) in row.iter().enumerate().take(cols) {
            if v.is_zero() {
                continue;
            }
            acc += chi_r[i] * chi_c[j] * *v;
        }
    }
    acc
}

/// Produces the interactive (Fiat-Shamir compressed) proof that
/// `claim.y == x * w`.
pub fn prove_matmul(x: &[Vec<Fr>], w: &[Vec<Fr>], claim: &MatMulClaim) -> MatMulProof {
    let mut transcript = Transcript::new(LABEL);
    bind_statement(&mut transcript, claim);

    let log_a = log2_ceil(claim.a);
    let log_b = log2_ceil(claim.b);
    let log_n = log2_ceil(claim.n);

    // Verifier's random point on Y.
    let rx = transcript.challenge_fields(b"rx", log_a);
    let ry = transcript.challenge_fields(b"ry", log_b);

    // Claimed value Y~(rx, ry).
    let y_eval = matrix_eval(&claim.y, claim.a, claim.b, &rx, &ry);

    // Build the two inner-dimension polynomials:
    //   f(k) = X~(rx, k)   and   g(k) = W~(k, ry)
    let chi_rx = eq_evals(&rx);
    let chi_ry = eq_evals(&ry);
    let n_pad = claim.n.max(1).next_power_of_two();
    let mut f = vec![Fr::zero(); n_pad];
    let mut g = vec![Fr::zero(); n_pad];
    for k in 0..claim.n {
        let mut fx = Fr::zero();
        for i in 0..claim.a {
            fx += chi_rx[i] * x[i][k];
        }
        f[k] = fx;
        let mut gx = Fr::zero();
        for j in 0..claim.b {
            gx += chi_ry[j] * w[k][j];
        }
        g[k] = gx;
    }
    let f_poly = MultilinearPolynomial::from_evaluations(f);
    let g_poly = MultilinearPolynomial::from_evaluations(g);

    let (sc, _rk, (x_eval, w_eval)) =
        sumcheck::prove_quadratic(&y_eval, &f_poly, &g_poly, &mut transcript);
    debug_assert_eq!(sc.round_polys.len(), log_n);

    MatMulProof {
        sumcheck: sc,
        x_eval,
        w_eval,
    }
}

/// Verifies the matmul proof. The verifier reads the input matrices itself
/// (they are public in this baseline) and pays `O(a n + n b + a b)` field
/// work plus the online interaction — exactly the trade-off Table I and
/// Fig. 6 attribute to interactive schemes.
pub fn verify_matmul(
    x: &[Vec<Fr>],
    w: &[Vec<Fr>],
    claim: &MatMulClaim,
    proof: &MatMulProof,
) -> bool {
    let mut transcript = Transcript::new(LABEL);
    bind_statement(&mut transcript, claim);

    let log_a = log2_ceil(claim.a);
    let log_b = log2_ceil(claim.b);
    let log_n = log2_ceil(claim.n);

    let rx = transcript.challenge_fields(b"rx", log_a);
    let ry = transcript.challenge_fields(b"ry", log_b);
    let y_eval = matrix_eval(&claim.y, claim.a, claim.b, &rx, &ry);

    let Some(sub) = sumcheck::verify(&y_eval, log_n, 2, &proof.sumcheck, &mut transcript) else {
        return false;
    };
    if sub.expected_evaluation != proof.x_eval * proof.w_eval {
        return false;
    }
    // Check the final evaluations against the (public) inputs.
    let rk = &sub.point;
    proof.x_eval == matrix_eval(x, claim.a, claim.n, &rx, rk)
        && proof.w_eval == matrix_eval(w, claim.n, claim.b, rk, &ry)
}

fn bind_statement(t: &mut Transcript, claim: &MatMulClaim) {
    t.append_u64(b"a", claim.a as u64);
    t.append_u64(b"n", claim.n as u64);
    t.append_u64(b"b", claim.b as u64);
    for row in &claim.y {
        t.append_fields(b"y row", row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use zkvc_ff::PrimeField;

    fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Vec<Vec<Fr>> {
        (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| Fr::from_u64(rng.gen_range(0..1000)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn correct_product_verifies() {
        let mut rng = StdRng::seed_from_u64(7);
        for (a, n, b) in [(1, 1, 1), (2, 2, 2), (3, 5, 4), (8, 8, 8), (7, 13, 9)] {
            let x = random_matrix(a, n, &mut rng);
            let w = random_matrix(n, b, &mut rng);
            let claim = MatMulClaim::compute(&x, &w);
            let proof = prove_matmul(&x, &w, &claim);
            assert!(verify_matmul(&x, &w, &claim, &proof), "dims {a}x{n}x{b}");
            assert!(proof.size_in_bytes() > 0);
        }
    }

    #[test]
    fn wrong_product_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = random_matrix(4, 6, &mut rng);
        let w = random_matrix(6, 5, &mut rng);
        let mut claim = MatMulClaim::compute(&x, &w);
        claim.y[2][3] += Fr::one();
        let proof = prove_matmul(&x, &w, &claim);
        assert!(!verify_matmul(&x, &w, &claim, &proof));
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = random_matrix(4, 4, &mut rng);
        let w = random_matrix(4, 4, &mut rng);
        let claim = MatMulClaim::compute(&x, &w);
        let mut proof = prove_matmul(&x, &w, &claim);
        proof.x_eval += Fr::one();
        assert!(!verify_matmul(&x, &w, &claim, &proof));

        let mut proof = prove_matmul(&x, &w, &claim);
        proof.sumcheck.round_polys[0][0] += Fr::one();
        assert!(!verify_matmul(&x, &w, &claim, &proof));
    }

    #[test]
    fn mismatched_inputs_rejected() {
        // Proof generated for one X must not verify against a different X.
        let mut rng = StdRng::seed_from_u64(10);
        let x = random_matrix(4, 4, &mut rng);
        let w = random_matrix(4, 4, &mut rng);
        let claim = MatMulClaim::compute(&x, &w);
        let proof = prove_matmul(&x, &w, &claim);
        let x2 = random_matrix(4, 4, &mut rng);
        assert!(!verify_matmul(&x2, &w, &claim, &proof));
    }
}
