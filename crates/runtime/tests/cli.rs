//! End-to-end tests of the `zkvc` binary: prove/verify round trips for
//! matmul *and* model-preset jobs, statement-binding rejection, and
//! data-driven exit codes (`0` ok, `1` bad proof, `2` bad invocation).

use std::path::PathBuf;
use std::process::{Command, Output};

fn zkvc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_zkvc"))
        .args(args)
        .output()
        .expect("zkvc binary runs")
}

fn tmp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zkvc-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn matmul_prove_verify_roundtrip_and_binding_rejection() {
    let proof = tmp_file("matmul.bin");
    let proof_str = proof.to_str().unwrap();

    // Prove Y = X*W with public outputs (the default) on Spartan (fast in
    // debug builds) and verify it.
    let out = zkvc(&[
        "prove",
        "--spec",
        "2x3x2:zkvc:s",
        "--seed",
        "7",
        "--key-cache",
        "none",
        "--out",
        proof_str,
    ]);
    assert!(
        out.status.success(),
        "prove failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("public outputs"), "{stdout}");

    let out = zkvc(&[
        "verify",
        "--spec",
        "2x3x2:zkvc:s",
        "--seed",
        "7",
        "--key-cache",
        "none",
        "--in",
        proof_str,
    ]);
    assert!(
        out.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("statement binding: OK"), "{stdout}");
    assert!(stdout.contains("verification: OK"), "{stdout}");

    // A different seed rebuilds the same circuit shape with a different Y:
    // the replayed proof must fail statement binding with exit code 1.
    let out = zkvc(&[
        "verify",
        "--spec",
        "2x3x2:zkvc:s",
        "--seed",
        "8",
        "--key-cache",
        "none",
        "--in",
        proof_str,
    ]);
    assert_eq!(out.status.code(), Some(1), "replay must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("statement binding: MISMATCH"), "{stdout}");
}

#[test]
fn model_job_proves_and_verifies_through_the_cli() {
    let proof = tmp_file("mixer.bin");
    let proof_str = proof.to_str().unwrap();

    let out = zkvc(&[
        "prove",
        "--spec",
        "mixer-block:spartan",
        "--seed",
        "3",
        "--key-cache",
        "none",
        "--out",
        proof_str,
    ]);
    assert!(
        out.status.success(),
        "model prove failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mixer-block"), "{stdout}");

    let out = zkvc(&[
        "verify",
        "--spec",
        "mixer-block:spartan",
        "--seed",
        "3",
        "--key-cache",
        "none",
        "--in",
        proof_str,
    ]);
    assert!(
        out.status.success(),
        "model verify failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("statement binding: OK"), "{stdout}");

    // The model proof must not verify as some other preset's statement.
    let out = zkvc(&[
        "verify",
        "--spec",
        "bert-block:spartan",
        "--seed",
        "3",
        "--key-cache",
        "none",
        "--in",
        proof_str,
    ]);
    assert_eq!(out.status.code(), Some(1), "cross-preset verify must fail");
}

#[test]
fn usage_errors_exit_2() {
    // Unknown command.
    assert_eq!(zkvc(&["frobnicate"]).status.code(), Some(2));
    // Malformed spec.
    let out = zkvc(&["prove", "--spec", "2x2", "--out", "/dev/null"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad spec"));
    // Unknown flag.
    let out = zkvc(&["prove-batch", "--spec", "2x2x2", "--sede", "7"]);
    assert_eq!(out.status.code(), Some(2));
    // Missing file.
    let out = zkvc(&[
        "verify",
        "--spec",
        "2x2x2:s",
        "--key-cache",
        "none",
        "--in",
        "/nonexistent/proof.bin",
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn malformed_envelope_exits_2() {
    let path = tmp_file("garbage.bin");
    std::fs::write(&path, b"definitely not a proof").unwrap();
    let out = zkvc(&[
        "verify",
        "--spec",
        "2x2x2:s",
        "--key-cache",
        "none",
        "--in",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("malformed proof envelope"));
}

#[test]
fn backend_mismatch_exits_2() {
    let proof = tmp_file("spartan.bin");
    let proof_str = proof.to_str().unwrap();
    let out = zkvc(&[
        "prove",
        "--spec",
        "2x2x2:s",
        "--key-cache",
        "none",
        "--out",
        proof_str,
    ]);
    assert!(out.status.success());
    let out = zkvc(&[
        "verify",
        "--spec",
        "2x2x2:g",
        "--key-cache",
        "none",
        "--in",
        proof_str,
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("spartan"));
}
