//! Property tests for the `zkvc-serve/v1` wire grammar: the request
//! parser must never panic on arbitrary input, valid requests must round
//! trip, every response line the server renders must re-parse under the
//! protocol's own flat-JSON parser, and the bounded line reader must
//! honour its size bound on arbitrary byte streams.

use std::io::Cursor;
use std::time::Duration;

use proptest::prelude::*;
use zkvc_runtime::wire::{
    error_line, field, parse_json_object, parse_request, result_line, Json, LineReader,
};
use zkvc_runtime::{Error, JobError, JobResult, JobSpec};

/// Arbitrary (possibly non-ASCII, possibly control-laden) text built from
/// raw bytes; lossy conversion keeps it valid UTF-8 the way a socket read
/// would after the reader's own UTF-8 gate.
fn lossy_text(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..max)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Text drawn from an explicit character set, standing in for the regex
/// strategies of full proptest.
fn charset_text(
    chars: &'static [char],
    size: core::ops::Range<usize>,
) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..chars.len(), size)
        .prop_map(|picks| picks.into_iter().map(|i| chars[i]).collect())
}

const ID_CHARS: &[char] = &['A', 'B', 'C', 'x', 'y', 'z', '0', '1', '5', '9', '_', '-'];
const HOSTILE_KEY_CHARS: &[char] = &['a', 'b', 'c', 'z', '"', '\\'];
const DIGITS: &[char] = &['0', '1', '2', '3', '4', '5', '6', '7', '8', '9'];

/// A synthetic result to render; `tag` is the only field whose content is
/// caller-controlled (request ids echo through it), so that is where the
/// fuzz pressure goes.
fn sample_result(tag: Option<String>, error: Option<JobError>, proof_bytes: Vec<u8>) -> JobResult {
    let (spec, _) = JobSpec::parse("2x3x2:zkvc:g").unwrap();
    let verified = error.is_none();
    JobResult {
        id: 7,
        spec,
        seed: 11,
        proof_bytes,
        verified,
        error,
        cache_hit: true,
        shape_digest: [0xab; 32],
        worker: 1,
        tag,
        queue_wait: Duration::from_micros(1500),
        build_time: Duration::from_micros(2500),
        prove_time: Duration::from_micros(3500),
        verify_time: Duration::from_micros(4500),
        num_constraints: 42,
        session_id: Some(3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary input never panics the request parser; whatever comes
    /// back is a clean accept or a typed rejection.
    #[test]
    fn prop_parse_request_never_panics(line in lossy_text(200)) {
        let _ = parse_request(&line);
    }

    /// Arbitrary *flat-JSON-shaped* garbage (random keys and string
    /// values, quotes and backslashes included) parses or rejects without
    /// panicking, and a recovered id — when the line had one — is itself
    /// a valid JSON token.
    #[test]
    fn prop_parse_request_handles_jsonish_lines(
        key in charset_text(HOSTILE_KEY_CHARS, 1..9),
        value in lossy_text(20),
        id in charset_text(ID_CHARS, 0..13),
    ) {
        let line = format!(
            "{{\"id\": \"{}\", \"{}\": \"{}\"}}",
            id,
            key.replace('\\', "\\\\").replace('"', "\\\""),
            value.replace('\\', "\\\\").replace('"', "\\\""),
        );
        if let Err((_, Some(id_json))) = parse_request(&line) {
            let reparsed = parse_json_object(&format!("{{\"id\": {id_json}}}"));
            prop_assert!(reparsed.is_ok(), "recovered id {id_json:?} must be a token");
        }
    }

    /// A well-formed request round-trips every field.
    #[test]
    fn prop_valid_requests_round_trip(
        a in 1usize..5, n in 1usize..5, b in 1usize..5,
        count in 1usize..9,
        has_seed in any::<bool>(),
        seed_value in any::<u64>(),
        high in any::<bool>(),
        id in charset_text(ID_CHARS, 1..13),
    ) {
        let seed = has_seed.then_some(seed_value);
        let spec = format!("{a}x{n}x{b}:zkvc:s:x{count}");
        let mut line = format!("{{\"spec\": \"{spec}\", \"id\": \"{id}\"");
        if let Some(seed) = seed {
            line.push_str(&format!(", \"seed\": {seed}"));
        }
        line.push_str(&format!(
            ", \"priority\": \"{}\"}}",
            if high { "high" } else { "normal" }
        ));
        let request = parse_request(&line).expect("valid request");
        prop_assert_eq!(request.spec.to_string(), format!("{a}x{n}x{b}:crpc+psq:spartan"));
        prop_assert_eq!(request.count, count);
        prop_assert_eq!(request.seed, seed);
        prop_assert_eq!(request.id_json, Some(format!("\"{id}\"")));
    }

    /// Every rendered result line — including ones echoing hostile tags
    /// full of quotes, backslashes and control characters — re-parses
    /// under the protocol's own flat-JSON parser with the id intact.
    #[test]
    fn prop_result_lines_reparse(
        has_tag in any::<bool>(),
        tag in lossy_text(24),
        failed in any::<bool>(),
        proof in proptest::collection::vec(any::<u8>(), 0..48),
        include_proof in any::<bool>(),
    ) {
        // Ids travel as pre-encoded JSON tokens, exactly like serve
        // builds them from parsed requests.
        let tag_token = has_tag.then(|| Json::Str(tag.clone()).to_token());
        let error = failed.then_some(JobError::Panicked("boom \"quote\" \\ \n".into()));
        let result = sample_result(tag_token.clone(), error, proof);
        let line = result_line(&result, include_proof);
        let fields = parse_json_object(&line)
            .unwrap_or_else(|e| panic!("result line must reparse: {e}: {line}"));
        prop_assert_eq!(
            field(&fields, "type"),
            Some(&Json::Str("result".into()))
        );
        let id = field(&fields, "id").expect("id field");
        match tag_token {
            Some(token) => prop_assert_eq!(id.to_token(), token),
            None => prop_assert_eq!(id, &Json::Null),
        }
        prop_assert_eq!(
            field(&fields, "verified"),
            Some(&Json::Bool(!failed))
        );
    }

    /// Error lines re-parse for arbitrary message content and echo the
    /// recovered id token.
    #[test]
    fn prop_error_lines_reparse(
        message in lossy_text(64),
        has_id in any::<bool>(),
        id_digits in charset_text(DIGITS, 1..7),
    ) {
        let id = has_id.then_some(id_digits);
        let line = error_line(id.as_deref(), &Error::Request(message));
        let fields = parse_json_object(&line)
            .unwrap_or_else(|e| panic!("error line must reparse: {e}: {line}"));
        prop_assert_eq!(field(&fields, "type"), Some(&Json::Str("error".into())));
        prop_assert_eq!(field(&fields, "code"), Some(&Json::Num("2".into())));
        match id {
            Some(id) => prop_assert_eq!(field(&fields, "id"), Some(&Json::Num(id))),
            None => prop_assert_eq!(field(&fields, "id"), Some(&Json::Null)),
        }
    }

    /// The bounded reader never returns a line longer than its bound and
    /// never panics, for arbitrary byte streams (newlines occur naturally
    /// in the full-range byte draw).
    #[test]
    fn prop_line_reader_honours_bound(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut reader = LineReader::new(32);
        let mut input = Cursor::new(bytes);
        let mut guard = 0;
        loop {
            match reader.read_line(&mut input).expect("cursor reads never fail") {
                None => break,
                Some(Ok(line)) => prop_assert!(line.len() <= 32, "line {line:?}"),
                Some(Err(_)) => {}
            }
            guard += 1;
            prop_assert!(guard <= 400, "reader must consume input");
        }
    }
}
