//! Chaos tests: the serving stack under seeded fault injection, per-job
//! deadlines, overload shedding, and graceful drain under pressure.
//!
//! Two kinds of harness:
//!
//! * **In-process** `serve_listener` servers for deadline and shedding
//!   semantics, where the test needs precise control of timing and the
//!   pool (fault schedules stay disarmed — `ZKVC_FAULTS` is process
//!   global and the test binary must not arm it for itself).
//! * **Subprocess** `zkvc serve --listen` servers (via
//!   `CARGO_BIN_EXE_zkvc`) with a `ZKVC_FAULTS` schedule armed in the
//!   child's environment, driven by the retrying client library. The
//!   invariants: no hang, no lost accepted job, exactly one terminal
//!   answer per request id, and the server survives every injected fault
//!   (clean SIGTERM drain, exit 0).

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use zkvc_runtime::{
    run_client, serve_listener, AnyStream, ClientConfig, Error, JobSpec, ListenAddr, NetConfig,
    NetSummary, ServeConfig,
};

/// A spec slow enough in the debug profile (seconds per proof) that a
/// short deadline lands mid-kernel, not between jobs.
const SLOW_SPEC: &str = "16x16x16:zkvc:g";
/// A spec fast enough to saturate-and-release quickly in shed tests.
const FAST_SPEC: &str = "2x2x2:zkvc:s";

struct Server {
    addr: ListenAddr,
    shutdown: Arc<AtomicBool>,
    handle: thread::JoinHandle<Result<NetSummary, Error>>,
}

impl Server {
    fn start_unix(name: &str, config: NetConfig) -> Server {
        let path =
            std::env::temp_dir().join(format!("zkvc-chaos-{}-{name}.sock", std::process::id()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel();
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let addr = ListenAddr::Unix(path);
            thread::spawn(move || {
                serve_listener(&addr, config, shutdown, move |bound| {
                    tx.send(bound.clone()).expect("report bound address");
                })
            })
        };
        let addr = rx.recv().expect("server bound");
        Server {
            addr,
            shutdown,
            handle,
        }
    }

    fn finish(self) -> NetSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .expect("server thread")
            .expect("serve_listener")
    }
}

/// Sends one request line and reads lines until the matching result
/// (skipping key announcements), returning the result line and the wall
/// time from write to read.
fn roundtrip(
    writer: &mut AnyStream,
    reader: &mut BufReader<AnyStream>,
    request: &str,
    id_token: &str,
) -> (String, Duration) {
    let t0 = Instant::now();
    writer
        .write_all(request.as_bytes())
        .and_then(|_| writer.write_all(b"\n"))
        .expect("write request");
    let mut line = String::new();
    loop {
        line.clear();
        assert_ne!(
            reader.read_line(&mut line).expect("read response"),
            0,
            "eof before result for {id_token}"
        );
        let trimmed = line.trim();
        if trimmed.contains("\"type\":\"result\"") && trimmed.contains(id_token) {
            return (trimmed.to_string(), t0.elapsed());
        }
    }
}

#[test]
fn deadline_interrupts_mid_kernel_and_answers_deadline_exceeded() {
    let server = Server::start_unix("deadline", NetConfig::new(ServeConfig::new(2).seed(3)));
    let stream = AnyStream::connect(&server.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // First prove pays for setup and warms the key cache; the second is
    // the uninterrupted warm baseline the deadline run is measured
    // against.
    let warm = format!("{{\"spec\":\"{SLOW_SPEC}\",\"id\":\"warm\"}}");
    let (line, _) = roundtrip(&mut writer, &mut reader, &warm, "\"warm\"");
    assert!(line.contains("\"verified\":true"), "warm-up failed: {line}");
    let base = format!("{{\"spec\":\"{SLOW_SPEC}\",\"id\":\"base\"}}");
    let (line, baseline) = roundtrip(&mut writer, &mut reader, &base, "\"base\"");
    assert!(
        line.contains("\"verified\":true"),
        "baseline failed: {line}"
    );

    // A deadline a small fraction of the measured warm baseline (the
    // prove alone is ~70% of the roundtrip, so a quarter of it lands
    // mid-prove): the proof must stop mid-MSM/mid-FFT (the cancel
    // checkpoints), not run to completion and get discarded afterwards.
    // Deriving from the baseline keeps the test honest on any machine
    // and build profile.
    let deadline_ms = (baseline.as_millis() as u64 / 4).max(15);
    let ddl = format!("{{\"spec\":\"{SLOW_SPEC}\",\"id\":\"ddl\",\"deadline_ms\":{deadline_ms}}}");
    let (line, elapsed) = roundtrip(&mut writer, &mut reader, &ddl, "\"ddl\"");
    assert!(
        line.contains("\"verified\":false")
            && line.contains("\"code\":4")
            && line.contains("\"kind\":\"deadline_exceeded\""),
        "want a deadline_exceeded answer, got: {line}"
    );
    assert!(
        elapsed < baseline / 2,
        "deadline job took {elapsed:?}, not well under the {baseline:?} baseline — \
         the kernel checkpoints did not interrupt it"
    );

    writer.shutdown_write().expect("half-close");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain responses");
    assert!(rest.contains("\"type\":\"summary\""));
    let totals = server.finish();
    assert_eq!(totals.jobs, 3);
    assert_eq!(totals.verified, 2);
    assert_eq!(totals.failed, 1, "the deadline job counts as failed");
}

#[test]
fn sigterm_drain_does_not_outwait_a_deadline() {
    let server = Server::start_unix("drain-ddl", NetConfig::new(ServeConfig::new(1).seed(3)));
    let stream = AnyStream::connect(&server.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // The first prove pays for setup; the second measures the warm
    // uninterrupted prove, so "the drain returned early" below is
    // relative to this machine, not wall-clock guesses.
    let warm = format!("{{\"spec\":\"{SLOW_SPEC}\",\"id\":\"warm\"}}");
    let (_, _) = roundtrip(&mut writer, &mut reader, &warm, "\"warm\"");
    let base = format!("{{\"spec\":\"{SLOW_SPEC}\",\"id\":\"base\"}}");
    let (_, baseline) = roundtrip(&mut writer, &mut reader, &base, "\"base\"");

    // A deadline-bearing job goes in and gets picked up (single worker,
    // empty queue); the connection stays open — no EOF — so the drain is
    // triggered purely by the shutdown flag, with the proof mid-kernel.
    // The deadline is a quarter of the warm baseline (mid-prove, see the
    // deadline test above); SIGTERM lands well before it expires.
    let deadline_ms = (baseline.as_millis() as u64 / 4).max(15);
    writer
        .write_all(
            format!("{{\"spec\":\"{SLOW_SPEC}\",\"id\":\"ddl\",\"deadline_ms\":{deadline_ms}}}\n")
                .as_bytes(),
        )
        .expect("write deadline job");
    thread::sleep(Duration::from_millis((deadline_ms / 3).max(5)));

    let t0 = Instant::now();
    server.shutdown.store(true, Ordering::SeqCst);
    let mut lines = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("read response") == 0 {
            break;
        }
        let trimmed = line.trim().to_string();
        let is_summary = trimmed.contains("\"type\":\"summary\"");
        lines.push(trimmed);
        if is_summary {
            break;
        }
    }
    let drained_in = t0.elapsed();

    let result = lines
        .iter()
        .find(|l| l.contains("\"type\":\"result\"") && l.contains("\"ddl\""))
        .expect("the accepted job still gets its terminal line");
    assert!(
        result.contains("\"kind\":\"deadline_exceeded\""),
        "drain must answer the deadline, not finish the proof: {result}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"type\":\"summary\"")),
        "the session still gets its summary line on drain"
    );
    assert!(
        drained_in < baseline / 2,
        "drain took {drained_in:?}; waiting past the deadline would take \
         about the {baseline:?} baseline"
    );
    let totals = server.finish();
    assert_eq!(totals.jobs, 3);
    assert_eq!(totals.failed, 1);
}

#[test]
fn admission_bound_sheds_and_the_retrying_client_recovers() {
    // One worker, global admission bound of 1: while the slow job below
    // holds the pool, every other request must be answered with a shed
    // error (never queued), and a client with enough retry budget must
    // ride it out and finish clean.
    let server = Server::start_unix(
        "shed",
        NetConfig::new(ServeConfig::new(1).seed(3))
            .admission_bound(Some(1))
            .retry_after_ms(40),
    );

    let stream = AnyStream::connect(&server.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(format!("{{\"spec\":\"{SLOW_SPEC}\",\"id\":\"hog\"}}\n").as_bytes())
        .expect("write slow job");
    // Admission is synchronous with the session's submit loop; give it a
    // beat so in_flight is 1 before the clients arrive.
    thread::sleep(Duration::from_millis(150));

    // An impatient client exhausts its budget while the pool is held and
    // must surface the availability failure as its own error class.
    let spec = JobSpec::parse(FAST_SPEC).expect("spec").0;
    let impatient = ClientConfig::new(server.addr.clone(), spec)
        .count(1)
        .retries(1)
        .backoff_ms(10)
        .retry_seed(9);
    match run_client(&impatient) {
        Err(Error::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 2);
            assert!(last.contains("shed"), "last failure names the shed: {last}");
            assert_eq!(
                Error::RetriesExhausted { attempts, last }.exit_code(),
                3,
                "exhausted retries are an availability failure, exit 3"
            );
        }
        other => panic!("impatient client should exhaust retries, got {other:?}"),
    }

    // A patient client outlasts the hog: shed at first, then admitted.
    let patient = ClientConfig::new(server.addr.clone(), spec)
        .count(2)
        .retries(8)
        .backoff_ms(100)
        .retry_seed(9);
    let report = run_client(&patient).expect("patient client finishes");
    assert!(report.all_ok(), "after retries everything settles clean");
    assert_eq!(report.results(), 2);
    assert!(report.sheds() >= 1, "the first attempt must have been shed");
    assert!(report.attempts() >= 2);

    // The hog was never shed: it drains normally.
    writer.shutdown_write().expect("half-close");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain hog session");
    assert!(rest.contains("\"hog\"") && rest.contains("\"verified\":true"));
    let totals = server.finish();
    assert!(totals.shed >= 3, "impatient (2 attempts) + patient (>=1)");
    assert_eq!(totals.jobs, 3, "shed requests never became jobs");
}

// ---------------------------------------------------------------------
// Subprocess chaos: a real `zkvc serve --listen` with ZKVC_FAULTS armed.
// ---------------------------------------------------------------------

struct ChaosServer {
    child: Child,
    addr: ListenAddr,
    stderr_path: PathBuf,
    sock_path: PathBuf,
}

impl ChaosServer {
    /// Spawns `zkvc serve --listen unix:...` with the given fault
    /// schedule armed in the child environment, waiting until the socket
    /// accepts.
    fn spawn(name: &str, faults: &str, extra_args: &[&str]) -> ChaosServer {
        let tag = format!("{}-{name}", std::process::id());
        let sock_path = std::env::temp_dir().join(format!("zkvc-chaos-proc-{tag}.sock"));
        let stderr_path = std::env::temp_dir().join(format!("zkvc-chaos-log-{tag}.txt"));
        let _ = std::fs::remove_file(&sock_path);
        let stderr_file = std::fs::File::create(&stderr_path).expect("chaos log file");
        let child = Command::new(env!("CARGO_BIN_EXE_zkvc"))
            .args([
                "serve",
                "--listen",
                &format!("unix:{}", sock_path.display()),
                "--workers",
                "2",
                "--seed",
                "3",
                "--key-cache",
                "none",
            ])
            .args(extra_args)
            .env("ZKVC_FAULTS", faults)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(stderr_file)
            .spawn()
            .expect("spawn zkvc serve");
        let addr = ListenAddr::Unix(sock_path.clone());
        // The listener is up once a connect succeeds (the socket file
        // alone can exist before the accept loop runs).
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if AnyStream::connect(&addr).is_ok() {
                break;
            }
            assert!(Instant::now() < deadline, "server never came up");
            thread::sleep(Duration::from_millis(50));
        }
        ChaosServer {
            child,
            addr,
            stderr_path,
            sock_path,
        }
    }

    /// SIGTERMs the child and asserts the drain is clean: exit status 0
    /// within a bounded wait. Returns the chaos log (stderr) contents.
    fn terminate(mut self) -> String {
        let pid = self.child.id().to_string();
        let status = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("send SIGTERM");
        assert!(status.success(), "kill -TERM failed");
        let deadline = Instant::now() + Duration::from_secs(60);
        let status = loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                break status;
            }
            assert!(
                Instant::now() < deadline,
                "server did not drain within 60s of SIGTERM"
            );
            thread::sleep(Duration::from_millis(50));
        };
        assert!(
            status.success(),
            "server must survive every injected fault and drain on SIGTERM, got {status:?}"
        );
        let log = std::fs::read_to_string(&self.stderr_path).unwrap_or_default();
        let _ = std::fs::remove_file(&self.sock_path);
        log
    }
}

/// Checks the per-request invariants on a finished client report: every
/// id answered exactly once, ids unique, nothing from another session.
fn assert_one_terminal_answer_each(report: &zkvc_runtime::ClientReport, expected_jobs: usize) {
    let ids: Vec<&str> = report
        .sessions
        .iter()
        .flat_map(|s| s.jobs.iter().map(|j| j.id.as_str()))
        .collect();
    let unique: HashSet<&str> = ids.iter().copied().collect();
    assert_eq!(
        ids.len(),
        expected_jobs,
        "every accepted request gets exactly one terminal answer"
    );
    assert_eq!(unique.len(), ids.len(), "no id answered twice: {ids:?}");
    assert_eq!(report.id_mismatches(), 0);
    assert!(
        report.sessions.iter().all(|s| s.summary_seen),
        "every session (attempt) still ends with the summary line"
    );
}

#[test]
fn seeded_fault_schedule_is_survived_with_no_lost_jobs() {
    // Four distinct fault points armed in one seeded schedule: stalled
    // reads, short reads, stalled writes, and worker panics at pickup.
    // None of these may lose an accepted job or take the server down.
    let server = ChaosServer::spawn(
        "mixed",
        "seed=7;net.read.delay=0.10@30;net.read.short=0.25;net.write.delay=0.10@20;pool.pickup.panic=0.08",
        &[],
    );

    let spec = JobSpec::parse(FAST_SPEC).expect("spec").0;
    let config = ClientConfig::new(server.addr.clone(), spec)
        .sessions(3)
        .count(6)
        .retries(4)
        .backoff_ms(100)
        .retry_seed(5);
    let report = run_client(&config).expect("client finishes under chaos");

    assert_one_terminal_answer_each(&report, 3 * 6);
    // Injected worker panics surface as honest failed verdicts (kind
    // "panicked"), never as silence; everything that did prove must
    // still verify locally.
    assert_eq!(report.verify_failures(), 0);
    assert_eq!(
        report.results() - report.verdict_failures(),
        report.verified_local(),
        "every verified result's envelope checked out locally"
    );

    let log = server.terminate();
    assert!(
        log.contains("zkvc-fault:"),
        "the armed schedule must actually fire (chaos log):\n{log}"
    );
    assert!(
        log.contains("zkvc serve:"),
        "the drain still prints the totals line:\n{log}"
    );
}

#[test]
fn write_faults_kill_sessions_but_the_retrying_client_recovers() {
    // Only injected write failures: sessions die mid-stream (the server
    // cancels their remaining jobs), and the client's
    // reconnect-and-resubmit path has to deliver every id exactly once
    // anyway.
    let server = ChaosServer::spawn("write-io", "seed=13;net.write.io_error=0.02", &[]);

    let spec = JobSpec::parse(FAST_SPEC).expect("spec").0;
    let config = ClientConfig::new(server.addr.clone(), spec)
        .sessions(2)
        .count(8)
        .retries(8)
        .backoff_ms(100)
        .retry_seed(21);
    let report = run_client(&config).expect("client outlasts the write faults");

    assert_one_terminal_answer_each(&report, 2 * 8);
    assert!(
        report.all_ok(),
        "all proofs verified once resubmitted:\n{}",
        report.render_table()
    );

    let log = server.terminate();
    assert!(log.contains("zkvc serve:"));
}
