//! Tune-profile contract tests: the profile document round-trips through
//! its JSON form for arbitrary decision tables, unusable documents degrade
//! to the static defaults instead of crashing, and — the load-bearing
//! invariant of the whole subsystem — proofs are **bit-identical** under
//! any profile, however extreme, because tuned parameters change only the
//! kernel schedule, never the arithmetic.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::{compile_shape, generate_witness_for};
use zkvc_curve::tune as curve_tune;
use zkvc_ff::tune::FftParams;
use zkvc_runtime::tune::{
    load_profile, persist_profile, startup, ActiveTune, LoadError, ProfileError, TuneProfile,
    TuneSource, PROFILE_VERSION,
};
use zkvc_runtime::{build_statement, JobSpec, KeyCache, ProofEnvelope};

/// Tests that activate profiles mutate the process-global dispatch
/// tables; serialise them so the default multi-threaded test runner
/// doesn't interleave installs.
static GLOBALS: Mutex<()> = Mutex::new(());

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "zkvc-tune-integration-{tag}-{}.json",
        std::process::id()
    ))
}

/// Replicates the in-memory canonical form of a 33-bit decision mask:
/// the parser extends the 2^32 class upward so clamped lookups above it
/// follow the top class, so a round-trippable mask must arrive that way.
fn canonical_mask(bits33: u64) -> u64 {
    let low = bits33 & ((1u64 << 33) - 1);
    if (low >> 32) & 1 == 1 {
        low | (!0u64 << 32)
    } else {
        low
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary decision tables, window overrides, core counts and probe
    /// records survive `to_json` -> `from_json` unchanged.
    #[test]
    fn profile_json_round_trips(
        affine_raw in 0u64..(1u64 << 33),
        par_raw in 0u64..(1u64 << 33),
        cores in 1usize..512,
        window_seed in proptest::collection::vec(0u8..=32u8, 33..34),
        probe_seeds in proptest::collection::vec(0u64..1_000_000_000u64, 0..8),
    ) {
        let mut windows = [0u8; 33];
        windows.copy_from_slice(&window_seed);
        let probes = probe_seeds
            .iter()
            .map(|&s| {
                let choices = ["fallback", "serial", "parallel", "affine:c9"];
                curve_tune::ProbePoint {
                    kernel: if s % 2 == 0 { "msm" } else { "fft" }.to_string(),
                    log2: (s % 33) as u32,
                    choice: choices[(s as usize / 33) % choices.len()].to_string(),
                    median_us: s,
                }
            })
            .collect();
        let profile = TuneProfile {
            version: PROFILE_VERSION,
            cores,
            msm: curve_tune::MsmParams {
                affine_mask: canonical_mask(affine_raw),
                windows,
            },
            fft: FftParams { par_mask: canonical_mask(par_raw) },
            probes,
        };
        let reparsed = TuneProfile::from_json(&profile.to_json());
        prop_assert_eq!(reparsed, Ok(profile));
    }
}

#[test]
fn future_version_profile_falls_back_to_static_not_crash() {
    let _guard = GLOBALS.lock().unwrap();
    let path = temp_path("future-version");
    let doc = TuneProfile::static_profile().to_json().replace(
        &format!("\"version\": {PROFILE_VERSION}"),
        "\"version\": 99",
    );
    std::fs::write(&path, &doc).unwrap();

    // Loading reports the version distinctly from parse garbage...
    match load_profile(&path) {
        Err(LoadError::Profile(ProfileError::Version { found })) => assert_eq!(found, 99),
        other => panic!("expected a version error, got {other:?}"),
    }
    // ...and the startup path degrades to the static defaults (with a
    // warning on stderr) rather than erroring or crashing.
    let active = startup(Some(path.to_str().unwrap())).expect("version skew must not be fatal");
    assert!(matches!(active.source, TuneSource::Static));
    assert_eq!(active.digest(), "static");
    assert_eq!(active.profile, TuneProfile::static_profile());

    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_version_zero_profile_also_falls_back() {
    let _guard = GLOBALS.lock().unwrap();
    let path = temp_path("stale-version");
    let doc = TuneProfile::static_profile()
        .to_json()
        .replace(&format!("\"version\": {PROFILE_VERSION}"), "\"version\": 0");
    std::fs::write(&path, &doc).unwrap();
    let active = startup(Some(path.to_str().unwrap())).expect("stale profile must not be fatal");
    assert!(matches!(active.source, TuneSource::Static));
    std::fs::remove_file(&path).ok();
}

#[test]
fn persisted_profile_reloads_identically() {
    let path = temp_path("persist-reload");
    let mut profile = TuneProfile::static_profile();
    profile.msm.set_affine(9, true);
    profile.msm.set_window(9, 7);
    profile.fft.set_parallel(18, false);
    persist_profile(&profile, &path).unwrap();
    assert_eq!(load_profile(&path).unwrap(), profile);
    std::fs::remove_file(&path).ok();
}

/// Proves `spec_str` exactly the way the pool does (shape compile ->
/// deterministic setup -> witness -> `prove_assignment` with seeded
/// prover randomness) and returns the envelope bytes.
fn proof_bytes(spec_str: &str, seed: u64) -> Vec<u8> {
    let (spec, _) = JobSpec::parse(spec_str).expect("spec parses");
    let backend = spec.backend();
    let statement = build_statement(seed, 0, &spec);
    let shape = compile_shape(statement.as_ref());
    let cache = KeyCache::new();
    let (keys, _hit) = cache.get_or_setup_shape(backend, Arc::new(shape), seed);
    let witness = generate_witness_for(statement.as_ref(), &keys.shape);
    let mut prover_rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let artifacts = backend
        .system()
        .prove_assignment(&keys.prover, &witness, &mut prover_rng);
    let envelope = ProofEnvelope::from_artifacts(&artifacts);
    assert!(
        envelope.verify_with_key(&keys.verifier),
        "{spec_str}: proof must verify"
    );
    envelope.to_bytes()
}

/// The determinism invariant, end to end: three hand-built extreme
/// profiles — every MSM forced through tiny-window batch-affine, every
/// MSM forced onto the projective fallback, and everything-parallel FFT
/// with oversized windows — all produce byte-identical proof envelopes
/// to the static dispatch, on both backends.
#[test]
fn proofs_bit_identical_under_extreme_profiles() {
    let _guard = GLOBALS.lock().unwrap();

    let all_affine_tiny_windows = {
        let mut p = TuneProfile::static_profile();
        p.msm.affine_mask = !0u64;
        p.msm.windows = [3u8; 33];
        p
    };
    let all_fallback = {
        let mut p = TuneProfile::static_profile();
        p.msm.affine_mask = 0;
        p.msm.windows = [0u8; 33];
        p.fft.par_mask = 0;
        p
    };
    let all_parallel_wide_windows = {
        let mut p = TuneProfile::static_profile();
        p.msm.affine_mask = !0u64;
        p.msm.windows = [12u8; 33];
        p.fft.par_mask = !0u64;
        p
    };

    for spec in ["6x5x4:zkvc:g", "6x5x4:zkvc:s", "4x4x4:vanilla:g"] {
        let baseline = proof_bytes(spec, 42);
        for (label, profile) in [
            ("all-affine/c3", &all_affine_tiny_windows),
            ("all-fallback", &all_fallback),
            ("all-parallel/c12", &all_parallel_wide_windows),
        ] {
            let previous = curve_tune::activate(profile);
            let tuned = proof_bytes(spec, 42);
            curve_tune::restore(previous);
            assert_eq!(
                tuned, baseline,
                "{spec}: proof under {label} profile must be bit-identical to static"
            );
        }
    }
}

/// `calibrate_activate_persist` writes a document `startup` accepts, and
/// the active digest matches what the profile hashes to.
#[test]
fn calibrated_profile_persists_and_reactivates() {
    let _guard = GLOBALS.lock().unwrap();
    let path = temp_path("calibrate-persist");
    let config = curve_tune::ProbeConfig {
        msm_logs: vec![6],
        fft_logs: vec![6],
        reps: 1,
        seed: 1,
    };
    let active = zkvc_runtime::tune::calibrate_activate_persist(&config, Some(&path));
    assert!(matches!(active.source, TuneSource::Calibrated(Some(_))));

    let reloaded: ActiveTune = startup(Some(path.to_str().unwrap())).expect("reload");
    assert_eq!(reloaded.profile, active.profile);
    assert_eq!(reloaded.digest(), active.digest());

    // Leave the static defaults installed for whatever test runs next.
    curve_tune::activate(&TuneProfile::static_profile());
    std::fs::remove_file(&path).ok();
}
