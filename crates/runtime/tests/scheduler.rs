//! Scheduler-semantics integration tests for the work-stealing pool:
//! cancellation drains promptly, a panicking job is contained as a
//! recorded result (not a process abort), verdicts are bit-identical
//! across scheduling policies and to the serial baseline, and skewed
//! batches complete under priorities + stealing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;
use zkvc_runtime::{
    prove_batch, prove_batch_serial, prove_batch_with_policy, JobError, JobOptions, JobSpec,
    KeyCache, ModelPreset, PoolConfig, ProvingPool, SchedulerPolicy,
};

/// Cancelling a loaded pool must drain the backlog as recorded
/// `Cancelled` results without proving it: every submitted job is
/// accounted for in the report, at most the in-flight jobs ran setup, and
/// the drain completes promptly.
#[test]
fn cancellation_drains_promptly_and_accountably() {
    // 12 *distinct* shapes so every really-executed job costs a cache
    // miss — the miss counter then tells us exactly how many jobs escaped
    // cancellation.
    let pool = ProvingPool::new(1);
    for n in 0..12 {
        pool.submit(
            JobSpec::new(2, 2 + n, 2).with_backend(Backend::Spartan),
            JobOptions::new(),
        );
    }
    pool.cancel();
    let t0 = Instant::now();
    let report = pool.join();
    let drain_time = t0.elapsed();

    assert_eq!(report.results.len(), 12, "every job is accounted for");
    assert!(!report.all_verified());
    assert!(
        report.cancelled_jobs() >= 9,
        "cancellation must catch the backlog, only {} cancelled",
        report.cancelled_jobs()
    );
    // At most the job(s) already in flight when cancel landed ran setup.
    assert!(
        report.cache.misses <= 3,
        "drained jobs must not prove ({} setups ran)",
        report.cache.misses
    );
    assert!(
        drain_time < Duration::from_secs(10),
        "drain took {drain_time:?}"
    );
    // Cancelled results carry the error marker and no proof bytes.
    for r in report.results.iter().filter(|r| r.error.is_some()) {
        assert_eq!(r.error, Some(JobError::Cancelled));
        assert!(r.proof_bytes.is_empty());
        assert!(!r.verified);
    }
}

/// A job that panics (zero-dimension matmul: the builder asserts) becomes
/// a recorded `Panicked` result; the worker thread survives and completes
/// the rest of the batch, and `join` reports no worker-thread losses.
#[test]
fn panicking_job_is_contained_not_fatal() {
    let poison = JobSpec::MatMul {
        dims: (0, 0, 0),
        strategy: Strategy::Vanilla,
        backend: Backend::Spartan,
        public_outputs: true,
    };
    let pool = ProvingPool::new(1);
    pool.submit(poison, JobOptions::new());
    pool.submit(
        JobSpec::new(2, 2, 2).with_backend(Backend::Spartan),
        JobOptions::new(),
    );
    pool.submit(
        JobSpec::new(2, 2, 2).with_backend(Backend::Spartan),
        JobOptions::new(),
    );
    let report = pool.join();

    assert_eq!(report.results.len(), 3);
    assert_eq!(report.worker_panics, 0, "the panic was caught in the job");
    let bad = &report.results[0];
    match &bad.error {
        Some(JobError::Panicked(msg)) => {
            assert!(
                msg.contains("dimensions must be positive"),
                "panic payload preserved, got {msg:?}"
            );
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }
    assert!(!bad.verified);
    // The same worker kept going: both good jobs proved and verified.
    assert!(report.results[1].verified && report.results[2].verified);
    assert_eq!(report.panicked_jobs(), 1);
    let table = report.render_table("contained");
    assert!(table.contains("panic"), "{table}");

    // The deterministic report renders the failure with a stable kind.
    let json = report.render_report_json();
    assert!(json.contains("\"error\": \"panicked\""), "{json}");
}

/// Dropping a pool holding a poison job must not abort the process either
/// (the drop path drains without proving, so the panic never even fires).
#[test]
fn abandoned_pool_with_poison_job_is_safe() {
    let poison = JobSpec::MatMul {
        dims: (0, 0, 0),
        strategy: Strategy::Vanilla,
        backend: Backend::Spartan,
        public_outputs: true,
    };
    let pool = ProvingPool::new(1);
    for _ in 0..4 {
        pool.submit(poison, JobOptions::new());
    }
    drop(pool); // must return, not abort
}

/// The acceptance property behind the whole scheduler rewrite: proofs and
/// verdicts are a function of `(seed, job id)` only. Work-stealing,
/// single-queue, different worker counts, and the serial baseline must
/// agree bit-for-bit on a skewed batch (one model block + many small
/// matmuls).
#[test]
fn skewed_batch_verdicts_identical_across_schedulers_and_serial() {
    let mut specs = vec![JobSpec::model(ModelPreset::MixerBlock).with_backend(Backend::Spartan)];
    for _ in 0..6 {
        specs.push(JobSpec::new(2, 2, 2).with_backend(Backend::Spartan));
    }
    let seed = 0x5EED;

    let ws = prove_batch(&specs, 3, seed);
    let sq = prove_batch_with_policy(&specs, 3, seed, SchedulerPolicy::SingleQueue);
    let serial = prove_batch_serial(&specs, seed);

    assert!(ws.all_verified(), "work-stealing batch verifies");
    assert!(sq.all_verified(), "single-queue batch verifies");
    assert!(serial.all_verified(), "serial batch verifies");

    // Pool-vs-pool: byte-identical proofs job by job.
    for (a, b) in ws.results.iter().zip(sq.results.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.proof_bytes, b.proof_bytes, "job {} differs", a.id);
    }
    // Pool-vs-serial: identical verdicts and statement bindings (serial
    // envelopes embed the vk, so raw bytes legitimately differ; the
    // proof payload inside must agree via the public inputs).
    for (p, s) in ws.results.iter().zip(serial.results.iter()) {
        assert_eq!((p.id, p.verified), (s.id, s.verified));
        let pe = zkvc_runtime::ProofEnvelope::from_bytes(&p.proof_bytes).unwrap();
        let se = zkvc_runtime::ProofEnvelope::from_bytes(&s.proof_bytes).unwrap();
        assert_eq!(pe.public_inputs, se.public_inputs, "job {}", p.id);
    }
    // And the machine-readable reports agree on everything they print
    // except the key-table section (serial one-shot envelopes carry their
    // keys inline, so serial reports have an empty table by design).
    assert_eq!(ws.render_report_json(), sq.render_report_json());
}

/// Work-stealing spreads a skewed backlog across workers: with the model
/// job submitted first, the small matmuls behind it still complete and
/// the batch verifies end-to-end under priorities + stealing.
#[test]
fn skewed_batch_completes_with_priorities() {
    let mut specs = vec![JobSpec::model(ModelPreset::BertBlock).with_backend(Backend::Spartan)];
    for _ in 0..4 {
        specs.push(JobSpec::new(2, 3, 2).with_backend(Backend::Spartan));
    }
    let report = prove_batch(&specs, 2, 77);
    assert!(report.all_verified());
    assert_eq!(report.results.len(), 5);
    // Small matmuls are high priority, the model job is normal.
    assert_eq!(
        specs[0].priority(),
        zkvc_runtime::Priority::Normal,
        "model blocks are bulk work"
    );
    assert_eq!(specs[1].priority(), zkvc_runtime::Priority::High);
}

/// A shared cache survives the pool that used it: a second pool on the
/// same cache re-proves the same shapes without any new setup (the
/// cross-batch reuse `zkvc serve` relies on).
#[test]
fn cache_stays_warm_across_pools() {
    let cache = Arc::new(KeyCache::with_seed(3));
    let spec = JobSpec::new(3, 2, 3).with_backend(Backend::Spartan);

    let pool = ProvingPool::with_cache(2, 3, Arc::clone(&cache));
    pool.submit(spec, JobOptions::new());
    pool.submit(spec, JobOptions::new());
    let first = pool.join();
    assert!(first.all_verified());
    assert_eq!(first.cache.misses, 1);

    let pool = ProvingPool::with_cache(2, 3, Arc::clone(&cache));
    pool.submit(spec, JobOptions::new());
    pool.submit(spec, JobOptions::new());
    let second = pool.join();
    assert!(second.all_verified());
    assert_eq!(
        second.cache.misses, 1,
        "no new setup: the second batch is O(prove)"
    );
    assert_eq!(second.cache.hits, 3);
}

/// Explicit-config pools honour the queue bound end-to-end: a bound-1
/// pool still completes a deep backlog correctly (submitters just block),
/// proving backpressure composes with real proving work.
#[test]
fn bounded_queue_pool_completes_deep_backlogs() {
    let pool = ProvingPool::configured(
        PoolConfig::new(2).seed(5).queue_bound(1),
        Arc::new(KeyCache::with_seed(5)),
        None,
    );
    for _ in 0..6 {
        pool.submit(
            JobSpec::new(2, 2, 2).with_backend(Backend::Spartan),
            JobOptions::new(),
        );
    }
    let report = pool.join();
    assert_eq!(report.results.len(), 6);
    assert!(report.all_verified());
    assert_eq!(report.cache.misses, 1);
}
