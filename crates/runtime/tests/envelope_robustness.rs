//! Proof-envelope robustness: round-trip properties over randomly shaped
//! statements, plus rejection of truncated, bit-flipped and garbage bytes.
//! The decoder must never panic, never accept a malformed envelope, and
//! never let a mutated envelope verify.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::matmul::{MatMulBuilder, Strategy};
use zkvc_core::{Backend, VerifierKey};
use zkvc_runtime::ProofEnvelope;

/// A small proved statement with its envelope bytes and verifier key.
fn proved_envelope(
    backend: Backend,
    a: usize,
    n: usize,
    b: usize,
    seed: u64,
) -> (Vec<u8>, VerifierKey) {
    let mut rng = StdRng::seed_from_u64(seed);
    let job = MatMulBuilder::new(a, n, b)
        .strategy(Strategy::CrpcPsq)
        .public_outputs(true)
        .build_random(&mut rng);
    let system = backend.system();
    let (pk, vk) = system.setup(&job, &mut rng);
    let artifacts = system.prove(&pk, &job, &mut rng);
    (ProofEnvelope::from_artifacts(&artifacts).to_bytes(), vk)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Round trip: decode(encode(e)) is stable, preserves the backend tag
    /// and public inputs, and still verifies — for random statement shapes
    /// on both backends.
    #[test]
    fn prop_envelope_roundtrip(
        a in 1usize..3, n in 1usize..4, b in 1usize..3, seed in 0u64..1000
    ) {
        for backend in Backend::ALL {
            let (bytes, vk) = proved_envelope(backend, a, n, b, seed);
            let envelope = ProofEnvelope::from_bytes(&bytes).expect("decodes");
            prop_assert_eq!(envelope.backend, backend);
            prop_assert_eq!(envelope.public_inputs.len(), a * b);
            prop_assert!(envelope.verify_with_key(&vk));
            prop_assert_eq!(envelope.to_bytes(), bytes);
        }
    }

    /// Random garbage never decodes (and never panics). A random prefix
    /// collision with the 8-byte magic is astronomically unlikely; bytes
    /// that do start with the magic still die in the structured parser.
    #[test]
    fn prop_garbage_rejected(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert!(ProofEnvelope::from_bytes(&bytes).is_none());
        let mut with_magic = b"ZKVCPRF1".to_vec();
        with_magic.extend_from_slice(&bytes);
        if let Some(envelope) = ProofEnvelope::from_bytes(&with_magic) {
            // Decoding garbage is only acceptable if re-encoding is
            // canonical — and even then it is just bytes, not a proof.
            prop_assert_eq!(envelope.to_bytes(), with_magic);
        }
    }
}

#[test]
fn every_truncation_is_rejected() {
    for backend in Backend::ALL {
        let (bytes, _vk) = proved_envelope(backend, 2, 2, 2, 41);
        for len in 0..bytes.len() {
            assert!(
                ProofEnvelope::from_bytes(&bytes[..len]).is_none(),
                "{backend:?}: truncation to {len}/{} bytes decoded",
                bytes.len()
            );
        }
        // Trailing padding must be rejected too: the parsers consume the
        // buffer exactly.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(
            ProofEnvelope::from_bytes(&padded).is_none(),
            "{backend:?}: padded envelope decoded"
        );
    }
}

#[test]
fn every_bit_flip_is_rejected_or_fails_verification() {
    // Exhaustive over byte positions (one flipped bit per position): the
    // mutated envelope must fail to decode, fail to verify, or — the one
    // benign case — decode to a proof that is *semantically identical*
    // (the wire format has a few dead bytes: coordinate bytes of a
    // point-at-infinity are ignored by its decoder). What can never happen
    // is a mutated envelope verifying as a *different statement*: flips in
    // the public-input region must always be fatal. Nothing panics.
    for backend in Backend::ALL {
        let (bytes, vk) = proved_envelope(backend, 1, 2, 1, 42);
        let original = ProofEnvelope::from_bytes(&bytes).expect("baseline decodes");
        // magic(8) + count(4) + one 32-byte public input + tag(1)
        let payload_start = 8 + 4 + 32 + 1;
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 1 << (pos % 8);
            let Some(envelope) = ProofEnvelope::from_bytes(&mutated) else {
                continue;
            };
            if pos < payload_start {
                assert!(
                    !envelope.verify_with_key(&vk),
                    "{backend:?}: header/publics flip at byte {pos} still verifies"
                );
            } else if envelope.verify_with_key(&vk) {
                assert_eq!(
                    envelope.public_inputs, original.public_inputs,
                    "{backend:?}: payload flip at byte {pos} verified as a different statement"
                );
            }
        }
    }
}

#[test]
fn truncated_and_padded_groth16_key_table_entries_rejected() {
    // The once-per-batch vk bytes path has the same strictness guarantees
    // as the envelopes themselves.
    let mut rng = StdRng::seed_from_u64(43);
    let job = MatMulBuilder::new(2, 2, 2)
        .strategy(Strategy::Vanilla)
        .public_outputs(true)
        .build_random(&mut rng);
    let (_pk, vk) = Backend::Groth16.system().setup(&job, &mut rng);
    let VerifierKey::Groth16(vk) = vk else {
        unreachable!()
    };
    let bytes = vk.to_bytes();
    assert!(zkvc_groth16::VerifyingKey::from_bytes(&bytes).is_some());
    assert!(zkvc_groth16::VerifyingKey::from_bytes(&bytes[..bytes.len() - 1]).is_none());
}
