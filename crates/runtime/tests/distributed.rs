//! Distributed-proving integration tests: a real `serve_listener`
//! coordinator with real `zkvc worker` subprocesses attached.
//!
//! The load-bearing properties:
//!
//! * **Exactly-once under worker death** — SIGKILL a worker mid-batch and
//!   every client-assigned id still gets exactly one answer (the dead
//!   worker's leased jobs re-queue onto the survivors/local pool; nothing
//!   is lost, nothing is double-answered).
//! * **Placement is invisible to clients** — two same-seed runs, one with
//!   remote workers and one without, render byte-identical deterministic
//!   reports: proofs do not depend on *where* they were produced.

use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use zkvc_runtime::{
    run_client, serve_listener, ClientConfig, Error, JobSpec, ListenAddr, NetConfig, NetSummary,
    ServeConfig,
};

struct Server {
    addr: ListenAddr,
    shutdown: Arc<AtomicBool>,
    handle: thread::JoinHandle<Result<NetSummary, Error>>,
}

impl Server {
    fn start_unix(name: &str, config: NetConfig) -> Server {
        let path =
            std::env::temp_dir().join(format!("zkvc-dist-{}-{name}.sock", std::process::id()));
        let addr = ListenAddr::Unix(path);
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel();
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                serve_listener(&addr, config, shutdown, move |bound| {
                    tx.send(bound.clone()).expect("report bound address");
                })
            })
        };
        let addr = rx.recv().expect("server bound");
        Server {
            addr,
            shutdown,
            handle,
        }
    }

    fn finish(self) -> NetSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .expect("server thread")
            .expect("serve_listener")
    }
}

/// Spawns a `zkvc worker` subprocess attached to `addr`.
fn spawn_worker(addr: &ListenAddr, capacity: usize) -> Child {
    Command::new(env!("CARGO_BIN_EXE_zkvc"))
        .args([
            "worker",
            "--connect",
            &addr.to_string(),
            "--capacity",
            &capacity.to_string(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn zkvc worker")
}

/// Polls until the coordinator has registered `n` live remote workers, by
/// watching the client-visible effect: workers prove jobs. Cheaper: give
/// the registration a grace window — registration is a single line each
/// way on a local socket.
fn settle() {
    thread::sleep(Duration::from_millis(400));
}

#[test]
fn killed_worker_jobs_requeue_with_exactly_one_answer_per_id() {
    // Small local pool so remote workers carry real load and a mid-batch
    // kill is guaranteed to strand leased jobs.
    let server = Server::start_unix(
        "kill",
        NetConfig::new(ServeConfig::new(1).seed(5)).session_bound(64),
    );
    let mut w1 = spawn_worker(&server.addr, 2);
    let mut w2 = spawn_worker(&server.addr, 2);
    settle();

    let (spec, _) = JobSpec::parse("6x6x6:zkvc:g").expect("spec");
    let config = ClientConfig::new(server.addr.clone(), spec)
        .count(24)
        .seed(Some(5))
        .retries(0);

    // Drive the batch from one thread; SIGKILL a worker shortly after the
    // batch starts, while its slots are leased.
    let killer = {
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(700));
            w1.kill().expect("kill worker 1");
            let _ = w1.wait();
        })
    };
    let t0 = Instant::now();
    let report = run_client(&config).expect("client run");
    killer.join().expect("killer thread");

    // Exactly-once: every id answered once, every proof verified. The
    // client library independently asserts id-scoping (an unknown or
    // duplicate id is recorded as a mismatch).
    assert!(
        report.all_ok(),
        "all jobs must verify after worker death (elapsed {:?}): {report:?}",
        t0.elapsed()
    );
    assert_eq!(report.results(), 24, "one answer per id, no extras");
    assert_eq!(report.id_mismatches(), 0, "no duplicate or unknown ids");

    let _ = w2.kill();
    let _ = w2.wait();
    let totals = server.finish();
    assert_eq!(totals.jobs, 24);
    assert_eq!(totals.failed, 0);
    assert!(
        totals.remote_workers >= 2,
        "both workers must have registered: {totals:?}"
    );
}

#[test]
fn remote_placement_is_byte_invisible_in_reports() {
    let (spec, _) = JobSpec::parse("4x4x4:zkvc:g").expect("spec");

    // Run 1: coordinator with two remote workers.
    let server = Server::start_unix(
        "det-remote",
        NetConfig::new(ServeConfig::new(2).seed(9)).session_bound(64),
    );
    let mut w1 = spawn_worker(&server.addr, 2);
    let mut w2 = spawn_worker(&server.addr, 2);
    settle();
    let config = ClientConfig::new(server.addr.clone(), spec)
        .count(10)
        .seed(Some(9))
        .retries(0);
    let with_workers = run_client(&config).expect("client run (remote)");
    assert!(with_workers.all_ok(), "{with_workers:?}");
    let _ = w1.kill();
    let _ = w1.wait();
    let _ = w2.kill();
    let _ = w2.wait();
    server.finish();

    // Run 2: same seed, local pool only.
    let server = Server::start_unix(
        "det-local",
        NetConfig::new(ServeConfig::new(2).seed(9)).session_bound(64),
    );
    let config = ClientConfig::new(server.addr.clone(), spec)
        .count(10)
        .seed(Some(9))
        .retries(0);
    let local_only = run_client(&config).expect("client run (local)");
    assert!(local_only.all_ok(), "{local_only:?}");
    server.finish();

    assert_eq!(
        with_workers.render_report_json(),
        local_only.render_report_json(),
        "same-seed reports must be byte-identical regardless of placement"
    );
}
