//! End-to-end tests of `zkvc serve`: a resident process fed JSON-lines
//! requests over stdin must stream responses, survive malformed and
//! oversized requests (answering them with exit-code-2-class errors
//! in-stream), keep its key cache warm across requests, and emit proofs
//! that `zkvc verify` accepts offline.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn zkvc_serve(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_zkvc"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("zkvc serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write requests");
    // Dropping stdin closes it: EOF is the orderly shutdown signal.
    child.wait_with_output().expect("serve exits")
}

fn tmp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zkvc-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
        .collect()
}

/// Extracts the string value of `"field":"..."` from a response line.
fn json_str_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    let end = start + line[start..].find('"')?;
    Some(&line[start..end])
}

#[test]
fn serve_round_trips_requests_and_survives_bad_input() {
    let oversized = format!(
        "{{\"spec\": \"2x3x2:zkvc:s\", \"id\": \"{}\"}}",
        "z".repeat(400)
    );
    let input = format!(
        concat!(
            "{{\"spec\": \"2x3x2:zkvc:s\", \"id\": \"alpha\"}}\n",
            "this is not json\n",
            "{{\"spec\": \"2x3x2:zkvc:s\", \"id\": \"beta\", \"priority\": \"high\"}}\n",
            "{{\"spec\": \"7x7\", \"id\": 42}}\n",
            "{oversized}\n",
            "{{\"spec\": \"2x3x2:zkvc:s\", \"id\": \"gamma\"}}\n",
        ),
        oversized = oversized
    );
    let out = zkvc_serve(
        &[
            "--workers",
            "2",
            "--seed",
            "7",
            "--max-request",
            "256",
            "--key-cache",
            "none",
        ],
        &input,
    );
    assert!(
        out.status.success(),
        "serve must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();

    assert!(lines[0].contains("\"type\":\"ready\""), "{stdout}");
    assert!(
        lines.last().unwrap().contains("\"type\":\"summary\""),
        "{stdout}"
    );

    // Three good requests -> three verified results, ids echoed.
    for id in ["alpha", "beta", "gamma"] {
        let line = lines
            .iter()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")) && l.contains("\"type\":\"result\""))
            .unwrap_or_else(|| panic!("no result for {id}: {stdout}"));
        assert!(line.contains("\"verified\":true"), "{line}");
    }
    // Same shape + same seed three times: the cache was warm twice.
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"cache_hit\":true"))
            .count(),
        2,
        "{stdout}"
    );

    // Malformed JSON, bad spec (id echoed as a number), and the oversized
    // line are each answered with a code-2 error — and the server lived on
    // to prove "gamma" afterwards.
    let errors: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"error\""))
        .collect();
    assert_eq!(errors.len(), 3, "{stdout}");
    assert!(errors.iter().all(|l| l.contains("\"code\":2")), "{stdout}");
    assert!(
        errors.iter().any(|l| l.contains("\"id\":42")),
        "bad-spec error echoes the numeric id: {stdout}"
    );
    assert!(
        errors.iter().any(|l| l.contains("request too large")),
        "{stdout}"
    );
    assert!(lines.last().unwrap().contains("\"rejected\":3"), "{stdout}");
}

#[test]
fn serve_proofs_verify_offline_and_keys_stream_once() {
    // Two same-shape Groth16 requests: one key line, two results; the
    // proof bytes round-trip through `zkvc verify` exactly as if they had
    // come from `zkvc prove --spec S --seed 9`.
    let input = concat!(
        "{\"spec\": \"2x2x2:vanilla:g\", \"id\": \"p1\", \"seed\": 9}\n",
        "{\"spec\": \"2x2x2:vanilla:g\", \"id\": \"p2\", \"seed\": 9}\n",
    );
    let out = zkvc_serve(
        &["--workers", "2", "--seed", "9", "--key-cache", "none"],
        input,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();

    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"type\":\"key\""))
            .count(),
        1,
        "one vk per (shape, seed): {stdout}"
    );

    let result = lines
        .iter()
        .find(|l| l.contains("\"type\":\"result\"") && l.contains("\"id\":\"p1\""))
        .expect("result for p1");
    assert!(result.contains("\"verified\":true"), "{result}");
    let proof_hex = json_str_field(result, "proof_hex").expect("proof bytes included");

    let proof_path = tmp_file("serve-proof.bin");
    std::fs::write(&proof_path, unhex(proof_hex)).unwrap();
    let verify = Command::new(env!("CARGO_BIN_EXE_zkvc"))
        .args([
            "verify",
            "--spec",
            "2x2x2:vanilla:g",
            "--seed",
            "9",
            "--key-cache",
            "none",
            "--in",
            proof_path.to_str().unwrap(),
        ])
        .output()
        .expect("zkvc verify runs");
    assert!(
        verify.status.success(),
        "serve proof must verify offline: {}{}",
        String::from_utf8_lossy(&verify.stdout),
        String::from_utf8_lossy(&verify.stderr)
    );
    let verify_out = String::from_utf8_lossy(&verify.stdout);
    assert!(verify_out.contains("statement binding: OK"), "{verify_out}");

    // Wrong seed: the same proof must be rejected (exit 1) — serve
    // proofs are statement-bound like every other proof in the stack.
    let reject = Command::new(env!("CARGO_BIN_EXE_zkvc"))
        .args([
            "verify",
            "--spec",
            "2x2x2:vanilla:g",
            "--seed",
            "10",
            "--key-cache",
            "none",
            "--in",
            proof_path.to_str().unwrap(),
        ])
        .output()
        .expect("zkvc verify runs");
    assert_eq!(reject.status.code(), Some(1));
}

#[test]
fn serve_usage_errors_exit_2() {
    // Bad flag values are invocation errors, before any serving starts.
    let out = zkvc_serve(&["--workers", "0"], "");
    assert_eq!(out.status.code(), Some(2));
    let out = zkvc_serve(&["--queue-bound", "none"], "");
    assert_eq!(out.status.code(), Some(2));
    let out = zkvc_serve(&["--frobnicate"], "");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn serve_empty_session_summarises_cleanly() {
    let out = zkvc_serve(&["--workers", "1", "--key-cache", "none"], "\n\n");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"type\":\"ready\""), "{stdout}");
    assert!(
        stdout.contains("\"jobs\":0") && stdout.contains("\"rejected\":0"),
        "{stdout}"
    );
}
