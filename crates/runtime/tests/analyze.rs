//! The static-analysis surface, end to end: every lint rule firing on a
//! committed known-bad fixture, every shipping spec analyzing clean, the
//! `zkvc analyze` CLI's reports / gate / baseline waivers, the serve
//! pre-flight (`--analyze-on-compile`), and the eager `ZKVC_FAULTS`
//! startup validation.

use std::io::Cursor;
use std::path::PathBuf;
use std::process::{Command, Output};

use zkvc_ff::{Fr, PrimeField};
use zkvc_r1cs::{CompiledShape, ConstraintSystem, LinearCombination, Rule, Severity};
use zkvc_runtime::analysis::{analyze_spec, analyze_specs, default_sweep, gate_count, Baseline};
use zkvc_runtime::{serve, JobSpec, ServeConfig};

fn zkvc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_zkvc"))
        .args(args)
        .output()
        .expect("zkvc binary runs")
}

fn tmp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zkvc-analyze-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// One known-bad constraint system per rule: the analyzer must flag each
/// with exactly the expected rule (plus whatever the bug implies).
#[test]
fn every_rule_has_a_firing_fixture() {
    type Fixture = (Rule, fn() -> (ConstraintSystem<Fr>, usize));

    let fixtures: Vec<Fixture> = vec![
        (Rule::UnconstrainedWitness, || {
            // A range-check gadget that allocates a limb and forgets to
            // use it: the limb can take any value.
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = cs.alloc_witness(Fr::from_u64(3));
            let _forgotten_limb = cs.alloc_witness(Fr::from_u64(1));
            let y = cs.alloc_instance(Fr::from_u64(9));
            cs.enforce(x.into(), x.into(), y.into());
            (cs, 1)
        }),
        (Rule::UnboundPublic, || {
            // The `:private` miscompile: the statement declares an output
            // the shape never allocates, so nothing binds the claim.
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = cs.alloc_witness(Fr::from_u64(3));
            let y = cs.alloc_witness(Fr::from_u64(9));
            cs.enforce(x.into(), x.into(), y.into());
            (cs, 1) // declares 1 public output, allocates 0
        }),
        (Rule::ConstantViolation, || {
            // An unsatisfiable row: no witness exists, every prove fails.
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = cs.alloc_witness(Fr::from_u64(3));
            let y = cs.alloc_instance(Fr::from_u64(9));
            cs.enforce(x.into(), x.into(), y.into());
            cs.enforce(
                LinearCombination::constant(Fr::from_u64(2)),
                LinearCombination::constant(Fr::from_u64(3)),
                LinearCombination::constant(Fr::from_u64(7)),
            );
            (cs, 1)
        }),
        (Rule::MissingBooleanity, || {
            // A selector consumed as boolean whose pinning row was
            // dropped: b = 2 would leak 2·k through the select.
            let mut cs = ConstraintSystem::<Fr>::new();
            let b = cs.alloc_witness(Fr::from_u64(1));
            let out = cs.alloc_instance(Fr::from_u64(5));
            cs.enforce(
                b.into(),
                LinearCombination::constant(Fr::from_u64(5)),
                out.into(),
            );
            cs.expect_boolean(b);
            (cs, 1)
        }),
        (Rule::DeadConstraint, || {
            // A vacuous row: holds for every assignment, pins nothing.
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = cs.alloc_witness(Fr::from_u64(3));
            let y = cs.alloc_instance(Fr::from_u64(9));
            cs.enforce(x.into(), x.into(), y.into());
            cs.enforce(
                LinearCombination::zero(),
                LinearCombination::zero(),
                LinearCombination::zero(),
            );
            (cs, 1)
        }),
        (Rule::DuplicateConstraint, || {
            // The same product row twice (A/B commuted): one is wasted.
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = cs.alloc_witness(Fr::from_u64(3));
            let w = cs.alloc_witness(Fr::from_u64(2));
            let y = cs.alloc_instance(Fr::from_u64(6));
            cs.enforce(x.into(), w.into(), y.into());
            cs.enforce(w.into(), x.into(), y.into());
            (cs, 1)
        }),
    ];

    for (rule, build) in fixtures {
        let (cs, declared) = build();
        let report = CompiledShape::from_cs(&cs).analyze(declared);
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "{rule} fixture did not fire: {:?}",
            report.findings
        );
        assert_eq!(
            report.findings.iter().map(|f| f.severity).max(),
            Some(rule.severity()),
            "{rule} fixture fired something worse than itself"
        );
    }
}

/// The acceptance bar: every shipping preset x strategy x backend
/// analyzes clean — zero findings of any severity.
#[test]
fn shipping_sweep_is_clean() {
    let results = analyze_specs(&default_sweep(), 0);
    assert_eq!(results.len(), 32);
    for r in &results {
        assert!(
            r.report.is_clean(),
            "{} has findings: {:#?}",
            r.spec,
            r.report.findings
        );
    }
    assert_eq!(
        gate_count(&results, Severity::Info, &Baseline::default()),
        0
    );
}

#[test]
fn private_matmul_spec_is_deny_flagged() {
    let (spec, _) = JobSpec::parse("4x4x4:zkvc:g:private").unwrap();
    let report = analyze_spec(&spec, 0);
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == Rule::UnboundPublic && f.severity == Severity::Deny));
}

#[test]
fn analyze_cli_passes_clean_specs_and_rejects_private_ones() {
    let out = zkvc(&[
        "analyze",
        "--spec",
        "4x4x4:zkvc:g",
        "--spec",
        "2x3x2:vanilla:s",
    ]);
    assert!(
        out.status.success(),
        "clean analyze failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");

    // The known-bad spec gates with exit 1 and names the rule.
    let out = zkvc(&["analyze", "--spec", "4x4x4:zkvc:g:private"]);
    assert_eq!(out.status.code(), Some(1), "deny findings exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unbound-public"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("analysis failed"), "{stderr}");

    // Same spec under --deny info still fails; a clean spec never does.
    let out = zkvc(&["analyze", "--spec", "2x3x2:vanilla:s", "--deny", "info"]);
    assert!(out.status.success());
    let out = zkvc(&["analyze", "--spec", "2x3x2:vanilla:s", "--deny", "bogus"]);
    assert_eq!(out.status.code(), Some(2), "bad --deny is a usage error");
}

#[test]
fn analyze_cli_emits_json_reports() {
    let out = zkvc(&["analyze", "--spec", "2x3x2:vanilla:s", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("{\"type\":\"analysis\""), "{stdout}");
    assert!(stdout.contains("\"total_findings\":0"), "{stdout}");
    assert!(stdout.contains("\"worst\":null"), "{stdout}");

    let out = zkvc(&["analyze", "--spec", "4x4x4:zkvc:g:private", "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\":\"unbound-public\""), "{stdout}");
    assert!(stdout.contains("\"worst\":\"deny\""), "{stdout}");
}

#[test]
fn analyze_cli_baseline_waives_reviewed_findings() {
    let baseline = tmp_file("waivers.txt");
    std::fs::write(
        &baseline,
        "# reviewed: shape-only binding is intentional for this probe spec\n\
         4x4x4:crpc+psq:groth16:private unbound-public\n",
    )
    .unwrap();
    let out = zkvc(&[
        "analyze",
        "--spec",
        "4x4x4:zkvc:g:private",
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "waived finding must not gate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(waived)"), "{stdout}");
    assert!(stdout.contains("0 finding(s), 1 waived"), "{stdout}");

    // A malformed baseline is a usage error, not a silent no-gate.
    std::fs::write(&baseline, "too many tokens here\n").unwrap();
    let out = zkvc(&[
        "analyze",
        "--spec",
        "2x3x2:vanilla:s",
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn serve_preflight_rejects_deny_shapes_in_stream() {
    let input = concat!(
        "{\"spec\": \"2x3x2:vanilla:s:private\", \"id\": \"bad\"}\n",
        "{\"spec\": \"2x3x2:vanilla:s\", \"id\": \"good\"}\n",
        "{\"spec\": \"2x3x2:vanilla:s:private\", \"id\": \"bad-again\"}\n",
    );
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf::default();
    let summary = serve(
        Cursor::new(input.as_bytes().to_vec()),
        buf.clone(),
        ServeConfig::new(1).analyze_on_compile(true),
    )
    .unwrap();
    assert_eq!(summary.jobs, 1, "only the clean spec proves");
    assert_eq!(summary.verified, 1);
    assert_eq!(summary.rejected, 2, "both bad requests answered in-stream");

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("\"type\":\"error\"")
                && l.contains("\"code\":2")
                && l.contains("pre-flight"))
            .count(),
        2,
        "{text}"
    );
    assert!(text.contains("unbound-public"), "{text}");
    assert!(
        text.contains("\"id\":\"good\"") && text.contains("\"verified\":true"),
        "{text}"
    );
}

#[test]
fn malformed_fault_schedule_is_a_startup_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_zkvc"))
        .args(["analyze", "--spec", "2x3x2:vanilla:s"])
        .env("ZKVC_FAULTS", "net.read.io_error=not-a-number")
        .output()
        .expect("zkvc binary runs");
    assert_eq!(out.status.code(), Some(2), "bad schedule is a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ZKVC_FAULTS"), "{stderr}");
    assert!(stderr.contains("bad probability"), "{stderr}");

    // A well-formed schedule passes validation and the command runs.
    let out = Command::new(env!("CARGO_BIN_EXE_zkvc"))
        .args(["analyze", "--spec", "2x3x2:vanilla:s"])
        .env("ZKVC_FAULTS", "seed=1;net.read.io_error=0.0")
        .output()
        .expect("zkvc binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
