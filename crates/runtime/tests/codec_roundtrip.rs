//! Canonical-encoding round-trips for the shapes and witnesses the
//! distributed protocol ships between coordinator and workers.
//!
//! The coordinator sends a [`CompiledShape`] to each worker exactly once
//! per digest; the worker re-derives keys from the decoded bytes. That is
//! only sound if (a) encode/decode is lossless for every shape the fleet
//! can produce — all model presets, all matmul strategies, random
//! dimensions — and (b) a *decoded* shape proves bit-identically to the
//! original under the same deterministic setup and prover randomness
//! (digest stability is key-cache compatibility, so any drift would split
//! the fleet's key material silently).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::{compile_shape, generate_witness_for};
use zkvc_core::matmul::{MatMulBuilder, Strategy};
use zkvc_core::Backend;
use zkvc_ff::Fr;
use zkvc_r1cs::{CompiledShape, WitnessAssignment};
use zkvc_runtime::codec::{
    decode_shape, decode_shape_expecting, decode_witness, encode_shape, encode_witness,
};
use zkvc_runtime::{build_statement, JobSpec, KeyCache, ModelPreset, ProofEnvelope};

/// Field-by-field equality for shapes (no `PartialEq` on `CompiledShape`
/// itself: equality is a test concern, not an API promise).
fn assert_shapes_equal(original: &CompiledShape<Fr>, decoded: &CompiledShape<Fr>) {
    assert_eq!(original.digest, decoded.digest, "digest must survive");
    assert_eq!(original.matrices.a, decoded.matrices.a);
    assert_eq!(original.matrices.b, decoded.matrices.b);
    assert_eq!(original.matrices.c, decoded.matrices.c);
    assert_eq!(original.expected_boolean, decoded.expected_boolean);
    assert_eq!(original.provided_boolean, decoded.provided_boolean);
}

/// Proves `spec` at `seed` using keys set up from `shape`, exactly the way
/// a pool worker or remote worker does, and returns the envelope bytes.
fn prove_with_shape(shape: CompiledShape<Fr>, spec: &JobSpec, seed: u64) -> Vec<u8> {
    let backend = spec.backend();
    let statement = build_statement(seed, 0, spec);
    let cache = KeyCache::new();
    let (keys, _hit) = cache.get_or_setup_shape(backend, std::sync::Arc::new(shape), seed);
    let witness = generate_witness_for(statement.as_ref(), &keys.shape);
    let mut prover_rng = StdRng::seed_from_u64(seed ^ 0u64.wrapping_mul(0xD1B5_4A32_D192_ED03));
    let artifacts = backend
        .system()
        .prove_assignment(&keys.prover, &witness, &mut prover_rng);
    let bytes = ProofEnvelope::from_artifacts(&artifacts)
        .without_vk()
        .to_bytes();
    let envelope = ProofEnvelope::from_bytes(&bytes).expect("own envelope must parse");
    assert!(
        envelope.verify_with_key(&keys.verifier),
        "proof from shape must verify"
    );
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shape and witness encodings are lossless for random matmul
    /// statements across every strategy and output binding.
    #[test]
    fn prop_matmul_shape_and_witness_roundtrip(
        a in 1usize..5,
        n in 1usize..5,
        b in 1usize..5,
        seed in 0u64..500,
        strategy_idx in 0usize..4,
        public_idx in 0usize..2,
    ) {
        let strategy = Strategy::ALL[strategy_idx];
        let builder = MatMulBuilder::new(a, n, b)
            .strategy(strategy)
            .public_outputs(public_idx == 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = builder.build_circuit_random(&mut rng);

        let shape: CompiledShape<Fr> = compile_shape(&circuit);
        let bytes = encode_shape(&shape);
        let decoded: CompiledShape<Fr> = decode_shape(&bytes).expect("decode own encoding");
        prop_assert_eq!(shape.digest, decoded.digest);
        prop_assert_eq!(&shape.matrices.a, &decoded.matrices.a);
        prop_assert_eq!(&shape.matrices.b, &decoded.matrices.b);
        prop_assert_eq!(&shape.matrices.c, &decoded.matrices.c);
        prop_assert_eq!(&shape.expected_boolean, &decoded.expected_boolean);
        prop_assert_eq!(&shape.provided_boolean, &decoded.provided_boolean);
        // The digest-checked decode path (what workers actually run).
        let checked: CompiledShape<Fr> =
            decode_shape_expecting(&bytes, &shape.digest).expect("digest-checked decode");
        prop_assert_eq!(checked.digest, shape.digest);

        let witness: WitnessAssignment<Fr> = generate_witness_for(&circuit, &shape);
        let wbytes = encode_witness(&witness);
        let wdec: WitnessAssignment<Fr> = decode_witness(&wbytes).expect("decode own witness");
        prop_assert_eq!(&witness.instance, &wdec.instance);
        prop_assert_eq!(&witness.witness, &wdec.witness);
        // The decoded pair still satisfies the decoded shape.
        prop_assert!(decoded.is_satisfied(&wdec));
    }
}

/// Every model preset's shape survives the canonical encoding, on both
/// backends, and decoded shapes keep their witnesses satisfiable.
#[test]
fn preset_shapes_roundtrip_on_all_backends() {
    for preset in ModelPreset::ALL {
        for backend in Backend::ALL {
            let spec = JobSpec::model(preset).with_backend(backend);
            let statement = build_statement(11, 0, &spec);
            let shape: CompiledShape<Fr> = compile_shape(statement.as_ref());
            let bytes = encode_shape(&shape);
            let decoded: CompiledShape<Fr> =
                decode_shape_expecting(&bytes, &shape.digest).expect("decode preset shape");
            assert_shapes_equal(&shape, &decoded);
            let witness = generate_witness_for(statement.as_ref(), &decoded);
            assert!(
                decoded.is_satisfied(&witness),
                "{spec}: witness must satisfy the decoded shape"
            );
        }
    }
}

/// Digest stability is proof compatibility: keys set up from a shape that
/// crossed the byte boundary produce *bit-identical* proofs to keys set
/// up from the in-memory original — the exact property the distributed
/// protocol relies on when a remote worker proves against shipped bytes
/// while the coordinator's local pool proves against its own compilation.
#[test]
fn decoded_shapes_prove_bit_identically() {
    let mut specs: Vec<JobSpec> = Strategy::ALL
        .iter()
        .map(|&s| JobSpec::new(4, 4, 4).with_strategy(s))
        .collect();
    specs.push(JobSpec::model(ModelPreset::MixerBlock).with_backend(Backend::Spartan));
    for spec in specs {
        let seed = 23;
        let statement = build_statement(seed, 0, &spec);
        let shape: CompiledShape<Fr> = compile_shape(statement.as_ref());
        let shipped: CompiledShape<Fr> =
            decode_shape_expecting(&encode_shape(&shape), &shape.digest)
                .expect("decode shipped shape");
        let local = prove_with_shape(shape, &spec, seed);
        let remote = prove_with_shape(shipped, &spec, seed);
        assert_eq!(
            local, remote,
            "{spec}: decoded shape must prove bit-identically"
        );
    }
}
