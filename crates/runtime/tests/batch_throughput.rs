//! End-to-end acceptance tests for the batch-proving service: pooled
//! proving with key caching must beat N independent one-shot `prove` calls
//! by at least 2x, and serialized proofs must survive a bytes round trip on
//! both backends.

use std::time::Instant;

use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;
use zkvc_runtime::{prove_batch, prove_batch_serial, JobSpec, ProofEnvelope};

/// Proving 8 same-shape Groth16 jobs through the pool + cache must be at
/// least 2x faster end-to-end than 8 independent `Backend::prove` calls.
///
/// The margin is wide by construction: the serial path re-runs the CRS
/// setup per job, so even on a single hardware thread the measured ratio is
/// ~3-4x (and higher with real parallelism). A shared CI box would have to
/// be pathologically noisy to drop below 2x.
#[test]
fn pooled_batch_at_least_2x_faster_than_one_shot_proving() {
    let specs = vec![
        JobSpec::new(5, 5, 5)
            .with_strategy(Strategy::Vanilla)
            .with_backend(Backend::Groth16);
        8
    ];

    let t0 = Instant::now();
    let pooled = prove_batch(&specs, 4, 0xBA7C4);
    let pooled_wall = t0.elapsed();

    let t1 = Instant::now();
    let serial = prove_batch_serial(&specs, 0xBA7C4);
    let serial_wall = t1.elapsed();

    assert!(pooled.all_verified(), "pooled proofs must verify");
    assert!(serial.all_verified(), "serial proofs must verify");
    assert_eq!(pooled.cache.misses, 1, "one setup for the whole batch");
    assert_eq!(pooled.cache.hits, 7);

    let speedup = serial_wall.as_secs_f64() / pooled_wall.as_secs_f64();
    println!(
        "pooled: {:.3}s  serial: {:.3}s  speedup: {speedup:.2}x",
        pooled_wall.as_secs_f64(),
        serial_wall.as_secs_f64()
    );
    assert!(
        speedup >= 2.0,
        "pool+cache must be >=2x faster than one-shot proving, got {speedup:.2}x \
         (pooled {pooled_wall:?}, serial {serial_wall:?})"
    );
}

/// Serialized proofs from both backends verify after crossing a byte
/// boundary — including from a different thread, as a remote verifier
/// process would see them.
#[test]
fn serialized_proofs_verify_after_bytes_roundtrip_on_both_backends() {
    for backend in Backend::ALL {
        let specs = vec![JobSpec::new(3, 4, 3).with_backend(backend); 2];
        let report = prove_batch(&specs, 2, 17);
        assert!(report.all_verified(), "{backend:?}");

        // Pool envelopes are keyless; the batch ships each distinct
        // Groth16 vk exactly once in the report's key table.
        if backend == Backend::Groth16 {
            assert_eq!(report.key_table.len(), 1, "one shape, one vk");
        } else {
            assert!(
                report.key_table.is_empty(),
                "spartan keys have no wire form"
            );
        }

        for result in &report.results {
            // The pool already verified through the envelope; re-verify the
            // raw bytes on a fresh thread with no shared state except the
            // bytes themselves plus (for Groth16) the batch key table, as a
            // remote consumer of a batch would.
            let bytes = result.proof_bytes.clone();
            let decoded = std::thread::spawn(move || ProofEnvelope::from_bytes(&bytes))
                .join()
                .expect("decoder thread");
            let envelope = decoded.expect("envelope decodes");
            assert_eq!(envelope.backend, backend);

            // A flipped byte in the middle of the payload must never
            // produce a valid envelope that still verifies (checked
            // end-to-end on Groth16, whose key travels in the table).
            if backend == Backend::Groth16 {
                assert!(
                    envelope.embedded_vk().is_none(),
                    "pool envelopes must not embed the vk"
                );
                let vk = zkvc_groth16::VerifyingKey::from_bytes(&report.key_table[0].vk_bytes)
                    .expect("key table entry decodes");
                let key = zkvc_core::VerifierKey::Groth16(vk);
                assert!(envelope.verify_with_key(&key));

                let mut tampered = result.proof_bytes.clone();
                let mid = tampered.len() / 2;
                tampered[mid] ^= 0x01;
                if let Some(bad) = ProofEnvelope::from_bytes(&tampered) {
                    assert!(!bad.verify_with_key(&key), "tampered envelope verified");
                }
            }
        }
    }
}
