//! Integration tests for the socket listener: concurrent sessions, id
//! scoping, per-connection fault isolation, disconnect cancellation, and
//! graceful drain — all against a real `serve_listener` on a Unix socket
//! (plus one TCP round trip), with raw `AnyStream` clients so the tests
//! exercise the wire, not the client library.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use zkvc_runtime::{
    serve_listener, AnyStream, Error, ListenAddr, NetConfig, NetSummary, ServeConfig,
};

struct Server {
    addr: ListenAddr,
    shutdown: Arc<AtomicBool>,
    handle: thread::JoinHandle<Result<NetSummary, Error>>,
}

impl Server {
    /// Starts a listener on a fresh Unix socket; returns once it is
    /// accepting (the `on_bound` callback has fired).
    fn start_unix(name: &str, config: NetConfig) -> Server {
        let path =
            std::env::temp_dir().join(format!("zkvc-net-{}-{name}.sock", std::process::id()));
        Server::start(ListenAddr::Unix(path), config)
    }

    fn start(addr: ListenAddr, config: NetConfig) -> Server {
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel();
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                serve_listener(&addr, config, shutdown, move |bound| {
                    tx.send(bound.clone()).expect("report bound address");
                })
            })
        };
        let addr = rx.recv().expect("server bound");
        Server {
            addr,
            shutdown,
            handle,
        }
    }

    /// Raises the shutdown flag and returns the aggregate totals.
    fn finish(self) -> NetSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .expect("server thread")
            .expect("serve_listener")
    }
}

/// Reads whole response lines until (and including) the summary line.
fn read_until_summary(reader: &mut impl BufRead) -> Vec<String> {
    let mut lines = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("read response") == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let is_summary = trimmed.contains("\"type\":\"summary\"");
        lines.push(trimmed.to_string());
        if is_summary {
            break;
        }
    }
    lines
}

fn count(lines: &[String], needle: &str) -> usize {
    lines.iter().filter(|l| l.contains(needle)).count()
}

#[test]
fn concurrent_sessions_keep_ids_scoped() {
    // 8 concurrent clients, each with its own id space, multiplexed onto
    // one pool + one warm cache. Every client must get back exactly its
    // own ids and nothing from any neighbour.
    let server = Server::start_unix(
        "scoped",
        NetConfig::new(ServeConfig::new(4).seed(7)).session_bound(16),
    );
    let addr = server.addr.clone();
    let clients: Vec<_> = (0..8)
        .map(|k| {
            let addr = addr.clone();
            thread::spawn(move || {
                let stream = AnyStream::connect(&addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone");
                for i in 0..3 {
                    writeln!(writer, "{{\"spec\":\"2x2x2:zkvc:s\",\"id\":\"t{k}-{i}\"}}")
                        .expect("send request");
                }
                writer.shutdown_write().expect("half-close");
                let lines = read_until_summary(&mut BufReader::new(stream));
                (k, lines)
            })
        })
        .collect();

    let mut session_ids = HashSet::new();
    for client in clients {
        let (k, lines) = client.join().expect("client thread");
        assert_eq!(count(&lines, "\"type\":\"ready\""), 1, "{lines:?}");
        assert_eq!(count(&lines, "\"type\":\"result\""), 3, "{lines:?}");
        assert_eq!(count(&lines, "\"verified\":true"), 3, "{lines:?}");
        assert_eq!(count(&lines, "\"type\":\"summary\""), 1, "{lines:?}");
        // All three of this session's ids came back; no foreign ids did.
        for i in 0..3 {
            assert_eq!(count(&lines, &format!("\"id\":\"t{k}-{i}\"")), 1);
        }
        for other in 0..8 {
            if other != k {
                assert_eq!(
                    count(&lines, &format!("\"id\":\"t{other}-")),
                    0,
                    "session {k} saw ids of session {other}: {lines:?}"
                );
            }
        }
        // The handshake names this connection's distinct server-side
        // session id; the summary repeats it.
        let ready = &lines[0];
        let sid = ready
            .split("\"session\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .expect("session id in ready line")
            .to_string();
        assert!(
            lines
                .last()
                .unwrap()
                .contains(&format!("\"session\":{sid}")),
            "{lines:?}"
        );
        session_ids.insert(sid);
    }
    assert_eq!(session_ids.len(), 8, "session ids must be distinct");

    let totals = server.finish();
    assert_eq!(totals.sessions, 8);
    assert_eq!(totals.jobs, 24);
    assert_eq!(totals.verified, 24);
    assert_eq!(totals.failed, 0);
    assert_eq!(totals.disconnected, 0);
}

#[test]
fn garbage_poisons_only_its_own_connection() {
    let server = Server::start_unix(
        "garbage",
        NetConfig::new(ServeConfig::new(2).max_request_bytes(256)),
    );

    // Session A: garbage, an oversized line, and one valid request.
    let a = {
        let addr = server.addr.clone();
        thread::spawn(move || {
            let stream = AnyStream::connect(&addr).expect("connect");
            let mut writer = stream.try_clone().expect("clone");
            writeln!(writer, "this is not json").unwrap();
            writeln!(
                writer,
                "{{\"spec\":\"2x2x2:zkvc:s\",\"id\":\"{}\"}}",
                "x".repeat(400)
            )
            .unwrap();
            writeln!(writer, "{{\"spec\":\"2x2x2:zkvc:s\",\"id\":\"a-ok\"}}").unwrap();
            writer.shutdown_write().unwrap();
            read_until_summary(&mut BufReader::new(stream))
        })
    };
    // Session B: only valid requests.
    let b = {
        let addr = server.addr.clone();
        thread::spawn(move || {
            let stream = AnyStream::connect(&addr).expect("connect");
            let mut writer = stream.try_clone().expect("clone");
            writeln!(writer, "{{\"spec\":\"2x2x2:zkvc:s\",\"id\":\"b-ok\"}}").unwrap();
            writer.shutdown_write().unwrap();
            read_until_summary(&mut BufReader::new(stream))
        })
    };

    let a = a.join().expect("session a");
    let b = b.join().expect("session b");

    // A's bad lines are answered in A's stream with code 2; its valid
    // request still proves — one bad line never kills the connection.
    assert_eq!(count(&a, "\"type\":\"error\""), 2, "{a:?}");
    assert_eq!(count(&a, "\"code\":2"), 2, "{a:?}");
    assert_eq!(count(&a, "\"id\":\"a-ok\""), 1, "{a:?}");
    assert_eq!(count(&a, "\"verified\":true"), 1, "{a:?}");
    assert!(a.last().unwrap().contains("\"rejected\":2"), "{a:?}");

    // B saw none of it.
    assert_eq!(count(&b, "\"type\":\"error\""), 0, "{b:?}");
    assert_eq!(count(&b, "\"verified\":true"), 1, "{b:?}");
    assert!(b.last().unwrap().contains("\"rejected\":0"), "{b:?}");

    let totals = server.finish();
    assert_eq!(totals.jobs, 2);
    assert_eq!(totals.verified, 2);
    assert_eq!(totals.rejected, 2);
}

#[test]
fn disconnect_mid_batch_cancels_inflight_and_server_survives() {
    // One worker, a deep batch of slow Groth16 jobs, and a client that
    // vanishes right after the handshake. The first result write hits the
    // dead socket, the session's remaining jobs are cancelled (drained
    // unproved, not ground through), and the server keeps serving other
    // clients.
    let server = Server::start_unix(
        "disconnect",
        NetConfig::new(ServeConfig::new(1).queue_bound(64)).session_bound(32),
    );

    {
        let stream = AnyStream::connect(&server.addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writeln!(
            writer,
            "{{\"spec\":\"8x8x8:vanilla:g:x12\",\"id\":\"doomed\"}}"
        )
        .unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("ready line");
        assert!(line.contains("\"type\":\"ready\""), "{line}");
        // Drop both halves: the peer is gone mid-batch.
    }

    // A second client gets served while (and after) the wreckage drains.
    let stream = AnyStream::connect(&server.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writeln!(writer, "{{\"spec\":\"2x2x2:zkvc:s\",\"id\":\"survivor\"}}").unwrap();
    writer.shutdown_write().unwrap();
    let lines = read_until_summary(&mut BufReader::new(stream));
    assert_eq!(count(&lines, "\"id\":\"survivor\""), 1, "{lines:?}");
    assert_eq!(count(&lines, "\"verified\":true"), 1, "{lines:?}");

    let totals = server.finish();
    assert_eq!(totals.sessions, 2);
    assert_eq!(totals.disconnected, 1);
    // Every accepted job is accounted for: proved before the pipe broke,
    // or drained as cancelled after it.
    assert_eq!(totals.jobs, 13);
    assert_eq!(totals.verified + totals.failed, 13);
    assert!(
        totals.failed >= 1,
        "at least one queued job of the vanished client must be cancelled, got {totals:?}"
    );
    assert!(
        totals.verified >= 1,
        "the survivor's job proved: {totals:?}"
    );
}

#[test]
fn shutdown_drains_every_accepted_job_and_summarises_open_sessions() {
    // A client with its connection still open (no EOF sent) when the
    // server is told to shut down: the session must flush every accepted
    // job's result and its summary line before the listener exits.
    let server = Server::start_unix(
        "drain",
        NetConfig::new(ServeConfig::new(1)).session_bound(16),
    );

    let stream = AnyStream::connect(&server.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    for i in 0..6 {
        writeln!(writer, "{{\"spec\":\"4x4x4:vanilla:g\",\"id\":\"d-{i}\"}}").unwrap();
    }
    // Note: no shutdown_write — the connection stays open; only the
    // server-side shutdown ends this session.
    thread::sleep(Duration::from_millis(300)); // let intake parse all six
    let reader = thread::spawn(move || read_until_summary(&mut BufReader::new(stream)));

    let totals = server.finish();
    let lines = reader.join().expect("reader thread");
    assert_eq!(count(&lines, "\"type\":\"result\""), 6, "{lines:?}");
    assert_eq!(count(&lines, "\"verified\":true"), 6, "{lines:?}");
    assert_eq!(count(&lines, "\"type\":\"summary\""), 1, "{lines:?}");
    assert!(lines.last().unwrap().contains("\"jobs\":6"), "{lines:?}");
    assert_eq!(totals.jobs, 6);
    assert_eq!(totals.verified, 6);
    drop(writer);
}

#[test]
fn idle_sessions_are_reaped_but_busy_ones_are_not() {
    let server = Server::start_unix(
        "idle",
        NetConfig::new(ServeConfig::new(1)).idle_timeout(Some(Duration::from_secs(1))),
    );

    // This client connects and then says nothing: reaped after ~1s with
    // an error line and its summary.
    let stream = AnyStream::connect(&server.addr).expect("connect");
    let lines = read_until_summary(&mut BufReader::new(stream));
    assert_eq!(count(&lines, "\"type\":\"error\""), 1, "{lines:?}");
    assert!(lines.iter().any(|l| l.contains("idle")), "{lines:?}");
    assert_eq!(count(&lines, "\"type\":\"summary\""), 1, "{lines:?}");

    let totals = server.finish();
    assert_eq!(totals.reaped_idle, 1);
}

#[test]
fn tcp_transport_round_trips_on_an_ephemeral_port() {
    let server = Server::start(
        ListenAddr::parse("tcp:127.0.0.1:0").unwrap(),
        NetConfig::new(ServeConfig::new(1)),
    );
    // The bound address resolved the ephemeral port.
    let ListenAddr::Tcp(hostport) = &server.addr else {
        panic!("expected tcp addr, got {}", server.addr);
    };
    assert!(!hostport.ends_with(":0"), "resolved port: {hostport}");

    let stream = AnyStream::connect(&server.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writeln!(writer, "{{\"spec\":\"2x2x2:zkvc:s\",\"id\":\"tcp-1\"}}").unwrap();
    writer.shutdown_write().unwrap();
    let lines = read_until_summary(&mut BufReader::new(stream));
    assert_eq!(count(&lines, "\"id\":\"tcp-1\""), 1, "{lines:?}");
    assert_eq!(count(&lines, "\"verified\":true"), 1, "{lines:?}");

    let totals = server.finish();
    assert_eq!(totals.jobs, 1);
    assert_eq!(totals.verified, 1);
}

#[test]
fn client_driver_verifies_against_streamed_keys_across_sessions() {
    // The library client against a real server: 4 concurrent sessions of
    // Groth16 jobs, envelopes re-verified locally against the streamed
    // key lines (the client never derives a Groth16 key itself).
    use zkvc_runtime::{run_client, ClientConfig, JobSpec};

    let server = Server::start_unix(
        "driver",
        NetConfig::new(ServeConfig::new(2).seed(3)).session_bound(16),
    );
    let (spec, _) = JobSpec::parse("3x3x3:zkvc:g").unwrap();
    let report = run_client(
        &ClientConfig::new(server.addr.clone(), spec)
            .sessions(4)
            .count(3)
            .seed(Some(11)),
    )
    .expect("client run");
    assert!(report.all_ok(), "{report:?}");
    assert_eq!(report.results(), 12);
    assert_eq!(report.verified_local(), 12);
    assert_eq!(report.verify_failures(), 0);
    assert_eq!(report.id_mismatches(), 0);
    assert!(report.latency_ms(50.0) > 0.0);
    // The deterministic report carries one record per job with a real
    // digest; all twelve proofs are the same statement, so all digests
    // (and the two same-seed runs CI diffs) agree.
    let json = report.render_report_json();
    assert_eq!(json.matches("\"proof_sha256\":\"").count(), 12);

    let totals = server.finish();
    assert_eq!(totals.sessions, 4);
    assert_eq!(totals.verified, 12);
}
