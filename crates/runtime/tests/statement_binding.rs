//! Statement-level binding acceptance tests: proving `Y = X * W` with
//! public outputs and then verifying against a tampered `Y'` must fail for
//! both backends and all four circuit strategies — keyed verification,
//! envelope round trips and the pool's rebuilt-statement check included.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::{Circuit, ProofSystem};
use zkvc_core::matmul::{MatMulBuilder, Strategy};
use zkvc_core::Backend;
use zkvc_ff::{Field, Fr};
use zkvc_runtime::{build_statement, JobSpec, KeyCache, ProofEnvelope};

fn public_job(strategy: Strategy) -> zkvc_core::MatMulJob {
    let x = vec![vec![2i64, -3, 5], vec![7, 1, -4]];
    let w = vec![vec![6i64, -2], vec![3, 8], vec![-1, 9]];
    MatMulBuilder::new(2, 3, 2)
        .strategy(strategy)
        .public_outputs(true)
        .build_integers(&x, &w)
}

#[test]
fn tampered_y_fails_for_both_backends_and_all_strategies() {
    let mut rng = StdRng::seed_from_u64(71);
    for backend in Backend::ALL {
        let system: &dyn ProofSystem = backend.system();
        for strategy in Strategy::ALL {
            let job = public_job(strategy);
            assert_eq!(job.public_outputs().len(), 4, "Y is 2x2");
            let (pk, vk) = system.setup(&job, &mut rng);
            let artifacts = system.prove(&pk, &job, &mut rng);
            assert!(
                system.verify(&vk, &artifacts),
                "honest {backend:?}/{strategy:?}"
            );
            // Tamper each output cell in turn: every one must be bound.
            for idx in 0..4 {
                let mut tampered = artifacts.clone();
                tampered.public_inputs[idx] += Fr::one();
                assert!(
                    !system.verify(&vk, &tampered),
                    "{backend:?}/{strategy:?} accepted tampered y[{idx}]"
                );
            }
        }
    }
}

#[test]
fn fold_preserving_forgery_fails_for_crpc_public_outputs() {
    // CRPC folds Y as `sum Z^{i*b+j} y_ij` with a *public* Z, so
    // `y_0 += Z, y_1 -= 1` preserves the fold. An attacker holding an
    // honest proof could swap in such a Y' if the fold were the only thing
    // binding the outputs; the per-cell binding constraints must reject it
    // on both backends, for both CRPC strategies.
    let mut rng = StdRng::seed_from_u64(73);
    for backend in Backend::ALL {
        let system = backend.system();
        for strategy in [Strategy::Crpc, Strategy::CrpcPsq] {
            let job = public_job(strategy);
            let (pk, vk) = system.setup(&job, &mut rng);
            let artifacts = system.prove(&pk, &job, &mut rng);
            assert!(system.verify(&vk, &artifacts), "{backend:?}/{strategy:?}");

            let mut forged = artifacts.clone();
            forged.public_inputs[0] += job.z; // coeff Z^0: fold += Z
            forged.public_inputs[1] -= Fr::one(); // coeff Z^1: fold -= Z
            assert_ne!(forged.public_inputs, artifacts.public_inputs);
            assert!(
                !system.verify(&vk, &forged),
                "{backend:?}/{strategy:?} accepted a fold-preserving forged Y"
            );
        }
    }
}

#[test]
fn tampered_y_fails_through_the_envelope() {
    // The same property across the wire format: decode, swap a public
    // input, re-encode, decode again — still rejected.
    let mut rng = StdRng::seed_from_u64(72);
    for backend in Backend::ALL {
        let system = backend.system();
        let job = public_job(Strategy::CrpcPsq);
        let (pk, vk) = system.setup(&job, &mut rng);
        let artifacts = system.prove(&pk, &job, &mut rng);

        let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
        let mut envelope = ProofEnvelope::from_bytes(&bytes).expect("decodes");
        assert!(envelope.verify_with_key(&vk), "{backend:?}");

        envelope.public_inputs[2] += Fr::one();
        let tampered =
            ProofEnvelope::from_bytes(&envelope.to_bytes()).expect("tampered still decodes");
        assert!(
            !tampered.verify_with_key(&vk),
            "{backend:?} accepted a tampered envelope Y"
        );
    }
}

#[test]
fn replayed_proof_for_same_shape_but_different_y_is_rejected() {
    // Two pool statements with the same spec share a circuit shape (and
    // keys) but bind different Y matrices. A proof for statement 0 must
    // not pass as a proof for statement 1: the cryptographic check accepts
    // it (same shape, honest proof) but the statement-binding comparison
    // the pool and `zkvc verify` perform must reject it.
    for backend in Backend::ALL {
        let spec = JobSpec::new(3, 2, 3).with_backend(backend);
        let seed = 9;
        let s0 = build_statement(seed, 0, &spec);
        let s1 = build_statement(seed, 1, &spec);
        assert_eq!(s0.shape_digest(), s1.shape_digest(), "{backend:?}");
        assert_ne!(s0.public_outputs(), s1.public_outputs(), "{backend:?}");

        let cache = KeyCache::with_seed(seed);
        let (keys, _) = cache.get_or_setup_circuit(backend, s0.as_ref());
        let mut rng = StdRng::seed_from_u64(5);
        let artifacts = backend.system().prove(&keys.prover, s0.as_ref(), &mut rng);
        let envelope =
            ProofEnvelope::from_bytes(&ProofEnvelope::from_artifacts(&artifacts).to_bytes())
                .expect("decodes");

        // Shape-level check alone would accept the replay...
        assert!(envelope.verify_with_key(&keys.verifier), "{backend:?}");
        // ...statement binding is what rejects it.
        assert_eq!(envelope.public_inputs, s0.public_outputs());
        assert_ne!(
            envelope.public_inputs,
            s1.public_outputs(),
            "{backend:?} replay would go unnoticed"
        );
    }
}

#[test]
fn private_jobs_still_prove_but_bind_nothing() {
    // The pre-redesign behaviour survives behind `:private` / the builder
    // flag: no public outputs, shape-level binding only.
    let spec = JobSpec::new(2, 2, 2)
        .with_backend(Backend::Spartan)
        .with_private_outputs();
    assert!(!spec.binds_outputs());
    let statement = build_statement(3, 0, &spec);
    assert!(statement.public_outputs().is_empty());
    let cache = KeyCache::new();
    let (keys, _) = cache.get_or_setup_circuit(spec.backend(), statement.as_ref());
    let mut rng = StdRng::seed_from_u64(6);
    let artifacts = spec
        .backend()
        .system()
        .prove(&keys.prover, statement.as_ref(), &mut rng);
    assert!(spec.backend().system().verify(&keys.verifier, &artifacts));
}
