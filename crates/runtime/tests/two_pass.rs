//! Compile-once / prove-many pipeline equivalence and digest stability.
//!
//! The two-pass pipeline (witness-free shape pass + witness pass) must be
//! observably identical to the legacy single pass: same matrices, same
//! public outputs, same shape digests — across random matmul dimensions,
//! strategies, output binding and every model preset — and proofs produced
//! through the legacy eager pipeline must keep verifying under keys the
//! two-pass cache derives (digests key the deterministic CRS, so digest
//! stability *is* proof compatibility).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::{circuit_shape_digest, compile_shape, generate_witness_for, Circuit};
use zkvc_core::matmul::{MatMulBuilder, Strategy};
use zkvc_core::Backend;
use zkvc_nn::circuit::{ModelCircuit, ModelStatement};
use zkvc_runtime::{build_statement, JobSpec, KeyCache, ModelPreset, ProofEnvelope};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two-pass and legacy single-pass produce identical matrices, digests,
    /// public outputs and full assignments for random matmul statements.
    #[test]
    fn prop_two_pass_matches_single_pass_matmul(
        a in 1usize..5,
        n in 1usize..5,
        b in 1usize..5,
        seed in 0u64..500,
        strategy_idx in 0usize..4,
        public_idx in 0usize..2,
    ) {
        let strategy = Strategy::ALL[strategy_idx];
        let public = public_idx == 1;
        let builder = MatMulBuilder::new(a, n, b)
            .strategy(strategy)
            .public_outputs(public);
        // Legacy eager pipeline: single pass into a ConstraintSystem.
        let mut rng = StdRng::seed_from_u64(seed);
        let job = builder.build_random(&mut rng);
        // Two-pass pipeline over the *same* statement.
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = builder.build_circuit_random(&mut rng);

        let shape = compile_shape(&circuit);
        prop_assert_eq!(shape.digest, circuit_shape_digest(&job.cs));
        let legacy = job.cs.to_matrices();
        prop_assert_eq!(&shape.matrices.a, &legacy.a);
        prop_assert_eq!(&shape.matrices.b, &legacy.b);
        prop_assert_eq!(&shape.matrices.c, &legacy.c);
        prop_assert_eq!(circuit.public_outputs(), Circuit::public_outputs(&job));

        let witness = generate_witness_for(&circuit, &shape);
        prop_assert_eq!(witness.full(), job.cs.full_assignment());
        prop_assert!(shape.is_satisfied(&witness));
    }
}

#[test]
fn model_presets_two_pass_matches_single_pass() {
    for preset in ModelPreset::ALL {
        let (model, schedule) = preset.config();
        let z = <zkvc_ff::Fr as zkvc_ff::PrimeField>::from_u64(0x5EED_0000 + preset as u64);
        let eager = ModelCircuit::build_seeded(&model, &schedule, Strategy::CrpcPsq, 3, z);
        let lazy = ModelStatement::new(model, schedule, Strategy::CrpcPsq, 3, z);
        let shape = compile_shape(&lazy);
        assert_eq!(
            shape.digest,
            circuit_shape_digest(&eager.cs),
            "{preset:?} digest"
        );
        let witness = generate_witness_for(&lazy, &shape);
        assert_eq!(witness.full(), eager.cs.full_assignment(), "{preset:?}");
        assert_eq!(witness.instance, eager.logits, "{preset:?} logits");
    }
}

#[test]
fn legacy_proofs_verify_under_two_pass_keys() {
    // Digest stability across the refactor, end to end: a proof produced
    // through the *legacy* eager pipeline (single-pass ConstraintSystem →
    // digest-keyed cache) round-trips through envelope bytes and verifies
    // under the keys the two-pass template path derives for the same spec
    // — because both pipelines produce the same digest, and the digest
    // (plus seed) deterministically derives the CRS.
    for spec in [
        JobSpec::new(3, 4, 3),
        JobSpec::new(2, 2, 2)
            .with_strategy(Strategy::Vanilla)
            .with_backend(Backend::Spartan),
        JobSpec::model(ModelPreset::MixerBlock).with_backend(Backend::Spartan),
    ] {
        let seed = 11u64;
        let system = spec.backend().system();

        // Legacy pipeline: eager statements proved against a digest-keyed
        // cache (exactly what the pre-split pool did).
        let legacy_cache = KeyCache::with_seed(seed);
        let statement = build_statement(seed, 0, &spec);
        let (legacy_keys, _) =
            legacy_cache.get_or_setup_circuit_seeded(spec.backend(), statement.as_ref(), seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let artifacts = system.prove(&legacy_keys.prover, statement.as_ref(), &mut rng);
        let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();

        // Two-pass pipeline: a *fresh* cache, template path (shape pass +
        // setup once, witness pass per job).
        let two_pass_cache = KeyCache::with_seed(seed);
        let (keys, hit) = two_pass_cache.get_or_setup_template(
            spec.backend(),
            seed,
            &spec.to_string(),
            statement.as_ref(),
        );
        assert!(!hit);
        assert_eq!(keys.digest, legacy_keys.digest, "{spec} digest moved");

        let envelope = ProofEnvelope::from_bytes(&bytes).expect("decodes");
        assert!(
            envelope.verify_with_key(&keys.verifier),
            "{spec}: legacy proof rejected by two-pass keys"
        );
        assert_eq!(envelope.public_inputs, statement.public_outputs());
    }
}

#[test]
fn setup_path_never_materialises_witness_values() {
    // A circuit whose witness closures panic if ever invoked: the cache's
    // setup path (template and digest-keyed), Backend::setup via the
    // ProofSystem trait, and shape digests must all run clean. Only a
    // witness pass may blow up.
    struct PanickyWitness;
    impl Circuit for PanickyWitness {
        fn synthesize(&self, sink: &mut dyn zkvc_r1cs::ConstraintSink<zkvc_ff::Fr>) {
            use zkvc_ff::PrimeField;
            use zkvc_r1cs::SinkExt;
            let out = sink.alloc_instance_lazy(|| panic!("instance materialised during setup"));
            let x = sink.alloc_witness_lazy(|| panic!("witness materialised during setup"));
            let sq = sink.alloc_witness_opt(
                sink.wants_values()
                    .then(|| panic!("derived witness materialised during setup"))
                    .map(|()| zkvc_ff::Fr::from_u64(0)),
            );
            sink.enforce(x.into(), x.into(), sq.into());
            sink.enforce_equal(sq.into(), out.into());
        }
    }

    let circuit = PanickyWitness;
    let digest = circuit.shape_digest(); // witness-free
    let cache = KeyCache::new();
    for backend in Backend::ALL {
        let (keys, hit) = cache.get_or_setup_template(backend, 0, "panicky", &circuit);
        // Second template with identical structure: digest-level dedup,
        // still no witness values.
        let (_, _) = cache.get_or_setup_circuit(backend, &circuit);
        assert!(!hit, "{backend:?}");
        assert_eq!(keys.digest, digest, "{backend:?}");
        assert_eq!(keys.shape.num_witness(), 2);
    }
    // The witness pass is the only place the closures run.
    let result = std::panic::catch_unwind(|| zkvc_core::api::generate_witness(&circuit));
    assert!(result.is_err(), "witness pass must invoke the closures");
}
