//! The runtime's shared byte/format codec layer: one home for every
//! versioned serialization the crate speaks, instead of magic strings
//! scattered per module.
//!
//! Three families live here:
//!
//! - **Binary formats** — the proof envelope magic (`ZKVCPRF` + a version
//!   digit) and the canonical [`CompiledShape`](zkvc_r1cs::CompiledShape) /
//!   [`WitnessAssignment`](zkvc_r1cs::WitnessAssignment) encodings
//!   (re-exported from `zkvc-r1cs`, where the structures live). All of
//!   them lead with an explicit version; bytes from a *newer* version
//!   decode to a typed [`Error::FutureVersion`], never a parse panic, so
//!   a mixed-version fleet fails loudly and diagnosably.
//! - **Line-protocol identifiers** — the `proto` strings of the serve and
//!   worker dialects, checked on both ends of a connection.
//! - **Report schemas** — the `schema` strings stamped into every JSON
//!   report and bench file, so downstream tooling can dispatch on version.
//!
//! Version-bump protocol: a format change bumps exactly one constant
//! here, and decoders keep accepting every version they historically
//! wrote. Decoders never guess — an unknown version is an error, not a
//! best-effort parse.

use crate::error::Error;

pub use zkvc_r1cs::{
    decode_shape, decode_shape_expecting, decode_witness, encode_shape, encode_witness, ByteReader,
    DecodeError, SHAPE_ENCODING_VERSION, WITNESS_ENCODING_VERSION,
};

/// The proof-envelope magic: a fixed prefix plus one ASCII version digit.
pub(crate) const ENVELOPE_MAGIC_PREFIX: &[u8; 7] = b"ZKVCPRF";

/// The envelope format version this build reads and writes.
pub const ENVELOPE_FORMAT_VERSION: u8 = 1;

/// The full magic written at the head of every envelope this build
/// produces (`ZKVCPRF1`).
pub(crate) const ENVELOPE_MAGIC: &[u8; 8] = b"ZKVCPRF1";

/// The serve line-protocol identifier announced in every `ready` line.
pub const SERVE_PROTO: &str = "zkvc-serve/v1";

/// The worker dialect identifier announced in every `worker_register`
/// line (and echoed back in `worker_ack`).
pub const WORKER_PROTO: &str = "zkvc-worker/v1";

/// Schema string of `zkvc client --report` JSON documents.
pub const CLIENT_REPORT_SCHEMA: &str = "zkvc-client-report/v1";

/// Schema string of `zkvc client --sweep` / serve bench JSON documents.
pub const SERVE_BENCH_SCHEMA: &str = "zkvc-serve-bench/v1";

/// Schema string of the distributed bench (`BENCH_distributed.json`).
pub const DISTRIBUTED_BENCH_SCHEMA: &str = "zkvc-bench-distributed/v1";

/// Probes the version of proof-envelope bytes without decoding them:
/// `Ok(version)` for any `ZKVCPRF<digit>` head, [`Error::FutureVersion`]
/// when the digit is newer than [`ENVELOPE_FORMAT_VERSION`], and
/// [`Error::MalformedEnvelope`] when the magic is absent entirely.
pub fn envelope_format_version(bytes: &[u8]) -> Result<u8, Error> {
    let rest = bytes
        .strip_prefix(ENVELOPE_MAGIC_PREFIX.as_slice())
        .ok_or(Error::MalformedEnvelope)?;
    let version = match rest.first() {
        Some(d @ b'0'..=b'9') => d - b'0',
        _ => return Err(Error::MalformedEnvelope),
    };
    if version > ENVELOPE_FORMAT_VERSION {
        return Err(Error::FutureVersion {
            what: "proof envelope",
            found: version,
            supported: ENVELOPE_FORMAT_VERSION,
        });
    }
    Ok(version)
}

impl From<DecodeError> for Error {
    /// Maps shape/witness decode failures onto the runtime error surface:
    /// future versions keep their typed identity, everything else names
    /// the broken field.
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::FutureVersion {
                context,
                found,
                supported,
            } => Error::FutureVersion {
                what: context,
                found,
                supported,
            },
            other => Error::Codec(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_magic_is_prefix_plus_version_digit() {
        let mut expected = ENVELOPE_MAGIC_PREFIX.to_vec();
        expected.push(b'0' + ENVELOPE_FORMAT_VERSION);
        assert_eq!(ENVELOPE_MAGIC.as_slice(), expected.as_slice());
    }

    #[test]
    fn envelope_version_probe_is_typed() {
        assert_eq!(envelope_format_version(b"ZKVCPRF1rest").unwrap(), 1);
        // A future version is a FutureVersion error, not "malformed".
        match envelope_format_version(b"ZKVCPRF2rest") {
            Err(Error::FutureVersion {
                what,
                found,
                supported,
            }) => {
                assert_eq!(what, "proof envelope");
                assert_eq!(found, 2);
                assert_eq!(supported, ENVELOPE_FORMAT_VERSION);
            }
            other => panic!("expected FutureVersion, got {other:?}"),
        }
        // Garbage is malformed, not future-versioned.
        assert!(matches!(
            envelope_format_version(b"NOTMAGIC"),
            Err(Error::MalformedEnvelope)
        ));
        assert!(matches!(
            envelope_format_version(b"ZKVCPRFx"),
            Err(Error::MalformedEnvelope)
        ));
        assert!(matches!(
            envelope_format_version(b"ZKVCPRF"),
            Err(Error::MalformedEnvelope)
        ));
    }

    #[test]
    fn shape_decode_errors_map_onto_runtime_errors() {
        let future = DecodeError::FutureVersion {
            context: "shape",
            found: 9,
            supported: SHAPE_ENCODING_VERSION,
        };
        match Error::from(future) {
            Error::FutureVersion { what, found, .. } => {
                assert_eq!(what, "shape");
                assert_eq!(found, 9);
            }
            other => panic!("expected FutureVersion, got {other:?}"),
        }
        let truncated = DecodeError::Truncated {
            context: "matrix A",
        };
        match Error::from(truncated) {
            Error::Codec(detail) => assert!(detail.contains("matrix A"), "{detail}"),
            other => panic!("expected Codec, got {other:?}"),
        }
    }
}
