//! The typed error surface of the runtime and the `zkvc` CLI.
//!
//! Every CLI command path returns `Result<(), Error>`; `main` maps the
//! error to a process exit code via [`Error::exit_code`], so exit statuses
//! are data-driven rather than scattered `process::exit` calls:
//! verification-class failures exit `1`, usage/input errors exit `2`.

use core::fmt;
use std::io;
use std::path::PathBuf;

use zkvc_core::Backend;

/// Everything that can go wrong in the runtime's CLI-facing paths.
#[derive(Debug)]
pub enum Error {
    /// The command line was malformed: unknown flag, missing value,
    /// missing required argument.
    Usage(String),
    /// A job spec string failed to parse.
    Spec {
        /// The offending spec input.
        input: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An I/O operation on a user-supplied path failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Proof envelope bytes could not be decoded.
    MalformedEnvelope,
    /// Bytes carried a format version newer than this build understands
    /// (proof envelope, shape, or witness encoding). The payload may be
    /// fine — the decoder is too old — so the message says *upgrade*,
    /// not *corrupt*.
    FutureVersion {
        /// What was being decoded ("proof envelope", "shape", ...).
        what: &'static str,
        /// The version the bytes carried.
        found: u8,
        /// The newest version this build decodes.
        supported: u8,
    },
    /// A shape/witness payload failed structural validation while
    /// decoding (truncated, malformed CSR, digest mismatch, ...).
    Codec(String),
    /// The envelope was produced by a different backend than the spec
    /// demands.
    BackendMismatch {
        /// Backend recorded in the envelope.
        proof: Backend,
        /// Backend the spec expects.
        expected: Backend,
    },
    /// The proof's claimed public outputs differ from the statement being
    /// verified — a replayed or cross-statement proof.
    StatementMismatch,
    /// The proof failed cryptographic verification.
    VerificationFailed,
    /// A `zkvc serve` request line was malformed (bad JSON, wrong field
    /// type, unknown field). Answered in-stream with code 2; never fatal
    /// to the server.
    Request(String),
    /// A `zkvc serve` request line exceeded the configured size bound.
    /// Answered in-stream with code 2; never fatal to the server.
    RequestTooLarge {
        /// Bytes the offending line carried (the whole line is discarded).
        actual: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The server refused the request because the pool is at its global
    /// admission bound. Answered in-stream with code 3 and a
    /// `retry_after_ms` hint; never fatal to the server, and never
    /// queued — a shed request was *not* accepted.
    Shed {
        /// How long the client should wait before retrying, in
        /// milliseconds.
        retry_after_ms: u64,
    },
    /// `zkvc client` gave up: every retry attempt failed (connect errors
    /// or persistent shedding). Maps to its own exit code so scripts can
    /// tell "the server was unavailable" from "a proof was bad".
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: usize,
        /// The last failure seen.
        last: String,
    },
    /// `zkvc analyze` found lint violations at or above its gate
    /// threshold (after baseline waivers). A soundness-class failure —
    /// the circuit is bad, not the invocation — so it exits `1` like a
    /// bad proof.
    AnalysisFailed {
        /// Gated findings remaining after waivers.
        findings: usize,
        /// The gate threshold's lowercase token (`warn`, `deny`, ...).
        threshold: String,
    },
}

impl Error {
    /// Builds a [`Error::Spec`] from an input string and a reason.
    pub fn spec(input: impl Into<String>, reason: impl fmt::Display) -> Self {
        Error::Spec {
            input: input.into(),
            reason: reason.to_string(),
        }
    }

    /// Builds a [`Error::Io`] from a path and an I/O error.
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        Error::Io {
            path: path.into(),
            source,
        }
    }

    /// The process exit code this error maps to: `1` for
    /// verification-class failures (the proof is bad), `2` for
    /// usage/input errors (the invocation is bad), `3` for
    /// availability failures (the server shed the request, or the client
    /// exhausted its retries) — the same numbers double as the wire
    /// protocol's error `code`.
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::VerificationFailed | Error::StatementMismatch | Error::AnalysisFailed { .. } => {
                1
            }
            Error::Usage(_)
            | Error::Spec { .. }
            | Error::Io { .. }
            | Error::MalformedEnvelope
            | Error::FutureVersion { .. }
            | Error::Codec(_)
            | Error::BackendMismatch { .. }
            | Error::Request(_)
            | Error::RequestTooLarge { .. } => 2,
            Error::Shed { .. } | Error::RetriesExhausted { .. } => 3,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Usage(message) => write!(f, "{message}"),
            Error::Spec { input, reason } => write!(f, "bad spec {input:?}: {reason}"),
            Error::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Error::MalformedEnvelope => write!(f, "malformed proof envelope"),
            Error::FutureVersion {
                what,
                found,
                supported,
            } => write!(
                f,
                "{what} uses format version {found}, newer than the supported \
                 version {supported} — upgrade this binary to read it"
            ),
            Error::Codec(detail) => write!(f, "malformed payload: {detail}"),
            Error::BackendMismatch { proof, expected } => write!(
                f,
                "proof was produced by the {proof} backend, spec says {expected}"
            ),
            Error::StatementMismatch => {
                write!(f, "proof public outputs do not match the statement")
            }
            Error::VerificationFailed => write!(f, "proof verification failed"),
            Error::Request(reason) => write!(f, "bad request: {reason}"),
            Error::RequestTooLarge { actual, limit } => {
                write!(f, "request too large: {actual} bytes (limit {limit})")
            }
            Error::Shed { retry_after_ms } => {
                write!(
                    f,
                    "shed: server at its admission bound, retry after {retry_after_ms} ms"
                )
            }
            Error::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempt(s): {last}")
            }
            Error::AnalysisFailed {
                findings,
                threshold,
            } => {
                write!(
                    f,
                    "analysis failed: {findings} finding(s) at or above `{threshold}` severity"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_data_driven() {
        assert_eq!(Error::VerificationFailed.exit_code(), 1);
        assert_eq!(Error::StatementMismatch.exit_code(), 1);
        assert_eq!(
            Error::AnalysisFailed {
                findings: 3,
                threshold: "warn".into()
            }
            .exit_code(),
            1
        );
        assert_eq!(Error::Usage("x".into()).exit_code(), 2);
        assert_eq!(Error::spec("1x2", "oops").exit_code(), 2);
        assert_eq!(Error::MalformedEnvelope.exit_code(), 2);
        assert_eq!(
            Error::FutureVersion {
                what: "proof envelope",
                found: 2,
                supported: 1
            }
            .exit_code(),
            2
        );
        assert_eq!(Error::Codec("truncated matrix A".into()).exit_code(), 2);
        assert_eq!(
            Error::BackendMismatch {
                proof: Backend::Groth16,
                expected: Backend::Spartan
            }
            .exit_code(),
            2
        );
        let io = Error::io("/nope", io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert_eq!(io.exit_code(), 2);
        assert!(std::error::Error::source(&io).is_some());
        assert_eq!(Error::Request("bad json".into()).exit_code(), 2);
        assert_eq!(
            Error::RequestTooLarge {
                actual: 99,
                limit: 10
            }
            .exit_code(),
            2
        );
        assert_eq!(Error::Shed { retry_after_ms: 50 }.exit_code(), 3);
        assert_eq!(
            Error::RetriesExhausted {
                attempts: 4,
                last: "connection refused".into()
            }
            .exit_code(),
            3
        );
    }

    #[test]
    fn messages_name_the_offender() {
        let e = Error::spec("2x2x2:bogus", "unknown strategy \"bogus\"");
        assert!(e.to_string().contains("2x2x2:bogus"));
        let e = Error::BackendMismatch {
            proof: Backend::Groth16,
            expected: Backend::Spartan,
        };
        assert!(e.to_string().contains("groth16") && e.to_string().contains("spartan"));
        let e = Error::FutureVersion {
            what: "shape",
            found: 3,
            supported: 1,
        };
        let shown = e.to_string();
        assert!(shown.contains("shape") && shown.contains('3') && shown.contains('1'));
        let e = Error::Codec("matrix B row 4 columns are not strictly increasing".into());
        assert!(e.to_string().contains("matrix B"));
    }
}
