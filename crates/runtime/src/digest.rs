//! Circuit-shape digests: a collision-resistant fingerprint of an R1CS
//! *structure* (constraint matrices and coefficient values, not the
//! assignment), used as the [`crate::KeyCache`] key.
//!
//! Two constraint systems get the same digest iff they have the same
//! instance/witness split and identical `A`, `B`, `C` matrices — exactly
//! the condition under which Groth16 CRS material and Spartan preprocessed
//! state are interchangeable between them.

use zkvc_ff::{Fr, PrimeField};
use zkvc_hash::Sha256;
use zkvc_r1cs::{ConstraintSystem, LinearCombination};

/// Domain-separation prefix so shape digests can never collide with other
/// SHA-256 uses in the stack.
const DOMAIN: &[u8] = b"zkvc-runtime-circuit-shape-v1";

/// Computes the shape digest of a constraint system.
///
/// The encoding is injective: every section is length-prefixed and each
/// linear-combination term serialises its resolved column index alongside
/// the canonical coefficient bytes, so distinct structures hash distinct
/// byte strings.
pub fn circuit_shape_digest(cs: &ConstraintSystem<Fr>) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(DOMAIN);
    h.update(&(cs.num_instance() as u64).to_le_bytes());
    h.update(&(cs.num_witness() as u64).to_le_bytes());
    h.update(&(cs.num_constraints() as u64).to_le_bytes());

    let absorb_lcs = |h: &mut Sha256, tag: u8, lcs: &[LinearCombination<Fr>]| {
        h.update(&[tag]);
        for lc in lcs {
            h.update(&(lc.terms.len() as u64).to_le_bytes());
            for (var, coeff) in &lc.terms {
                h.update(&(cs.variable_index(*var) as u64).to_le_bytes());
                h.update(&coeff.to_bytes_le());
            }
        }
    };

    let (a, b, c) = cs.constraints();
    absorb_lcs(&mut h, b'A', a);
    absorb_lcs(&mut h, b'B', b);
    absorb_lcs(&mut h, b'C', c);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvc_ff::Field;

    fn square_cs(x: u64) -> ConstraintSystem<Fr> {
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(x * x));
        let w = cs.alloc_witness(Fr::from_u64(x));
        cs.enforce(w.into(), w.into(), out.into());
        cs
    }

    #[test]
    fn digest_ignores_assignment_values() {
        assert_eq!(
            circuit_shape_digest(&square_cs(3)),
            circuit_shape_digest(&square_cs(7))
        );
    }

    #[test]
    fn digest_distinguishes_structure() {
        let base = circuit_shape_digest(&square_cs(3));

        // Extra constraint.
        let mut cs = square_cs(3);
        cs.enforce_zero(LinearCombination::zero());
        assert_ne!(circuit_shape_digest(&cs), base);

        // Extra (unconstrained) variable.
        let mut cs = square_cs(3);
        cs.alloc_witness(Fr::zero());
        assert_ne!(circuit_shape_digest(&cs), base);

        // Different coefficient.
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(18));
        let w = cs.alloc_witness(Fr::from_u64(3));
        cs.enforce(
            LinearCombination::from(w) * Fr::from_u64(2),
            w.into(),
            out.into(),
        );
        assert_ne!(circuit_shape_digest(&cs), base);

        // Instance/witness split matters even with identical matrices.
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_witness(Fr::from_u64(9));
        let w = cs.alloc_witness(Fr::from_u64(3));
        cs.enforce(w.into(), w.into(), out.into());
        assert_ne!(circuit_shape_digest(&cs), base);
    }
}
