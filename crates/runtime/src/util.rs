//! Tiny encoding helpers shared by the report renderers and the serve
//! wire format (no external dependencies, so they live here rather than
//! pulling in a hex/serde crate).

/// Lowercase hex encoding. On the serve hot path (every result line
/// carries a whole proof envelope), so no per-byte allocations.
pub(crate) fn hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes lowercase/uppercase hex; `None` on odd length or bad digits.
/// Runtime (not test-only): the `zkvc client` load driver decodes
/// `vk_hex`/`proof_hex` fields from server responses with it.
pub(crate) fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrips() {
        let bytes = [0u8, 1, 0xab, 0xff, 0x10];
        assert_eq!(hex(&bytes), "0001abff10");
        assert_eq!(unhex("0001abff10").unwrap(), bytes);
        assert_eq!(unhex("0001ABFF10").unwrap(), bytes);
        assert!(unhex("abc").is_none(), "odd length");
        assert!(unhex("zz").is_none(), "bad digit");
    }

    #[test]
    fn json_escape_covers_controls_and_quotes() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
