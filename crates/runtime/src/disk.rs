//! On-disk persistence of Groth16 verification keys, keyed by circuit
//! shape digest and setup seed.
//!
//! `zkvc verify` used to re-derive the whole CRS on every invocation just
//! to obtain the expected verification key. With this cache the first
//! verification of a `(shape, seed)` pair pays for setup once and stores
//! the ~330-byte vk; every later invocation loads it and the verification
//! cost drops to the constant pairing check.
//!
//! Only Groth16 keys are persisted: Spartan's verifier preprocessing is
//! derived from the circuit structure (transparent, comparatively cheap)
//! and has no wire format. Loaded keys go through
//! [`VerifyingKey::from_bytes`], which validates every group element and
//! recomputes the cached pairing, so a corrupted cache file degrades to a
//! decode failure (treated as a miss), never to accepting a bad proof.

use std::io;
use std::path::{Path, PathBuf};

use zkvc_groth16::VerifyingKey;

/// A directory of persisted verification keys.
#[derive(Clone, Debug)]
pub struct DiskKeyCache {
    dir: PathBuf,
}

impl DiskKeyCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskKeyCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path for a `(digest, seed)` pair.
    fn key_path(&self, digest: &[u8; 32], seed: u64) -> PathBuf {
        self.dir.join(format!("{}-s{seed}.groth16.vk", hex(digest)))
    }

    /// Loads a persisted Groth16 verification key, or `None` when absent
    /// or undecodable. A corrupt file is a cache miss, not an error, and
    /// is **quarantined**: renamed to `<entry>.bad` so the next store can
    /// rewrite the entry cleanly and the damaged bytes stay around for
    /// inspection instead of being re-decoded (and re-failed) forever.
    pub fn load_groth16_vk(&self, digest: &[u8; 32], seed: u64) -> Option<VerifyingKey> {
        let path = self.key_path(digest, seed);
        let mut bytes = std::fs::read(&path).ok()?;
        if crate::fault::fires("disk.vk.poison").is_some() {
            // Injected corruption: flip the tail so decode fails exactly
            // like a torn or tampered entry would.
            match bytes.last_mut() {
                Some(last) => *last ^= 0xff,
                None => bytes.push(0),
            }
        }
        match VerifyingKey::from_bytes(&bytes) {
            Some(vk) => Some(vk),
            None => {
                let mut bad = path.clone().into_os_string();
                bad.push(".bad");
                let _ = std::fs::rename(&path, &bad);
                None
            }
        }
    }

    /// Persists a Groth16 verification key, returning the file written.
    /// The write goes through a temporary file + rename so a crashed
    /// process never leaves a torn key behind.
    pub fn store_groth16_vk(
        &self,
        digest: &[u8; 32],
        seed: u64,
        vk: &VerifyingKey,
    ) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.key_path(digest, seed);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, vk.to_bytes())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_core::matmul::{MatMulBuilder, Strategy};
    use zkvc_core::{Backend, VerifierKey};

    use crate::cache::KeyCache;
    use zkvc_core::circuit_shape_digest;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("zkvc-disk-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_roundtrip_and_misses() {
        let dir = temp_dir("roundtrip");
        let cache = DiskKeyCache::new(&dir);
        let mut rng = StdRng::seed_from_u64(3);
        let job = MatMulBuilder::new(2, 3, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng);
        let digest = circuit_shape_digest(&job.cs);

        // Cold cache: miss.
        assert!(cache.load_groth16_vk(&digest, 7).is_none());

        let mem = KeyCache::with_seed(7);
        let (keys, _) = mem.get_or_setup(Backend::Groth16, &job.cs);
        let VerifierKey::Groth16(vk) = &keys.verifier else {
            panic!("groth16 setup must yield a groth16 key");
        };
        let path = cache.store_groth16_vk(&digest, 7, vk).expect("store");
        assert!(path.starts_with(&dir));

        let loaded = cache.load_groth16_vk(&digest, 7).expect("hit after store");
        assert_eq!(loaded.to_bytes(), vk.to_bytes());
        // A different seed (different CRS) is a separate entry.
        assert!(cache.load_groth16_vk(&digest, 8).is_none());
        // A different digest is a separate entry.
        assert!(cache.load_groth16_vk(&[0u8; 32], 7).is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_file_is_a_miss_and_quarantined() {
        let dir = temp_dir("corrupt");
        let cache = DiskKeyCache::new(&dir);
        let digest = [7u8; 32];
        let path = cache.key_path(&digest, 1);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, b"garbage").unwrap();
        assert!(cache.load_groth16_vk(&digest, 1).is_none());

        // The garbage entry was moved aside, not left in place: the key
        // path is free for a clean rewrite and the damaged bytes survive
        // under `.bad` for inspection.
        assert!(
            !path.exists(),
            "corrupt entry must not stay at the key path"
        );
        let mut bad = path.into_os_string();
        bad.push(".bad");
        let bad = PathBuf::from(bad);
        assert_eq!(std::fs::read(&bad).unwrap(), b"garbage");

        // A second load is a plain miss (nothing left to quarantine), and
        // the quarantine file is untouched.
        assert!(cache.load_groth16_vk(&digest, 1).is_none());
        assert!(bad.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
