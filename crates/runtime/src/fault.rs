//! Seeded fault injection for chaos testing the serving stack.
//!
//! A *fault point* is a named place in the code that can misbehave on
//! demand: the socket stream can return an IO error, stall, or deliver a
//! short read; a worker can panic the instant it picks a job up; the disk
//! key cache can surface a poisoned entry. Production code calls the
//! check functions here at those places; with no schedule armed the check
//! is two atomic loads and injects nothing — faults are a test-only
//! input, never a deployment knob.
//!
//! ## Arming a schedule
//!
//! A schedule is read **once per process** from the `ZKVC_FAULTS`
//! environment variable, at the first fault-point check:
//!
//! ```text
//! ZKVC_FAULTS="seed=42;net.read.io_error=0.05;net.write.delay=0.1@20;pool.pickup.panic=0.02"
//! ```
//!
//! `seed=N` seeds the decision stream; every other entry is
//! `point=probability[@param]`, where `param` carries a per-point knob
//! (delay milliseconds). Decisions are **deterministic**: whether the
//! n-th arrival at a point fires depends only on `(seed, point, n)`, so a
//! chaos run is reproducible by pinning the seed — same schedule, same
//! faults, in the same places. Every fired fault logs one
//! `zkvc-fault: ...` line to stderr, which is the chaos log CI archives.
//!
//! ## Named fault points
//!
//! | point                | effect where checked                          |
//! |----------------------|-----------------------------------------------|
//! | `net.read.io_error`  | stream read fails with `ConnectionReset`      |
//! | `net.read.short`     | stream read is truncated to one byte          |
//! | `net.read.delay`     | stream read stalls `param` ms first           |
//! | `net.write.io_error` | stream write fails with `BrokenPipe`          |
//! | `net.write.delay`    | stream write stalls `param` ms first          |
//! | `pool.pickup.panic`  | worker panics picking the job up (contained)  |
//! | `pool.prove.delay`   | proving stalls `param` ms first (local pool   |
//! |                      | and remote workers alike; the distributed     |
//! |                      | bench uses it to emulate paper-scale proof    |
//! |                      | latency on small CI shapes)                   |
//! | `disk.vk.poison`     | disk key-cache read sees a corrupted entry    |

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Environment variable holding the fault schedule; read once per
/// process at the first fault-point check (changes after that are
/// ignored).
pub const ENV_VAR: &str = "ZKVC_FAULTS";

struct Rule {
    prob: f64,
    param: u64,
    /// Arrivals seen at this point so far (the `n` in the decision).
    count: AtomicU64,
}

struct Schedule {
    seed: u64,
    rules: HashMap<String, Rule>,
}

/// 0 = not yet initialised, 1 = disarmed, 2 = armed.
static STATE: AtomicU8 = AtomicU8::new(0);
static SCHEDULE: OnceLock<Schedule> = OnceLock::new();

fn schedule() -> Option<&'static Schedule> {
    match STATE.load(Ordering::Acquire) {
        1 => None,
        2 => SCHEDULE.get(),
        _ => {
            let raw = std::env::var(ENV_VAR).ok().filter(|s| !s.trim().is_empty());
            match raw {
                Some(raw) => {
                    let parsed = parse_schedule(&raw)
                        .unwrap_or_else(|e| panic!("bad {ENV_VAR} fault schedule {raw:?}: {e}"));
                    let _ = SCHEDULE.set(parsed);
                    STATE.store(2, Ordering::Release);
                    SCHEDULE.get()
                }
                None => {
                    STATE.store(1, Ordering::Release);
                    None
                }
            }
        }
    }
}

/// Validates any armed [`ENV_VAR`] schedule **eagerly**, returning the
/// parse error the first lazy fault-point check would otherwise panic
/// with mid-flight. The CLI calls this at startup so a typo'd schedule
/// is a clear usage error before any work begins, instead of a panic
/// deep inside a worker thread.
pub fn validate_env() -> Result<(), String> {
    match std::env::var(ENV_VAR).ok().filter(|s| !s.trim().is_empty()) {
        Some(raw) => parse_schedule(&raw)
            .map(|_| ())
            .map_err(|e| format!("bad {ENV_VAR} fault schedule {raw:?}: {e}")),
        None => Ok(()),
    }
}

fn parse_schedule(raw: &str) -> Result<Schedule, String> {
    let mut seed = 0u64;
    let mut rules = HashMap::new();
    for entry in raw.split([';', ',']).filter(|e| !e.trim().is_empty()) {
        let (key, value) = entry
            .trim()
            .split_once('=')
            .ok_or_else(|| format!("entry {entry:?} is not key=value"))?;
        if key == "seed" {
            seed = value
                .parse::<u64>()
                .map_err(|_| format!("bad seed {value:?}"))?;
            continue;
        }
        let (prob_str, param_str) = match value.split_once('@') {
            Some((p, m)) => (p, Some(m)),
            None => (value, None),
        };
        let prob = prob_str
            .parse::<f64>()
            .ok()
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| format!("bad probability {prob_str:?} for {key:?} (want 0..=1)"))?;
        let param = match param_str {
            Some(m) => m
                .parse::<u64>()
                .map_err(|_| format!("bad param {m:?} for {key:?}"))?,
            None => 0,
        };
        rules.insert(
            key.to_string(),
            Rule {
                prob,
                param,
                count: AtomicU64::new(0),
            },
        );
    }
    Ok(Schedule { seed, rules })
}

/// Deterministic per-arrival decision: splitmix64 over
/// `(seed, point, n)`, compared against `prob` in `[0, 1)`.
fn decides(seed: u64, point: &str, n: u64, prob: f64) -> bool {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the point name
    for b in point.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut x = seed ^ h ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) < prob
}

/// `true` once a fault schedule has been armed in this process.
pub fn armed() -> bool {
    schedule().is_some()
}

/// Checks fault point `point` against the armed schedule: returns the
/// rule's `param` when this arrival fires, `None` when the point is not
/// scheduled, loses its roll, or no schedule is armed (the fast path).
/// Every fired fault logs one `zkvc-fault:` line to stderr.
pub fn fires(point: &str) -> Option<u64> {
    let sched = schedule()?;
    let rule = sched.rules.get(point)?;
    let n = rule.count.fetch_add(1, Ordering::Relaxed);
    if !decides(sched.seed, point, n, rule.prob) {
        return None;
    }
    eprintln!("zkvc-fault: {point} fired (arrival {n}, p={})", rule.prob);
    Some(rule.param)
}

/// Panics with an `injected fault:` message when `point` fires. Used at
/// places whose containment path is a `catch_unwind` (worker pickup).
pub fn fire_panic(point: &str) {
    if fires(point).is_some() {
        panic!("injected fault: {point}");
    }
}

/// Sleeps for the rule's `param` milliseconds when `point` fires.
pub fn fire_delay(point: &str) {
    if let Some(ms) = fires(point) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_env_rejects_what_parse_rejects() {
        // Parse-level check (no env mutation: the lazy schedule() memo
        // makes env races between tests unrecoverable). The env-level
        // path is exercised end-to-end through the `zkvc` binary in
        // `tests/analyze.rs`.
        assert!(parse_schedule("seed=oops").is_err());
        assert!(parse_schedule("net.read.io_error=2.0").is_err());
        assert!(parse_schedule("just-a-word").is_err());
        assert!(parse_schedule("seed=1;net.read.io_error=0.5").is_ok());
    }

    #[test]
    fn parses_a_full_schedule() {
        let s = parse_schedule("seed=42;net.read.io_error=0.25;net.write.delay=0.5@20").unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.rules.len(), 2);
        let delay = &s.rules["net.write.delay"];
        assert!((delay.prob - 0.5).abs() < 1e-12);
        assert_eq!(delay.param, 20);
        assert_eq!(s.rules["net.read.io_error"].param, 0);
    }

    #[test]
    fn rejects_malformed_schedules() {
        for bad in ["nope", "p=2.0", "p=x", "seed=abc", "p=0.5@ms"] {
            assert!(parse_schedule(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_track_probability() {
        let fired: Vec<bool> = (0..1000)
            .map(|n| decides(7, "net.read.short", n, 0.3))
            .collect();
        let again: Vec<bool> = (0..1000)
            .map(|n| decides(7, "net.read.short", n, 0.3))
            .collect();
        assert_eq!(fired, again, "same (seed, point, n) -> same decision");
        let hits = fired.iter().filter(|f| **f).count();
        assert!((150..450).contains(&hits), "~30% of 1000, got {hits}");
        // A different seed or point gives a different stream.
        let other: Vec<bool> = (0..1000)
            .map(|n| decides(8, "net.read.short", n, 0.3))
            .collect();
        assert_ne!(fired, other);
        assert!((0..1000).all(|n| !decides(7, "x", n, 0.0)));
        assert!((0..1000).all(|n| decides(7, "x", n, 1.0)));
    }

    #[test]
    fn unarmed_process_fires_nothing() {
        // The test binary does not arm ZKVC_FAULTS, so every check is the
        // disarmed fast path.
        assert!(fires("net.read.io_error").is_none());
        fire_panic("pool.pickup.panic"); // must not panic
        fire_delay("net.write.delay"); // must not sleep
    }
}
