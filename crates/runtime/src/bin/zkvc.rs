//! The `zkvc` command-line interface: batch proving with key caching and a
//! worker pool, plus single-proof file round trips.
//!
//! ```text
//! zkvc prove-batch --spec 8x8x16:crpc+psq:groth16:x8 --workers 4 [--seed N] [--compare-serial]
//! zkvc prove  --spec 8x8x16:zkvc:g [--seed N] --out proof.bin
//! zkvc verify --in proof.bin --spec 8x8x16:zkvc:g [--seed N]
//! zkvc help
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_runtime::{
    build_statement, prove_batch_serial, JobSpec, KeyCache, ProofEnvelope, ProvingPool,
};

const USAGE: &str = "\
zkvc - concurrent batch proving for the zkVC stack

USAGE:
    zkvc prove-batch --spec SPEC [--spec SPEC ...] [OPTIONS]
    zkvc prove  --spec SPEC [--seed N] --out FILE
    zkvc verify --in FILE --spec SPEC [--seed N]
    zkvc help

SPEC grammar:
    AxNxB[:STRATEGY][:BACKEND][:xCOUNT]
    STRATEGY: vanilla | vanilla+psq | crpc | crpc+psq (alias: zkvc)
    BACKEND:  groth16 (alias: g) | spartan (alias: s)
    xCOUNT:   repeat the job COUNT times (prove-batch only)

OPTIONS (prove-batch):
    --workers K        worker threads (default: available parallelism)
    --seed N           determinism seed (default 0); same seed => same proofs
    --compare-serial   also run N independent one-shot proves and report the speedup

EXAMPLES:
    zkvc prove-batch --spec 8x8x16:crpc+psq:groth16:x8 --workers 4 --compare-serial
    zkvc prove-batch --spec 4x4x4:zkvc:g:x4 --spec 4x4x4:zkvc:s:x4
    zkvc prove --spec 8x8x16:zkvc:g --out proof.bin && zkvc verify --in proof.bin --spec 8x8x16:zkvc:g
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "prove-batch" => cmd_prove_batch(&args[1..]),
        "prove" => cmd_prove(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}; try `zkvc help`")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// Rejects any argument that is not a recognised flag of the current
/// subcommand (so a typo'd `--sede 7` errors out instead of silently
/// proving with the default seed).
fn reject_unknown_args(
    args: &[String],
    flags_with_value: &[&str],
    bare_flags: &[&str],
) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if flags_with_value.contains(&arg) {
            i += 2; // skip the flag and its value; presence checked later
        } else if bare_flags.contains(&arg) {
            i += 1;
        } else {
            return Err(format!("unknown argument {arg:?}; try `zkvc help`"));
        }
    }
    Ok(())
}

/// Pulls the value following a `--flag` occurrence out of `args`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{flag} requires a value")),
    }
}

fn parse_common(args: &[String]) -> Result<(Vec<JobSpec>, u64), String> {
    let mut specs = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if arg == "--spec" {
            let value = args
                .get(i + 1)
                .ok_or_else(|| "--spec requires a value".to_string())?;
            let (spec, count) = JobSpec::parse(value)?;
            specs.extend(std::iter::repeat_n(spec, count));
        }
    }
    let seed = match flag_value(args, "--seed")? {
        Some(s) => s.parse::<u64>().map_err(|_| format!("bad --seed {s:?}"))?,
        None => 0,
    };
    Ok((specs, seed))
}

fn cmd_prove_batch(args: &[String]) -> Result<bool, String> {
    reject_unknown_args(
        args,
        &["--spec", "--seed", "--workers"],
        &["--compare-serial"],
    )?;
    let (specs, seed) = parse_common(args)?;
    if specs.is_empty() {
        return Err("prove-batch needs at least one --spec".into());
    }
    let workers = match flag_value(args, "--workers")? {
        Some(s) => s
            .parse::<usize>()
            .ok()
            .filter(|w| *w > 0)
            .ok_or_else(|| format!("bad --workers {s:?}"))?,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    };

    let t0 = Instant::now();
    let pool = ProvingPool::with_cache(workers, seed, Arc::new(KeyCache::with_seed(seed)));
    for spec in &specs {
        pool.submit(*spec);
    }
    let report = pool.join();
    let pooled_wall = t0.elapsed();
    print!("{}", report.render_table("zkvc prove-batch"));

    if args.iter().any(|a| a == "--compare-serial") {
        let t1 = Instant::now();
        let serial = prove_batch_serial(&specs, seed);
        let serial_wall = t1.elapsed();
        print!(
            "{}",
            serial.render_table("serial baseline (one-shot prove per job)")
        );
        println!(
            "speedup: {:.2}x (pooled {:.3}s vs serial {:.3}s)",
            serial_wall.as_secs_f64() / pooled_wall.as_secs_f64(),
            pooled_wall.as_secs_f64(),
            serial_wall.as_secs_f64()
        );
        if !serial.all_verified() {
            return Ok(false);
        }
    }
    Ok(report.all_verified())
}

fn cmd_prove(args: &[String]) -> Result<bool, String> {
    reject_unknown_args(args, &["--spec", "--seed", "--out"], &[])?;
    let (specs, seed) = parse_common(args)?;
    let [spec] = specs[..] else {
        return Err("prove needs exactly one --spec (without :xCOUNT)".into());
    };
    let out_path =
        flag_value(args, "--out")?.ok_or_else(|| "prove requires --out FILE".to_string())?;

    let statement = build_statement(seed, 0, &spec);
    let cache = KeyCache::with_seed(seed);
    let (keys, _) = cache.get_or_setup(spec.backend, &statement.cs);
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    let artifacts = spec
        .backend
        .prove_with_key(&keys.prover, &statement.cs, &mut rng);
    let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
    std::fs::write(out_path, &bytes).map_err(|e| format!("writing {out_path:?}: {e}"))?;
    println!(
        "proved {spec} in {:.3}s ({} constraints), wrote {} bytes to {out_path}",
        t0.elapsed().as_secs_f64(),
        artifacts.metrics.num_constraints,
        bytes.len()
    );
    Ok(true)
}

fn cmd_verify(args: &[String]) -> Result<bool, String> {
    reject_unknown_args(args, &["--spec", "--seed", "--in"], &[])?;
    let (specs, seed) = parse_common(args)?;
    let [spec] = specs[..] else {
        return Err("verify needs exactly one --spec matching the one used to prove".into());
    };
    let in_path =
        flag_value(args, "--in")?.ok_or_else(|| "verify requires --in FILE".to_string())?;
    let bytes = std::fs::read(in_path).map_err(|e| format!("reading {in_path:?}: {e}"))?;
    let envelope =
        ProofEnvelope::from_bytes(&bytes).ok_or_else(|| "malformed proof envelope".to_string())?;
    if envelope.backend != spec.backend {
        return Err(format!(
            "proof was produced by the {} backend, spec says {}",
            envelope.backend.name(),
            spec.backend.name()
        ));
    }
    // Re-derive the expected verifier key for the spec'd circuit shape
    // (the CRS/preprocessing is deterministic in (seed, shape)) and verify
    // against it — never against the envelope's own embedded vk — so an
    // envelope built from some other circuit's setup fails even though it
    // is internally consistent. Note the matmul circuits keep X/W/Y as
    // witness variables (no public inputs), so this binds the proof to the
    // circuit shape and key material, not to one specific input matrix;
    // statement-level binding needs public outputs (see ROADMAP).
    let statement = build_statement(seed, 0, &spec);
    let cache = KeyCache::with_seed(seed);
    let (keys, _) = cache.get_or_setup(spec.backend, &statement.cs);
    let t0 = Instant::now();
    let ok = envelope.verify_with_key(&keys.verifier);
    println!(
        "verification: {} in {:.3}s",
        if ok { "OK" } else { "FAILED" },
        t0.elapsed().as_secs_f64()
    );
    Ok(ok)
}
