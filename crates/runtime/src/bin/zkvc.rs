//! The `zkvc` command-line interface: batch proving with key caching and a
//! work-stealing worker pool, a resident JSON-lines proving server, plus
//! single-proof file round trips — for matmul statements *and* whole
//! model-block inferences, all through the `Circuit`/`ProofSystem` trait
//! layer.
//!
//! ```text
//! zkvc prove-batch --spec 8x8x16:crpc+psq:groth16:x8 --workers 4 [--seed N] [--compare-serial] [--report FILE]
//! zkvc serve [--workers K] [--seed N] [--queue-bound B] [--max-request BYTES] [--no-proofs]
//! zkvc serve --listen unix:/run/zkvc.sock [--idle-timeout SECS] [--session-bound B] [--admission-bound N]
//! zkvc client --connect unix:/run/zkvc.sock --spec 4x4x4:zkvc:g --sessions 8 --count 16
//! zkvc prove  --spec 8x8x16:zkvc:g [--seed N] --out proof.bin
//! zkvc prove  --spec mixer-block:spartan --out model.bin
//! zkvc verify --in proof.bin --spec 8x8x16:zkvc:g [--seed N]
//! zkvc help
//! ```
//!
//! Every command path returns `Result<(), zkvc_runtime::Error>`; exit codes
//! are data-driven in `main` via [`Error::exit_code`] (`1` = the proof is
//! bad, `2` = the invocation is bad).

// No `forbid(unsafe_code)` here, unlike every library crate: the `sig`
// module's signal-handler installation is the one necessary unsafe block
// in the workspace.
#![deny(missing_debug_implementations)]

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_r1cs::Severity;
use zkvc_runtime::analysis::{self, Baseline};
use zkvc_runtime::{
    build_statement, fault, prove_batch_serial, run_client, run_sweep, run_worker, serve,
    serve_listener, ClientConfig, DiskKeyCache, Error, JobOptions, JobSpec, KeyCache, ListenAddr,
    NetConfig, ProofEnvelope, ProvingPool, ServeConfig, WorkerConfig,
};

const USAGE: &str = "\
zkvc - concurrent batch proving for the zkVC stack

USAGE:
    zkvc prove-batch --spec SPEC [--spec SPEC ...] [OPTIONS]
    zkvc serve  [--listen ADDR] [--workers K] [--seed N] [--queue-bound B]
                [--max-request BYTES] [--no-proofs] [--key-cache DIR|none]
                [--cache-bytes N|none] [--idle-timeout SECS|none] [--session-bound B]
                [--admission-bound N|none] [--retry-after-ms MS]
    zkvc client --connect ADDR [--spec SPEC] [--seed N] [--sessions K] [--count M]
                [--jobs FILE] [--no-verify] [--report FILE] [--bench FILE] [--sweep LIST]
                [--deadline-ms MS] [--retries R] [--backoff-ms MS] [--retry-seed N]
    zkvc worker --connect ADDR [--capacity K] [--tune-profile PATH|none]
    zkvc prove  --spec SPEC [--seed N] [--key-cache DIR|none] --out FILE
    zkvc verify --in FILE --spec SPEC [--seed N] [--key-cache DIR|none]
    zkvc analyze [--spec SPEC ...] [--seed N] [--json] [--deny LEVEL]
                 [--baseline FILE]
    zkvc tune   [--tune-profile PATH|none] [--quick] [--force]
    zkvc help

SPEC grammar:
    FIRST[:FIELD]*  where FIRST selects the statement and FIELDs follow in
    any order:
    FIRST:    AxNxB matmul dimensions, or a model preset:
              mixer-block | bert-block | vit-micro
    STRATEGY: vanilla | vanilla+psq | crpc | crpc+psq (alias: zkvc)
    BACKEND:  groth16 (alias: g) | spartan (alias: s)
    private:  keep matmul outputs as witnesses (shape binding only);
              by default Y is public, so the proof binds the statement
    xCOUNT:   repeat the job COUNT times (prove-batch and serve)

OPTIONS (prove-batch):
    --workers K        worker threads (default: available parallelism)
    --seed N           determinism seed (default 0); same seed => same proofs
    --compare-serial   also run N independent one-shot proves and report the speedup
    --report FILE      write a machine-readable batch report (deterministic
                       fields only: verdicts, proof digests, key table) —
                       two same-seed runs must produce identical files

OPTIONS (serve):
    reads one JSON request per line from stdin, e.g.
        {\"spec\": \"8x8x16:zkvc:g\", \"id\": \"req-1\", \"seed\": 7}
    and streams JSON responses to stdout as proofs complete (out of
    order, tagged with the request id). See README \"zkvc serve\" for the
    full schema.
    --workers K        worker threads (default: available parallelism)
    --seed N           default statement seed for requests without one
    --queue-bound B    block request intake while B jobs are queued (default 256)
    --max-request N    reject request lines longer than N bytes (default 65536)
    --no-proofs        omit proof_hex from responses (verdict/throughput mode)
    --key-cache DIR    persist groth16 vks as shapes are first proved
    --cache-bytes N    bound the resident key cache to N shape bytes, evicting
                       cold shapes LRU (default 256 MiB; `none` disables)
    --listen ADDR      serve a socket instead of stdin: unix:/path/to.sock or
                       tcp:HOST:PORT. Each connection is its own session (own
                       id space, own key announcements, own summary line) on
                       one shared worker pool and warm key cache. SIGINT or
                       SIGTERM drains gracefully: stop accepting, flush every
                       in-flight result, summarise each session, exit 0.
    --idle-timeout S   reap sessions silent for S seconds with nothing in
                       flight (default 300; `none` keeps them forever)
    --session-bound B  per-session in-flight job bound (default 64): a greedy
                       client blocks in its own socket, not the shared queue
    --analyze-on-compile  statically lint each spec's circuit shape before its
                       first job is admitted (see `zkvc analyze`); specs with
                       deny-severity findings are rejected with an in-stream
                       code-2 error instead of being proved
    --admission-bound N  shed requests that would push total in-flight jobs
                       past N: answered with a code-3 error carrying a
                       retry_after_ms hint, never queued (default none)
    --retry-after-ms MS  the hint shed responses carry (default 100)

OPTIONS (client):
    connects to a `zkvc serve --listen` endpoint, streams requests, checks
    that result ids stay inside its own session, and re-verifies returned
    envelopes against the streamed key lines. Exit 1 if anything failed.
    --connect ADDR     the endpoint (unix:/path or tcp:HOST:PORT); required
    --spec SPEC        the spec generated requests prove (required unless
                       --jobs; an :xCOUNT suffix sets the default --count)
    --seed N           statement seed attached to every generated request
    --sessions K       concurrent connections (default 1)
    --count M          generated requests per session (default 8)
    --jobs FILE        stream raw request lines from FILE instead
    --no-verify        skip local envelope re-verification
    --report FILE      write a deterministic per-job report (ids, verdicts,
                       proof digests) — two runs against same-seed servers
                       must produce identical files
    --bench FILE       sweep session counts and write BENCH_serve.json-style
                       throughput/latency points to FILE
    --sweep LIST       comma-separated session counts for --bench
                       (default 1,2,4,8)
    --deadline-ms MS   attach a deadline_ms to every generated request: the
                       server abandons proofs still running MS ms after
                       admission and answers deadline_exceeded
    --retries R        reconnect-and-resubmit budget after a failed attempt
                       (default 2; 0 disables). Only still-unanswered ids are
                       resent, so retries are idempotent; exhausting the
                       budget exits 3
    --backoff-ms MS    exponential backoff base between attempts, plus seeded
                       jitter, floored at any shed retry_after_ms hint
                       (default 50)
    --retry-seed N     seed for the deterministic backoff jitter (default 0)

OPTIONS (worker):
    joins a `zkvc serve --listen` coordinator as a remote proving worker:
    registers on the zkvc-worker/v1 dialect, receives compiled circuit
    shapes once each (canonical digest-checked bytes), re-derives the
    same keys by deterministic setup, and proves the jobs it is leased —
    bit-identically to the coordinator proving them itself. Heartbeats
    every second; if the worker dies mid-job the coordinator re-queues
    its leases, so clients never lose an answer. SIGINT/SIGTERM exits
    cleanly after finishing accepted jobs.
    --connect ADDR     the coordinator (unix:/path or tcp:HOST:PORT); required
    --capacity K       concurrent proving slots to advertise (default 1)

OPTIONS (analyze):
    statically lints compiled circuit shapes for soundness hazards —
    unconstrained witnesses, unbound public outputs, constant violations,
    missing booleanity rows (deny class), dead and duplicate constraints
    (warn class). Witness-free: no proving, no setup. With no --spec the
    whole shipping matrix is swept (every preset x strategy x backend).
    --spec SPEC        analyze this spec (repeatable; :xCOUNT is ignored)
    --seed N           statement seed for circuit construction (default 0;
                       shapes are seed-independent, values are not)
    --json             emit one machine-readable JSON report object instead
                       of the human table (this is the CI artifact format)
    --deny LEVEL       exit 1 when any non-waived finding is at or above
                       LEVEL: info | warn | deny (default deny)
    --baseline FILE    waive reviewed findings: one `SPEC FINGERPRINT` (or
                       bare `FINGERPRINT` for any spec) per line, `#`
                       comments allowed; fingerprints are shown in reports

OPTIONS (prove / verify):
    --key-cache DIR    persist/load groth16 verification keys under DIR so a
                       repeat `zkvc verify` skips CRS re-derivation entirely.
                       Default: $ZKVC_KEY_CACHE, else the user cache dir
                       ($XDG_CACHE_HOME or ~/.cache)/zkvc/keys; disabled if
                       neither exists. Pass `none` to disable.

OPTIONS (tune):
    runs the kernel calibration probe — MSM driver/window and FFT
    serial-vs-parallel per size class, measured on this host — and
    persists the winning dispatch decisions as a versioned JSON profile
    (printed to stdout). `zkvc prove/prove-batch/serve/worker` load the
    profile at startup; tuned parameters change kernel schedules only,
    never results, so proofs are bit-identical under any profile (see
    docs/TUNING.md).
    --tune-profile P   profile file to reuse/write (default: $ZKVC_TUNE,
                       else ($XDG_CACHE_HOME or ~/.cache)/zkvc/tune.json,
                       beside the key cache; `none` skips persistence)
    --quick            sub-second probe (smaller sweep; CI smoke)
    --force            recalibrate even when a reusable profile exists

OPTIONS (tuning, accepted by prove-batch / serve / worker / prove / client):
    --tune-profile P   pin this calibrated profile for the run (`none`
                       forces the static defaults). Default: $ZKVC_TUNE,
                       else the cached profile if one was persisted by
                       `zkvc tune`, else static defaults. A worker with no
                       profile calibrates itself (quick probe) at startup.

EXAMPLES:
    zkvc prove-batch --spec 8x8x16:crpc+psq:groth16:x8 --workers 4 --compare-serial
    zkvc prove-batch --spec 4x4x4:zkvc:g:x4 --spec mixer-block:spartan:x4
    echo '{\"spec\": \"4x4x4:zkvc:s\", \"id\": 1}' | zkvc serve --workers 2
    zkvc prove --spec 8x8x16:zkvc:g --out proof.bin && zkvc verify --in proof.bin --spec 8x8x16:zkvc:g
    zkvc prove --spec bert-block:spartan --out bert.bin && zkvc verify --in bert.bin --spec bert-block:spartan
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    // A malformed fault schedule is a usage error at startup, not a
    // panic in whichever worker thread happens to hit the first fault
    // point mid-run.
    if let Err(message) = fault::validate_env() {
        eprintln!("error: {message}");
        return ExitCode::from(2);
    }
    let result = match command.as_str() {
        "prove-batch" => cmd_prove_batch(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "client" => cmd_client(&args[1..]),
        "worker" => cmd_worker(&args[1..]),
        "prove" => cmd_prove(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "tune" => cmd_tune(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(Error::Usage(format!(
            "unknown command {other:?}; try `zkvc help`"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::from(error.exit_code())
        }
    }
}

/// Rejects any argument that is not a recognised flag of the current
/// subcommand (so a typo'd `--sede 7` errors out instead of silently
/// proving with the default seed).
fn reject_unknown_args(
    args: &[String],
    flags_with_value: &[&str],
    bare_flags: &[&str],
) -> Result<(), Error> {
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if flags_with_value.contains(&arg) {
            i += 2; // skip the flag and its value; presence checked later
        } else if bare_flags.contains(&arg) {
            i += 1;
        } else {
            return Err(Error::Usage(format!(
                "unknown argument {arg:?}; try `zkvc help`"
            )));
        }
    }
    Ok(())
}

/// Pulls the value following a `--flag` occurrence out of `args`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, Error> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| Error::Usage(format!("{flag} requires a value"))),
    }
}

fn parse_common(args: &[String]) -> Result<(Vec<JobSpec>, u64), Error> {
    let mut specs = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if arg == "--spec" {
            let value = args
                .get(i + 1)
                .ok_or_else(|| Error::Usage("--spec requires a value".into()))?;
            let (spec, count) = JobSpec::parse(value)?;
            specs.extend(std::iter::repeat_n(spec, count));
        }
    }
    let seed = match flag_value(args, "--seed")? {
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| Error::Usage(format!("bad --seed {s:?}")))?,
        None => 0,
    };
    Ok((specs, seed))
}

/// Parses `--workers K`, defaulting to available parallelism.
fn workers_from_args(args: &[String]) -> Result<usize, Error> {
    match flag_value(args, "--workers")? {
        Some(s) => s
            .parse::<usize>()
            .ok()
            .filter(|w| *w > 0)
            .ok_or_else(|| Error::Usage(format!("bad --workers {s:?}"))),
        None => Ok(std::thread::available_parallelism().map_or(4, std::num::NonZero::get)),
    }
}

/// Resolves, activates and logs the kernel tune profile for a proving
/// command (`--tune-profile` / `$ZKVC_TUNE` / cached default — see
/// `zkvc_runtime::tune`). Static fallback stays silent: a process with no
/// profile behaves exactly as before this subsystem existed.
fn activate_tuning(args: &[String]) -> Result<zkvc_runtime::tune::ActiveTune, Error> {
    let active = zkvc_runtime::tune::startup(flag_value(args, "--tune-profile")?)?;
    if !matches!(active.source, zkvc_runtime::tune::TuneSource::Static) {
        eprintln!("zkvc tune: {}", active.describe());
    }
    Ok(active)
}

fn cmd_prove_batch(args: &[String]) -> Result<(), Error> {
    reject_unknown_args(
        args,
        &[
            "--spec",
            "--seed",
            "--workers",
            "--report",
            "--tune-profile",
        ],
        &["--compare-serial"],
    )?;
    activate_tuning(args)?;
    let (specs, seed) = parse_common(args)?;
    if specs.is_empty() {
        return Err(Error::Usage("prove-batch needs at least one --spec".into()));
    }
    let workers = workers_from_args(args)?;

    let t0 = Instant::now();
    let pool = ProvingPool::with_cache(workers, seed, Arc::new(KeyCache::with_seed(seed)));
    for spec in &specs {
        pool.submit(*spec, JobOptions::new());
    }
    let report = pool.join();
    let pooled_wall = t0.elapsed();
    print!("{}", report.render_table("zkvc prove-batch"));
    if let Some(path) = flag_value(args, "--report")? {
        std::fs::write(path, report.render_report_json()).map_err(|e| Error::io(path, e))?;
        println!("wrote deterministic batch report to {path}");
    }

    let mut all_ok = report.all_verified();
    if args.iter().any(|a| a == "--compare-serial") {
        let t1 = Instant::now();
        let serial = prove_batch_serial(&specs, seed);
        let serial_wall = t1.elapsed();
        print!(
            "{}",
            serial.render_table("serial baseline (one-shot prove per job)")
        );
        println!(
            "speedup: {:.2}x (pooled {:.3}s vs serial {:.3}s)",
            serial_wall.as_secs_f64() / pooled_wall.as_secs_f64(),
            pooled_wall.as_secs_f64(),
            serial_wall.as_secs_f64()
        );
        all_ok &= serial.all_verified();
    }
    if all_ok {
        Ok(())
    } else {
        Err(Error::VerificationFailed)
    }
}

fn cmd_serve(args: &[String]) -> Result<(), Error> {
    reject_unknown_args(
        args,
        &[
            "--workers",
            "--seed",
            "--queue-bound",
            "--max-request",
            "--key-cache",
            "--cache-bytes",
            "--listen",
            "--idle-timeout",
            "--session-bound",
            "--admission-bound",
            "--retry-after-ms",
            "--tune-profile",
        ],
        &["--no-proofs", "--analyze-on-compile"],
    )?;
    activate_tuning(args)?;
    let workers = workers_from_args(args)?;
    let seed = match flag_value(args, "--seed")? {
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| Error::Usage(format!("bad --seed {s:?}")))?,
        None => 0,
    };
    let mut config = ServeConfig::new(workers)
        .seed(seed)
        .include_proofs(!args.iter().any(|a| a == "--no-proofs"))
        .analyze_on_compile(args.iter().any(|a| a == "--analyze-on-compile"))
        .disk_cache(key_cache_from_args(args)?);
    if let Some(s) = flag_value(args, "--queue-bound")? {
        let bound = s
            .parse::<usize>()
            .ok()
            .filter(|b| *b > 0)
            .ok_or_else(|| Error::Usage(format!("bad --queue-bound {s:?}")))?;
        config = config.queue_bound(bound);
    }
    if let Some(s) = flag_value(args, "--max-request")? {
        let max = s
            .parse::<usize>()
            .ok()
            .filter(|m| *m > 0)
            .ok_or_else(|| Error::Usage(format!("bad --max-request {s:?}")))?;
        config = config.max_request_bytes(max);
    }
    if let Some(s) = flag_value(args, "--cache-bytes")? {
        config = config.cache_bytes(match s {
            "none" => None,
            _ => Some(
                s.parse::<usize>()
                    .map_err(|_| Error::Usage(format!("bad --cache-bytes {s:?}")))?,
            ),
        });
    }

    let listen = flag_value(args, "--listen")?
        .map(ListenAddr::parse)
        .transpose()?;
    let Some(addr) = listen else {
        for flag in [
            "--idle-timeout",
            "--session-bound",
            "--admission-bound",
            "--retry-after-ms",
        ] {
            if flag_value(args, flag)?.is_some() {
                return Err(Error::Usage(format!("{flag} requires --listen")));
            }
        }
        // Requests come from stdin, responses go to stdout (line-buffered
        // by the serve loop itself); diagnostics would go to stderr.
        // Malformed requests are answered in-stream and never kill the
        // server — the exit code reflects proving outcomes only.
        let summary = serve(std::io::stdin().lock(), std::io::stdout(), config)?;
        eprintln!(
            "zkvc serve: {} job(s), {} verified, {} failed, {} request line(s) rejected",
            summary.jobs, summary.verified, summary.failed, summary.rejected
        );
        return if summary.failed == 0 {
            Ok(())
        } else {
            Err(Error::VerificationFailed)
        };
    };

    let mut net = NetConfig::new(config);
    if let Some(s) = flag_value(args, "--idle-timeout")? {
        net = net.idle_timeout(match s {
            "none" => None,
            _ => {
                Some(Duration::from_secs(s.parse::<u64>().map_err(|_| {
                    Error::Usage(format!("bad --idle-timeout {s:?}"))
                })?))
            }
        });
    }
    if let Some(s) = flag_value(args, "--session-bound")? {
        let bound = s
            .parse::<usize>()
            .ok()
            .filter(|b| *b > 0)
            .ok_or_else(|| Error::Usage(format!("bad --session-bound {s:?}")))?;
        net = net.session_bound(bound);
    }
    if let Some(s) = flag_value(args, "--admission-bound")? {
        net = net.admission_bound(match s {
            "none" => None,
            _ => Some(
                s.parse::<usize>()
                    .ok()
                    .filter(|b| *b > 0)
                    .ok_or_else(|| Error::Usage(format!("bad --admission-bound {s:?}")))?,
            ),
        });
    }
    if let Some(s) = flag_value(args, "--retry-after-ms")? {
        let ms = s
            .parse::<u64>()
            .map_err(|_| Error::Usage(format!("bad --retry-after-ms {s:?}")))?;
        net = net.retry_after_ms(ms);
    }

    // A long-running service: SIGINT/SIGTERM raise the shutdown flag, the
    // listener stops accepting, every session drains and summarises, and
    // the process exits 0. Job failures of individual clients are their
    // problem (reported in their own streams), not the service's exit
    // code — a disconnecting client cancelling its jobs is normal
    // operation.
    let shutdown = sig::install_shutdown_flag();
    let totals = serve_listener(&addr, net, shutdown, |bound| {
        eprintln!("zkvc serve: listening on {bound} (SIGINT/SIGTERM drains and exits)");
    })?;
    eprintln!(
        "zkvc serve: {} session(s) ({} disconnected, {} idle-reaped, {} worker(s)), {} job(s), {} verified, {} failed, {} rejected, {} shed",
        totals.sessions,
        totals.disconnected,
        totals.reaped_idle,
        totals.remote_workers,
        totals.jobs,
        totals.verified,
        totals.failed,
        totals.rejected,
        totals.shed
    );
    Ok(())
}

fn cmd_worker(args: &[String]) -> Result<(), Error> {
    reject_unknown_args(args, &["--connect", "--capacity", "--tune-profile"], &[])?;
    use zkvc_runtime::tune::{self, TuneSource};
    let tune_flag = flag_value(args, "--tune-profile")?;
    let mut active = activate_tuning(args)?;
    // A worker is long-lived and placement-agnostic: if this host has no
    // usable profile yet (cold start, or a stale/corrupt cached one),
    // spend a sub-second quick probe now so every job it is leased proves
    // at locally calibrated settings — heterogeneous hosts in one
    // distributed run each tune themselves.
    if matches!(active.source, TuneSource::Static) {
        if let TuneSource::Cached(path) = tune::resolve_source(tune_flag) {
            eprintln!("zkvc worker: no usable tune profile; running quick calibration");
            active = tune::calibrate_activate_persist(&tune::ProbeConfig::quick(), Some(&path));
            eprintln!("zkvc tune: {}", active.describe());
        }
    }
    let addr = flag_value(args, "--connect")?
        .ok_or_else(|| Error::Usage("worker requires --connect ADDR".into()))?;
    let mut config = WorkerConfig::new(addr);
    config.tune_digest = Some(active.digest());
    if let Some(s) = flag_value(args, "--capacity")? {
        config.capacity = s
            .parse::<usize>()
            .ok()
            .filter(|c| *c > 0)
            .ok_or_else(|| Error::Usage(format!("bad --capacity {s:?}")))?;
    }
    config.shutdown = Some(sig::install_shutdown_flag());
    let summary = run_worker(&config)?;
    eprintln!(
        "zkvc worker: id {} done, {} job(s) proved, {} failed, {} shape(s) received",
        summary.worker_id, summary.jobs_done, summary.jobs_failed, summary.shapes_received
    );
    Ok(())
}

fn cmd_client(args: &[String]) -> Result<(), Error> {
    reject_unknown_args(
        args,
        &[
            "--connect",
            "--spec",
            "--seed",
            "--sessions",
            "--count",
            "--jobs",
            "--report",
            "--bench",
            "--sweep",
            "--deadline-ms",
            "--retries",
            "--backoff-ms",
            "--retry-seed",
            "--tune-profile",
        ],
        &["--no-verify"],
    )?;
    // The client proves nothing itself, but its `--bench` sweep records
    // `tune_profile` provenance — load the host profile so that digest
    // reflects what a prover on this machine would run under.
    activate_tuning(args)?;
    let addr = ListenAddr::parse(
        flag_value(args, "--connect")?
            .ok_or_else(|| Error::Usage("client requires --connect ADDR".into()))?,
    )?;
    let jobs = match flag_value(args, "--jobs")? {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
            Some(text.lines().map(str::to_string).collect::<Vec<_>>())
        }
        None => None,
    };
    // The spec drives generated load; with --jobs the file's own lines
    // are streamed and the spec (if any) is ignored for generation.
    let (spec, spec_count) = match flag_value(args, "--spec")? {
        Some(s) => JobSpec::parse(s)?,
        None if jobs.is_some() => JobSpec::parse("2x2x2:zkvc:s")?,
        None => {
            return Err(Error::Usage(
                "client requires --spec SPEC (or --jobs FILE)".into(),
            ))
        }
    };
    let seed = flag_value(args, "--seed")?
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| Error::Usage(format!("bad --seed {s:?}")))
        })
        .transpose()?;
    let count = match flag_value(args, "--count")? {
        Some(s) => s
            .parse::<usize>()
            .ok()
            .filter(|c| *c > 0)
            .ok_or_else(|| Error::Usage(format!("bad --count {s:?}")))?,
        // An :xCOUNT suffix on the spec sets the per-session count;
        // otherwise 8 requests exercise the cache-warm path.
        None => {
            if spec_count > 1 {
                spec_count
            } else {
                8
            }
        }
    };
    let mut config = ClientConfig::new(addr, spec)
        .seed(seed)
        .count(count)
        .verify(!args.iter().any(|a| a == "--no-verify"))
        .jobs(jobs);
    if let Some(s) = flag_value(args, "--sessions")? {
        let sessions = s
            .parse::<usize>()
            .ok()
            .filter(|k| *k > 0)
            .ok_or_else(|| Error::Usage(format!("bad --sessions {s:?}")))?;
        config = config.sessions(sessions);
    }
    if let Some(s) = flag_value(args, "--deadline-ms")? {
        let ms = s
            .parse::<u64>()
            .ok()
            .filter(|ms| *ms > 0)
            .ok_or_else(|| Error::Usage(format!("bad --deadline-ms {s:?}")))?;
        config = config.deadline_ms(Some(ms));
    }
    if let Some(s) = flag_value(args, "--retries")? {
        let retries = s
            .parse::<usize>()
            .map_err(|_| Error::Usage(format!("bad --retries {s:?}")))?;
        config = config.retries(retries);
    }
    if let Some(s) = flag_value(args, "--backoff-ms")? {
        let ms = s
            .parse::<u64>()
            .map_err(|_| Error::Usage(format!("bad --backoff-ms {s:?}")))?;
        config = config.backoff_ms(ms);
    }
    if let Some(s) = flag_value(args, "--retry-seed")? {
        let seed = s
            .parse::<u64>()
            .map_err(|_| Error::Usage(format!("bad --retry-seed {s:?}")))?;
        config = config.retry_seed(seed);
    }

    if let Some(path) = flag_value(args, "--bench")? {
        let sweep: Vec<usize> = match flag_value(args, "--sweep")? {
            Some(list) => list
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .ok()
                        .filter(|k| *k > 0)
                        .ok_or_else(|| Error::Usage(format!("bad --sweep entry {s:?}")))
                })
                .collect::<Result<_, _>>()?,
            None => vec![1, 2, 4, 8],
        };
        let json = run_sweep(&config, &sweep)?;
        std::fs::write(path, format!("{json}\n")).map_err(|e| Error::io(path, e))?;
        println!("wrote serve bench ({} point(s)) to {path}", sweep.len());
        return Ok(());
    }

    let report = run_client(&config)?;
    println!("{}", report.render_table());
    if let Some(path) = flag_value(args, "--report")? {
        std::fs::write(path, format!("{}\n", report.render_report_json()))
            .map_err(|e| Error::io(path, e))?;
        println!("wrote deterministic client report to {path}");
    }
    if report.all_ok() {
        Ok(())
    } else {
        Err(Error::VerificationFailed)
    }
}

/// SIGINT/SIGTERM handling without a signals crate: the handler (an
/// async-signal-safe atomic store into a static) raises a process-wide
/// flag; a watcher thread mirrors it into the `Arc<AtomicBool>` the
/// listener polls every accept/read tick.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // C `signal(2)`; handler travels as a plain function address.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install_shutdown_flag() -> Arc<AtomicBool> {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
        let flag = Arc::new(AtomicBool::new(false));
        let mirror = Arc::clone(&flag);
        std::thread::spawn(move || {
            while !SHUTDOWN.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            mirror.store(true, Ordering::SeqCst);
        });
        flag
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// No signal plumbing off unix: the flag simply never trips and the
    /// server runs until the process is killed.
    pub fn install_shutdown_flag() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }
}

/// Resolves the `--key-cache` flag: explicit directory, `none` to disable,
/// or the default — `$ZKVC_KEY_CACHE`, else a *user-owned* cache directory
/// (`$XDG_CACHE_HOME/zkvc/keys` or `$HOME/.cache/zkvc/keys`). Verification
/// trusts whatever key the cache returns for a digest, so the default must
/// never point at a world-writable location like the shared OS temp dir
/// (another user could plant a well-formed vk + matching forged proof at
/// the predictable path). With no home directory the cache is disabled.
fn key_cache_from_args(args: &[String]) -> Result<Option<DiskKeyCache>, Error> {
    match flag_value(args, "--key-cache")? {
        Some("none") => Ok(None),
        Some(dir) => Ok(Some(DiskKeyCache::new(dir))),
        None => {
            if let Some(dir) = std::env::var_os("ZKVC_KEY_CACHE") {
                return Ok(Some(DiskKeyCache::new(dir)));
            }
            let base = std::env::var_os("XDG_CACHE_HOME")
                .map(std::path::PathBuf::from)
                .or_else(|| {
                    std::env::var_os("HOME").map(|h| std::path::PathBuf::from(h).join(".cache"))
                });
            Ok(base.map(|b| DiskKeyCache::new(b.join("zkvc").join("keys"))))
        }
    }
}

fn cmd_analyze(args: &[String]) -> Result<(), Error> {
    reject_unknown_args(
        args,
        &["--spec", "--seed", "--deny", "--baseline"],
        &["--json"],
    )?;
    let (mut specs, seed) = parse_common(args)?;
    // :xCOUNT repetition is meaningless for analysis; collapse it.
    specs.dedup();
    if specs.is_empty() {
        specs = analysis::default_sweep();
    }
    let deny = match flag_value(args, "--deny")? {
        Some(s) => Severity::parse(s).ok_or_else(|| {
            Error::Usage(format!("bad --deny {s:?} (expected info, warn or deny)"))
        })?,
        None => Severity::Deny,
    };
    let baseline = match flag_value(args, "--baseline")? {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
            Baseline::parse(&text).map_err(Error::Usage)?
        }
        None => Baseline::default(),
    };

    let results = analysis::analyze_specs(&specs, seed);
    if args.iter().any(|a| a == "--json") {
        println!("{}", analysis::render_json(&results, &baseline));
    } else {
        print!("{}", analysis::render_human(&results, &baseline));
    }
    let gated = analysis::gate_count(&results, deny, &baseline);
    if gated == 0 {
        Ok(())
    } else {
        Err(Error::AnalysisFailed {
            findings: gated,
            threshold: deny.token().to_string(),
        })
    }
}

fn cmd_tune(args: &[String]) -> Result<(), Error> {
    reject_unknown_args(args, &["--tune-profile"], &["--quick", "--force"])?;
    use zkvc_runtime::tune::{self, TuneSource};
    let flag = flag_value(args, "--tune-profile")?;
    let quick = args.iter().any(|a| a == "--quick");
    let force = args.iter().any(|a| a == "--force");
    let path = match tune::resolve_source(flag) {
        TuneSource::Pinned(p) | TuneSource::Cached(p) => Some(p),
        _ => None,
    };

    // Reuse an existing calibrated profile when it loads cleanly and its
    // host fingerprint (core count) still matches — repeat invocations
    // are then free, which is what lets services run `zkvc tune`
    // unconditionally at deploy time.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if !force {
        if let Some(p) = &path {
            match tune::load_profile(p) {
                Ok(profile) if profile.cores == cores => {
                    print!("{}", profile.to_json());
                    eprintln!(
                        "zkvc tune: reusing calibrated profile {} from {} (probe skipped; \
                         --force recalibrates)",
                        tune::profile_digest(&profile),
                        p.display()
                    );
                    return Ok(());
                }
                Ok(profile) => eprintln!(
                    "zkvc tune: cached profile was calibrated for {} core(s) but this host \
                     has {cores}; recalibrating",
                    profile.cores
                ),
                // Missing, stale-version or corrupt: calibrate fresh
                // (startup paths already warn about the bad cases).
                Err(_) => {}
            }
        }
    }

    let probe = if quick {
        tune::ProbeConfig::quick()
    } else {
        tune::ProbeConfig::standard()
    };
    eprintln!(
        "zkvc tune: calibrating MSM/FFT dispatch ({} probe, {cores} core(s))...",
        if quick { "quick" } else { "standard" }
    );
    let t0 = Instant::now();
    let active = tune::calibrate_activate_persist(&probe, path.as_deref());
    print!("{}", active.profile.to_json());
    eprintln!(
        "zkvc tune: {} ({} probe point(s), {:.2}s)",
        active.describe(),
        active.profile.probes.len(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

fn cmd_prove(args: &[String]) -> Result<(), Error> {
    reject_unknown_args(
        args,
        &["--spec", "--seed", "--out", "--key-cache", "--tune-profile"],
        &[],
    )?;
    activate_tuning(args)?;
    let (specs, seed) = parse_common(args)?;
    let [spec] = specs[..] else {
        return Err(Error::Usage(
            "prove needs exactly one --spec (without :xCOUNT)".into(),
        ));
    };
    let out_path = flag_value(args, "--out")?
        .ok_or_else(|| Error::Usage("prove requires --out FILE".into()))?;

    let statement = build_statement(seed, 0, &spec);
    // The shape pass is witness-free: setup (and the digest the disk cache
    // keys on) never materialises statement values.
    let cache = KeyCache::with_seed(seed);
    let (keys, _) = cache.get_or_setup_circuit(spec.backend(), statement.as_ref());
    // Seed the disk cache so a later `zkvc verify` starts warm.
    if let (Some(disk), zkvc_core::VerifierKey::Groth16(vk)) =
        (key_cache_from_args(args)?, &keys.verifier)
    {
        if let Err(e) = disk.store_groth16_vk(&keys.digest, seed, vk) {
            eprintln!("warning: could not persist vk to key cache: {e}");
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    // Witness pass against the cached shape, then the assignment-level
    // prover — the same split hot path the pool runs.
    let witness = zkvc_core::api::generate_witness_for(statement.as_ref(), &keys.shape);
    let artifacts = spec
        .backend()
        .system()
        .prove_assignment(&keys.prover, &witness, &mut rng);
    let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
    std::fs::write(out_path, &bytes).map_err(|e| Error::io(out_path, e))?;
    println!(
        "proved {} ({spec}) in {:.3}s ({} constraints, {} public outputs), wrote {} bytes to {out_path}",
        statement.name(),
        t0.elapsed().as_secs_f64(),
        artifacts.metrics.num_constraints,
        artifacts.public_inputs.len(),
        bytes.len()
    );
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), Error> {
    reject_unknown_args(args, &["--spec", "--seed", "--in", "--key-cache"], &[])?;
    let (specs, seed) = parse_common(args)?;
    let [spec] = specs[..] else {
        return Err(Error::Usage(
            "verify needs exactly one --spec matching the one used to prove".into(),
        ));
    };
    let in_path = flag_value(args, "--in")?
        .ok_or_else(|| Error::Usage("verify requires --in FILE".into()))?;
    let bytes = std::fs::read(in_path).map_err(|e| Error::io(in_path, e))?;
    let envelope = ProofEnvelope::from_bytes(&bytes).ok_or(Error::MalformedEnvelope)?;
    if envelope.backend != spec.backend() {
        return Err(Error::BackendMismatch {
            proof: envelope.backend,
            expected: spec.backend(),
        });
    }
    // Rebuild the statement the spec names (inputs, weights and public
    // outputs are all deterministic in the seed) and check the proof
    // against it in two steps. First, statement binding: the envelope's
    // public inputs must be exactly the statement's expected public
    // outputs — a replayed proof for the same shape but a different Y (or
    // different logits) is rejected here, before any cryptography runs.
    // Circuits built with `:private` have no public outputs, in which case
    // the proof binds the circuit shape + key material only.
    let statement = build_statement(seed, 0, &spec);
    let expected = statement.public_outputs();
    if expected.is_empty() {
        println!("statement binding: none (private outputs; shape + key binding only)");
    } else if envelope.public_inputs == expected {
        println!(
            "statement binding: OK ({} public outputs match)",
            expected.len()
        );
    } else {
        println!(
            "statement binding: MISMATCH (proof binds different outputs than {spec} job 0 at seed {seed})"
        );
        return Err(Error::StatementMismatch);
    }

    // Second, cryptographic verification against the *expected* verifier
    // key for the spec'd circuit shape (the CRS/preprocessing is
    // deterministic in (seed, shape)) — never against the envelope's own
    // embedded vk — so an envelope built from some other circuit's setup
    // fails even though it is internally consistent. For Groth16 the key
    // is loaded from the on-disk cache when available, making repeat
    // verification O(pairing); on a miss the CRS is derived once and the
    // vk persisted.
    let digest = statement.shape_digest();
    let disk = key_cache_from_args(args)?;

    let t_key = Instant::now();
    let mut key_source = "derived (no key cache)";
    let verifier = if spec.backend() == zkvc_core::Backend::Groth16 {
        match disk.as_ref().and_then(|d| d.load_groth16_vk(&digest, seed)) {
            Some(vk) => {
                key_source = "disk cache hit";
                zkvc_core::VerifierKey::Groth16(vk)
            }
            None => {
                let cache = KeyCache::with_seed(seed);
                let (keys, _) = cache.get_or_setup_circuit(spec.backend(), statement.as_ref());
                if let (Some(d), zkvc_core::VerifierKey::Groth16(vk)) = (&disk, &keys.verifier) {
                    if let Err(e) = d.store_groth16_vk(&digest, seed, vk) {
                        eprintln!("warning: could not persist vk to key cache: {e}");
                    } else {
                        key_source = "disk cache miss (CRS derived, vk persisted)";
                    }
                }
                keys.verifier.clone()
            }
        }
    } else {
        // Spartan preprocessing is transparent and derived from the
        // circuit structure; nothing worth persisting.
        let cache = KeyCache::with_seed(seed);
        cache
            .get_or_setup_circuit(spec.backend(), statement.as_ref())
            .0
            .verifier
            .clone()
    };
    let key_time = t_key.elapsed();

    let t0 = Instant::now();
    let ok = envelope.verify_with_key(&verifier);
    println!(
        "key material: {key_source} in {:.3}s",
        key_time.as_secs_f64()
    );
    println!(
        "verification: {} in {:.3}s",
        if ok { "OK" } else { "FAILED" },
        t0.elapsed().as_secs_f64()
    );
    if ok {
        Ok(())
    } else {
        Err(Error::VerificationFailed)
    }
}
