//! The `zkvc-serve/v1` wire protocol, factored out of the serve loop so
//! every transport — the stdin/stdout session, the Unix-socket and TCP
//! listener sessions, and the `zkvc client` load driver — speaks the
//! exact same dialect from one implementation.
//!
//! The protocol is JSON-lines with **flat** objects only (no nested
//! containers): one request per line in, one tagged response per line
//! out. This module owns framing ([`LineReader`] — bounded reads that
//! discard oversized lines whole and survive read timeouts without
//! losing partial-line state), parsing ([`parse_request`] /
//! [`parse_json_object`]), and response rendering ([`result_line`] /
//! [`error_line`]). See `docs/PROTOCOL.md` for the frozen schema.

use std::io::{self, BufRead};

use zkvc_core::Backend;

use crate::codec::WORKER_PROTO;
use crate::error::Error;
use crate::pool::{JobError, JobResult};
use crate::sched::Priority;
use crate::spec::JobSpec;
use crate::util::{hex, json_escape, unhex};

/// Why a request line was rejected before parsing.
#[derive(Debug, PartialEq, Eq)]
pub enum LineReject {
    /// The line exceeded the size bound; carries the total bytes consumed.
    TooLarge(usize),
    /// The line was not valid UTF-8 (rejected outright: lossy decoding
    /// would corrupt echoed ids without the client noticing).
    NotUtf8,
}

/// A bounded, resumable line reader: reads one request line of at most
/// `max` bytes per call, keeping partial-line state across calls so a
/// read timeout (`WouldBlock`/`TimedOut` from a socket with a read
/// deadline) can be used as a periodic wakeup — the socket sessions poll
/// their shutdown and idle flags this way — without ever tearing a line.
///
/// Oversized lines are consumed and discarded in full so the stream stays
/// line-aligned; the reject carries the byte count actually seen.
#[derive(Debug)]
pub struct LineReader {
    buf: Vec<u8>,
    total: usize,
    saw_any: bool,
    max: usize,
}

impl LineReader {
    /// A reader enforcing a `max`-byte line bound.
    pub fn new(max: usize) -> Self {
        LineReader {
            buf: Vec::new(),
            total: 0,
            saw_any: false,
            max,
        }
    }

    /// Reads the next line. Returns `Ok(None)` at EOF,
    /// `Ok(Some(Err(..)))` for a rejected line, and the line without its
    /// terminator otherwise. An `Err` from the underlying stream is
    /// returned as-is with all partial-line state preserved — callers
    /// treating timeouts as ticks simply call again.
    pub fn read_line<R: BufRead>(
        &mut self,
        input: &mut R,
    ) -> io::Result<Option<Result<String, LineReject>>> {
        loop {
            let chunk = input.fill_buf()?;
            if chunk.is_empty() {
                if !self.saw_any {
                    return Ok(None); // EOF before any byte of a line
                }
                break; // EOF terminates the final (newline-less) line
            }
            self.saw_any = true;
            let (line_part, found_newline) = match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => (&chunk[..pos], true),
                None => (chunk, false),
            };
            self.total += line_part.len();
            if self.total <= self.max {
                self.buf.extend_from_slice(line_part);
            }
            let consumed = line_part.len() + usize::from(found_newline);
            input.consume(consumed);
            if found_newline {
                break;
            }
        }
        let total = std::mem::take(&mut self.total);
        let mut buf = std::mem::take(&mut self.buf);
        self.saw_any = false;
        if total > self.max {
            // Oversized: the whole line was consumed (keeping the stream
            // line-aligned) but never buffered beyond the bound.
            return Ok(Some(Err(LineReject::TooLarge(total))));
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        match String::from_utf8(buf) {
            Ok(line) => Ok(Some(Ok(line))),
            Err(_) => Ok(Some(Err(LineReject::NotUtf8))),
        }
    }
}

/// One-shot [`LineReader::read_line`] for streams without timeouts (the
/// stdin serve loop): reads one request line of at most `max` bytes.
pub fn read_bounded_line<R: BufRead>(
    input: &mut R,
    max: usize,
) -> io::Result<Option<Result<String, LineReject>>> {
    LineReader::new(max).read_line(input)
}

/// One parsed request line.
#[derive(Debug)]
pub struct Request {
    /// The job to prove.
    pub spec: JobSpec,
    /// Repetition count from the spec's `:xCOUNT` suffix (1 when absent).
    pub count: usize,
    /// Statement seed override, when the request carried one.
    pub seed: Option<u64>,
    /// Priority override, when the request carried one.
    pub priority: Option<Priority>,
    /// Per-job deadline in milliseconds from admission, when the request
    /// carried one: past it, the job is answered `deadline_exceeded`
    /// instead of a proof.
    pub deadline_ms: Option<u64>,
    /// The request's `id`, re-encoded as a JSON token for echoing.
    pub id_json: Option<String>,
}

/// A flat JSON value (the wire format forbids nested containers).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// A string value.
    Str(String),
    /// A number; keeps its raw token so 64-bit seeds survive exactly.
    Num(String),
    /// A boolean.
    Bool(bool),
    /// The `null` literal.
    Null,
}

impl Json {
    /// The value re-encoded as a JSON token (strings re-escaped).
    pub fn to_token(&self) -> String {
        match self {
            Json::Str(s) => format!("\"{}\"", json_escape(s)),
            Json::Num(raw) => raw.clone(),
            Json::Bool(b) => b.to_string(),
            Json::Null => "null".to_string(),
        }
    }
}

/// Looks up a field by key in a parsed flat object.
pub fn field<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parses a request line; on failure returns the error plus the request
/// id if one could still be recovered (so the error response correlates).
pub fn parse_request(line: &str) -> Result<Request, (Error, Option<String>)> {
    let fields = parse_json_object(line).map_err(|reason| (Error::Request(reason), None))?;
    let id_json = field(&fields, "id").map(Json::to_token);
    let fail = |error: Error| (error, id_json.clone());

    let mut spec_count: Option<(JobSpec, usize)> = None;
    let mut seed = None;
    let mut priority = None;
    let mut deadline_ms = None;
    for (key, value) in &fields {
        match key.as_str() {
            "spec" => {
                let Json::Str(s) = value else {
                    return Err(fail(Error::Request("\"spec\" must be a string".into())));
                };
                spec_count = Some(JobSpec::parse(s).map_err(&fail)?);
            }
            "seed" => {
                let parsed = match value {
                    Json::Num(raw) => raw.parse::<u64>().ok(),
                    _ => None,
                };
                let Some(parsed) = parsed else {
                    return Err(fail(Error::Request(
                        "\"seed\" must be a non-negative integer".into(),
                    )));
                };
                seed = Some(parsed);
            }
            "priority" => {
                let token = match value {
                    Json::Str(s) => s.as_str(),
                    _ => "",
                };
                priority = Some(match token {
                    "high" => Priority::High,
                    "normal" => Priority::Normal,
                    _ => {
                        return Err(fail(Error::Request(
                            "\"priority\" must be \"high\" or \"normal\"".into(),
                        )))
                    }
                });
            }
            "deadline_ms" => {
                let parsed = match value {
                    Json::Num(raw) => raw.parse::<u64>().ok().filter(|ms| *ms > 0),
                    _ => None,
                };
                let Some(parsed) = parsed else {
                    return Err(fail(Error::Request(
                        "\"deadline_ms\" must be a positive integer".into(),
                    )));
                };
                deadline_ms = Some(parsed);
            }
            "id" => match value {
                Json::Str(_) | Json::Num(_) => {} // captured above
                _ => {
                    return Err(fail(Error::Request(
                        "\"id\" must be a string or a number".into(),
                    )))
                }
            },
            other => {
                return Err(fail(Error::Request(format!(
                    "unknown field {other:?} (expected spec, id, seed, priority, deadline_ms)"
                ))));
            }
        }
    }
    let Some((spec, count)) = spec_count else {
        return Err(fail(Error::Request(
            "missing required field \"spec\"".into(),
        )));
    };
    Ok(Request {
        spec,
        count,
        seed,
        priority,
        deadline_ms,
        id_json,
    })
}

/// Renders one `result` response line.
pub fn result_line(r: &JobResult, include_proof: bool) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"type\":\"result\",\"id\":{},\"job\":{},\"spec\":\"{}\",\"seed\":{},\"verified\":{}",
        r.tag.as_deref().unwrap_or("null"),
        r.id,
        json_escape(&r.spec.to_string()),
        r.seed,
        r.verified
    );
    match &r.error {
        Some(error) => {
            // Code 4 marks a deadline miss so clients can tell "your
            // budget ran out" (do not retry as-is) from code 1's "the job
            // failed" without string-matching; `kind` carries the stable
            // one-word reason either way.
            let code = match error {
                JobError::DeadlineExceeded => 4,
                _ => 1,
            };
            let _ = write!(
                s,
                ",\"code\":{},\"kind\":\"{}\",\"error\":\"{}\"",
                code,
                error.kind(),
                json_escape(&error.to_string())
            );
        }
        None => {
            let _ = write!(
                s,
                ",\"cache_hit\":{},\"worker\":{},\"constraints\":{},\"shape_digest\":\"{}\",\"queue_ms\":{:.3},\"build_ms\":{:.3},\"prove_ms\":{:.3},\"verify_ms\":{:.3},\"proof_bytes\":{}",
                r.cache_hit,
                r.worker,
                r.num_constraints,
                hex(&r.shape_digest),
                r.queue_wait.as_secs_f64() * 1e3,
                r.build_time.as_secs_f64() * 1e3,
                r.prove_time.as_secs_f64() * 1e3,
                r.verify_time.as_secs_f64() * 1e3,
                r.proof_bytes.len()
            );
            if include_proof {
                let _ = write!(s, ",\"proof_hex\":\"{}\"", hex(&r.proof_bytes));
            }
        }
    }
    s.push('}');
    s
}

/// Renders one `error` response line; `id_json` is the request's echoed
/// id when it could be recovered from the malformed line. A shed error
/// additionally carries `retry_after_ms`, the server's backoff hint.
pub fn error_line(id_json: Option<&str>, error: &Error) -> String {
    let retry = match error {
        Error::Shed { retry_after_ms } => format!(",\"retry_after_ms\":{retry_after_ms}"),
        _ => String::new(),
    };
    format!(
        "{{\"type\":\"error\",\"id\":{},\"code\":{}{},\"error\":\"{}\"}}",
        id_json.unwrap_or("null"),
        error.exit_code(),
        retry,
        json_escape(&error.to_string())
    )
}

// ---------------------------------------------------------------------------
// The `zkvc-worker/v1` dialect: the messages a proving worker and its
// coordinator exchange over the same flat JSON-lines framing. A worker
// connects to a normal `zkvc serve --listen` endpoint and speaks
// `worker_register` as its first line; the session is then handed off to
// the coordinator and every later line on the connection is one of these
// messages. See the worker appendix of `docs/PROTOCOL.md`.
// ---------------------------------------------------------------------------

/// A message a registered worker sends its coordinator.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerMsg {
    /// Unsolicited liveness signal (~1 Hz); a coordinator declares a
    /// worker dead when these stop arriving.
    Heartbeat,
    /// A leased job was proved (or failed verification) on the worker.
    JobDone {
        /// The lease id the coordinator assigned in its `job` message.
        lease: u64,
        /// Whether the proof verified on the worker against the shipped
        /// (or locally re-derived) key material.
        verified: bool,
        /// Whether the worker's key material came from its own cache.
        cache_hit: bool,
        /// R1CS constraints proved.
        constraints: usize,
        /// Witness build time, milliseconds.
        build_ms: f64,
        /// Proving time, milliseconds.
        prove_ms: f64,
        /// Verification time, milliseconds.
        verify_ms: f64,
        /// The keyless proof envelope bytes (decoded from `proof_hex`).
        proof_bytes: Vec<u8>,
    },
    /// A leased job could not be completed on the worker.
    JobFailed {
        /// The lease id the coordinator assigned in its `job` message.
        lease: u64,
        /// Stable one-word failure class (mirrors [`JobError::kind`]).
        kind: String,
        /// Human-readable failure detail.
        error: String,
    },
}

/// A message a coordinator sends a registered worker.
#[derive(Clone, Debug, PartialEq)]
pub enum CoordMsg {
    /// The `ready` handshake every serve transport opens with (the worker
    /// sees it before it registers); carries the server's `proto`.
    Ready {
        /// The serve protocol identifier announced by the server.
        proto: String,
    },
    /// Registration accepted: the worker's coordinator-assigned id.
    Ack {
        /// The id the coordinator will know this worker by.
        worker: u64,
    },
    /// A compiled circuit shape, shipped once per worker per
    /// `(digest, backend, seed)`: the worker decodes the canonical bytes,
    /// checks the digest, and runs the deterministic setup so its keys
    /// are bit-identical to the coordinator's.
    Shape {
        /// Digest of the shipped shape (the encoding embeds it too; the
        /// worker cross-checks).
        shape_digest: [u8; 32],
        /// Backend to run setup for.
        backend: Backend,
        /// Setup seed (same derivation as the coordinator's cache).
        seed: u64,
        /// The canonical `zkvc_r1cs` shape encoding (decoded from hex).
        bytes: Vec<u8>,
    },
    /// A job lease: prove this spec deterministically and answer with
    /// `job_done` or `job_failed` carrying the same lease id.
    Job {
        /// Coordinator-assigned lease id, echoed in the answer.
        lease: u64,
        /// The spec string (same grammar as a serve request `spec`).
        spec: String,
        /// Statement seed.
        seed: u64,
        /// Statement id (0 for request-mode jobs, the job id for batch
        /// jobs) — part of the determinism contract.
        statement_id: usize,
        /// Digest of the shape this job proves (shipped earlier, or
        /// derivable locally from the spec).
        shape_digest: [u8; 32],
        /// Milliseconds of deadline budget remaining at dispatch, when
        /// the request carried a deadline.
        deadline_ms: Option<u64>,
    },
    /// Orderly goodbye: the worker should finish nothing more and exit.
    Shutdown,
}

/// Renders the worker registration line — the first thing a worker sends
/// after reading the server's `ready` line.
pub fn worker_register_line(capacity: usize) -> String {
    format!("{{\"type\":\"worker_register\",\"proto\":\"{WORKER_PROTO}\",\"capacity\":{capacity}}}")
}

/// Parses a request line as a worker registration: `None` when the line
/// is not a `worker_register` message at all (an ordinary request),
/// `Some(Err(..))` when it is one but malformed (wrong dialect, bad
/// capacity), and the worker's announced capacity otherwise.
pub fn parse_worker_register(line: &str) -> Option<Result<usize, String>> {
    let fields = parse_json_object(line).ok()?;
    match field(&fields, "type") {
        Some(Json::Str(t)) if t == "worker_register" => {}
        _ => return None,
    }
    let check = || -> Result<usize, String> {
        match field(&fields, "proto") {
            Some(Json::Str(p)) if p == WORKER_PROTO => {}
            Some(Json::Str(p)) => {
                return Err(format!(
                    "worker speaks {p:?}, this server speaks {WORKER_PROTO:?}"
                ))
            }
            _ => return Err("worker_register is missing its \"proto\" field".into()),
        }
        let capacity = match field(&fields, "capacity") {
            Some(Json::Num(raw)) => raw.parse::<usize>().ok().filter(|c| *c > 0),
            None => Some(1),
            _ => None,
        };
        capacity.ok_or_else(|| "\"capacity\" must be a positive integer".into())
    };
    Some(check())
}

/// Renders the registration acknowledgement.
pub fn worker_ack_line(worker: u64) -> String {
    format!("{{\"type\":\"worker_ack\",\"proto\":\"{WORKER_PROTO}\",\"worker\":{worker}}}")
}

/// Renders a worker heartbeat line.
pub fn heartbeat_line() -> String {
    "{\"type\":\"heartbeat\"}".to_string()
}

/// Renders a ship-once `shape` message.
pub fn shape_line(digest: &[u8; 32], backend: Backend, seed: u64, bytes: &[u8]) -> String {
    format!(
        "{{\"type\":\"shape\",\"shape_digest\":\"{}\",\"backend\":\"{backend}\",\"seed\":{seed},\"bytes_hex\":\"{}\"}}",
        hex(digest),
        hex(bytes)
    )
}

/// Renders a job-lease message.
pub fn job_line(
    lease: u64,
    spec: &JobSpec,
    seed: u64,
    statement_id: usize,
    shape_digest: &[u8; 32],
    deadline_ms: Option<u64>,
) -> String {
    let deadline = deadline_ms
        .map(|ms| format!(",\"deadline_ms\":{ms}"))
        .unwrap_or_default();
    format!(
        "{{\"type\":\"job\",\"lease\":{lease},\"spec\":\"{}\",\"seed\":{seed},\"statement_id\":{statement_id},\"shape_digest\":\"{}\"{deadline}}}",
        json_escape(&spec.to_string()),
        hex(shape_digest)
    )
}

/// Renders a `job_done` answer.
#[allow(clippy::too_many_arguments)]
pub fn job_done_line(
    lease: u64,
    verified: bool,
    cache_hit: bool,
    constraints: usize,
    build_ms: f64,
    prove_ms: f64,
    verify_ms: f64,
    proof_bytes: &[u8],
) -> String {
    format!(
        "{{\"type\":\"job_done\",\"lease\":{lease},\"verified\":{verified},\"cache_hit\":{cache_hit},\"constraints\":{constraints},\"build_ms\":{build_ms:.3},\"prove_ms\":{prove_ms:.3},\"verify_ms\":{verify_ms:.3},\"proof_hex\":\"{}\"}}",
        hex(proof_bytes)
    )
}

/// Renders a `job_failed` answer.
pub fn job_failed_line(lease: u64, kind: &str, error: &str) -> String {
    format!(
        "{{\"type\":\"job_failed\",\"lease\":{lease},\"kind\":\"{}\",\"error\":\"{}\"}}",
        json_escape(kind),
        json_escape(error)
    )
}

/// Renders the coordinator's orderly-goodbye message.
pub fn worker_shutdown_line() -> String {
    "{\"type\":\"worker_shutdown\"}".to_string()
}

fn parse_backend(token: &str) -> Option<Backend> {
    match token {
        "groth16" => Some(Backend::Groth16),
        "spartan" => Some(Backend::Spartan),
        _ => None,
    }
}

fn take_digest(fields: &[(String, Json)], key: &str) -> Result<[u8; 32], String> {
    let hex_str = match field(fields, key) {
        Some(Json::Str(s)) => s.as_str(),
        _ => return Err(format!("missing or non-string {key:?}")),
    };
    let bytes = unhex(hex_str).ok_or_else(|| format!("{key:?} is not valid hex"))?;
    <[u8; 32]>::try_from(bytes).map_err(|_| format!("{key:?} must be 32 bytes of hex"))
}

fn take_u64(fields: &[(String, Json)], key: &str) -> Result<u64, String> {
    match field(fields, key) {
        Some(Json::Num(raw)) => raw
            .parse::<u64>()
            .map_err(|_| format!("{key:?} must be a non-negative integer")),
        _ => Err(format!("missing or non-numeric {key:?}")),
    }
}

fn take_f64(fields: &[(String, Json)], key: &str) -> Result<f64, String> {
    match field(fields, key) {
        Some(Json::Num(raw)) => raw
            .parse::<f64>()
            .map_err(|_| format!("{key:?} must be a number")),
        _ => Err(format!("missing or non-numeric {key:?}")),
    }
}

fn take_bool(fields: &[(String, Json)], key: &str) -> Result<bool, String> {
    match field(fields, key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean {key:?}")),
    }
}

fn take_str<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    match field(fields, key) {
        Some(Json::Str(s)) => Ok(s.as_str()),
        _ => Err(format!("missing or non-string {key:?}")),
    }
}

/// Parses one line a worker sent its coordinator (post-registration).
pub fn parse_worker_msg(line: &str) -> Result<WorkerMsg, String> {
    let fields = parse_json_object(line)?;
    match take_str(&fields, "type")? {
        "heartbeat" => Ok(WorkerMsg::Heartbeat),
        "job_done" => Ok(WorkerMsg::JobDone {
            lease: take_u64(&fields, "lease")?,
            verified: take_bool(&fields, "verified")?,
            cache_hit: take_bool(&fields, "cache_hit")?,
            constraints: take_u64(&fields, "constraints")? as usize,
            build_ms: take_f64(&fields, "build_ms")?,
            prove_ms: take_f64(&fields, "prove_ms")?,
            verify_ms: take_f64(&fields, "verify_ms")?,
            proof_bytes: unhex(take_str(&fields, "proof_hex")?)
                .ok_or("\"proof_hex\" is not valid hex")?,
        }),
        "job_failed" => Ok(WorkerMsg::JobFailed {
            lease: take_u64(&fields, "lease")?,
            kind: take_str(&fields, "kind")?.to_string(),
            error: take_str(&fields, "error")?.to_string(),
        }),
        other => Err(format!("unknown worker message type {other:?}")),
    }
}

/// Parses one line a coordinator sent a worker.
pub fn parse_coord_msg(line: &str) -> Result<CoordMsg, String> {
    let fields = parse_json_object(line)?;
    match take_str(&fields, "type")? {
        "ready" => Ok(CoordMsg::Ready {
            proto: take_str(&fields, "proto")?.to_string(),
        }),
        "worker_ack" => Ok(CoordMsg::Ack {
            worker: take_u64(&fields, "worker")?,
        }),
        "shape" => Ok(CoordMsg::Shape {
            shape_digest: take_digest(&fields, "shape_digest")?,
            backend: parse_backend(take_str(&fields, "backend")?)
                .ok_or("\"backend\" must be \"groth16\" or \"spartan\"")?,
            seed: take_u64(&fields, "seed")?,
            bytes: unhex(take_str(&fields, "bytes_hex")?)
                .ok_or("\"bytes_hex\" is not valid hex")?,
        }),
        "job" => Ok(CoordMsg::Job {
            lease: take_u64(&fields, "lease")?,
            spec: take_str(&fields, "spec")?.to_string(),
            seed: take_u64(&fields, "seed")?,
            statement_id: take_u64(&fields, "statement_id")? as usize,
            shape_digest: take_digest(&fields, "shape_digest")?,
            deadline_ms: match field(&fields, "deadline_ms") {
                Some(_) => Some(take_u64(&fields, "deadline_ms")?),
                None => None,
            },
        }),
        "worker_shutdown" => Ok(CoordMsg::Shutdown),
        other => Err(format!("unknown coordinator message type {other:?}")),
    }
}

/// Minimal JSON parser for one flat object: string keys, and string /
/// number / boolean / null values. Nested objects and arrays are
/// rejected — the request grammar has no use for them, and refusing them
/// keeps the attack surface of a network-facing loop small.
pub fn parse_json_object(input: &str) -> Result<Vec<(String, Json)>, String> {
    let mut p = JsonParser {
        chars: input.char_indices().peekable(),
        input,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.eat('}') {
        p.expect_end()?;
        return Ok(fields);
    }
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.parse_value()?;
        fields.push((key, value));
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect('}')?;
        p.expect_end()?;
        return Ok(fields);
    }
}

struct JsonParser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    input: &'a str,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected {want:?} at byte {i}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of line")),
        }
    }

    fn expect_end(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            None => Ok(()),
            Some((i, c)) => Err(format!("trailing content at byte {i}: {c:?}")),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => return Ok(out),
                Some((i, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, h)) = self.chars.next() else {
                                return Err("truncated \\u escape".into());
                            };
                            let Some(digit) = h.to_digit(16) else {
                                return Err(format!("bad hex digit {h:?} in \\u escape"));
                            };
                            code = code * 16 + digit;
                        }
                        let Some(c) = char::from_u32(code) else {
                            return Err(format!(
                                "\\u{code:04x} is not a scalar value (surrogate pairs unsupported)"
                            ));
                        };
                        out.push(c);
                    }
                    Some((j, other)) => {
                        return Err(format!("unknown escape \\{other} at byte {j}"))
                    }
                    None => return Err(format!("dangling escape at byte {i}")),
                },
                Some((i, c)) if (c as u32) < 0x20 => {
                    return Err(format!("raw control character at byte {i}"))
                }
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.chars.peek().copied() {
            None => Err("expected a value, found end of line".into()),
            Some((_, '"')) => Ok(Json::Str(self.parse_string()?)),
            Some((_, '{')) | Some((_, '[')) => {
                Err("nested objects/arrays are not part of the request grammar".into())
            }
            Some((start, c)) if c == '-' || c.is_ascii_digit() => {
                let mut end = start;
                while let Some((i, c)) = self.chars.peek().copied() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        end = i + c.len_utf8();
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                let raw = &self.input[start..end];
                // Validate the token is at least f64-shaped.
                raw.parse::<f64>()
                    .map_err(|_| format!("bad number {raw:?}"))?;
                Ok(Json::Num(raw.to_string()))
            }
            Some((start, c)) if c.is_ascii_alphabetic() => {
                let mut end = start;
                while let Some((i, c)) = self.chars.peek().copied() {
                    if c.is_ascii_alphabetic() {
                        end = i + c.len_utf8();
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                match &self.input[start..end] {
                    "true" => Ok(Json::Bool(true)),
                    "false" => Ok(Json::Bool(false)),
                    "null" => Ok(Json::Null),
                    other => Err(format!("unknown literal {other:?}")),
                }
            }
            Some((i, c)) => Err(format!("unexpected {c:?} at byte {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use zkvc_core::matmul::Strategy;

    #[test]
    fn parses_full_and_minimal_requests() {
        let r = parse_request(r#"{"spec": "2x3x2:zkvc:s"}"#).unwrap();
        assert_eq!(
            r.spec,
            JobSpec::new(2, 3, 2).with_backend(zkvc_core::Backend::Spartan)
        );
        assert_eq!(r.count, 1);
        assert_eq!(r.seed, None);
        assert_eq!(r.priority, None);
        assert_eq!(r.id_json, None);

        let r = parse_request(
            r#"{"id": "req-1", "spec": "4x4x4:vanilla:x3", "seed": 42, "priority": "normal"}"#,
        )
        .unwrap();
        assert_eq!(r.spec.strategy(), Strategy::Vanilla);
        assert_eq!(r.count, 3);
        assert_eq!(r.seed, Some(42));
        assert_eq!(r.priority, Some(Priority::Normal));
        assert_eq!(r.id_json.as_deref(), Some("\"req-1\""));

        // Numeric ids echo as numbers; 64-bit seeds survive exactly.
        let r =
            parse_request(r#"{"id": 7, "spec": "2x2x2", "seed": 18446744073709551615}"#).unwrap();
        assert_eq!(r.id_json.as_deref(), Some("7"));
        assert_eq!(r.seed, Some(u64::MAX));

        // A deadline rides along in milliseconds.
        let r = parse_request(r#"{"spec": "2x2x2", "deadline_ms": 1500}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(1500));
    }

    #[test]
    fn rejects_malformed_requests_with_recovered_ids() {
        for (line, needle) in [
            ("not json at all", "expected '{'"),
            ("{\"spec\": \"2x2x2\"", "expected '}'"),
            (r#"{"spec": 7}"#, "must be a string"),
            (r#"{"spec": "2x2x2", "extra": 1}"#, "unknown field"),
            (r#"{"seed": 1}"#, "missing required field"),
            (r#"{"spec": "2x2x2", "seed": -4}"#, "non-negative integer"),
            (r#"{"spec": "2x2x2", "seed": 1.5}"#, "non-negative integer"),
            (r#"{"spec": "2x2x2", "priority": "urgent"}"#, "priority"),
            (r#"{"spec": "2x2x2", "deadline_ms": 0}"#, "positive integer"),
            (
                r#"{"spec": "2x2x2", "deadline_ms": "fast"}"#,
                "positive integer",
            ),
            (r#"{"spec": "bogus"}"#, "bad spec"),
            (r#"{"spec": ["2x2x2"]}"#, "nested"),
            (r#"{"spec": "2x2x2"} trailing"#, "trailing content"),
        ] {
            let (error, _) = parse_request(line).unwrap_err();
            assert_eq!(error.exit_code(), 2, "{line}");
            assert!(error.to_string().contains(needle), "{line}: {error}");
        }

        // The id is recovered even when another field is broken.
        let (_, id) = parse_request(r#"{"id": "x", "spec": 1}"#).unwrap_err();
        assert_eq!(id.as_deref(), Some("\"x\""));
    }

    #[test]
    fn bounded_reader_discards_whole_oversized_lines() {
        let long = format!("{}\nshort\n", "a".repeat(200));
        let mut input = Cursor::new(long.into_bytes());
        match read_bounded_line(&mut input, 64).unwrap() {
            Some(Err(LineReject::TooLarge(total))) => assert_eq!(total, 200),
            other => panic!("expected oversize, got {other:?}"),
        }
        // The stream is still line-aligned: the next read sees "short".
        assert_eq!(
            read_bounded_line(&mut input, 64).unwrap(),
            Some(Ok("short".to_string()))
        );
        assert_eq!(read_bounded_line(&mut input, 64).unwrap(), None);
    }

    #[test]
    fn bounded_reader_rejects_invalid_utf8() {
        let mut input = Cursor::new(b"\xff\xfe bad bytes\nok\n".to_vec());
        assert_eq!(
            read_bounded_line(&mut input, 64).unwrap(),
            Some(Err(LineReject::NotUtf8))
        );
        assert_eq!(
            read_bounded_line(&mut input, 64).unwrap(),
            Some(Ok("ok".to_string()))
        );
    }

    /// A reader that yields `WouldBlock` between real chunks, like a
    /// socket with a read deadline.
    struct Stutter {
        chunks: Vec<Option<Vec<u8>>>, // None => timeout
        buffered: Vec<u8>,
    }

    impl std::io::Read for Stutter {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            unreachable!("BufRead only")
        }
    }

    impl BufRead for Stutter {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.buffered.is_empty() {
                match self.chunks.pop() {
                    Some(Some(chunk)) => self.buffered = chunk,
                    Some(None) => {
                        return Err(io::Error::new(io::ErrorKind::WouldBlock, "deadline"))
                    }
                    None => {} // EOF: empty buffer
                }
            }
            Ok(&self.buffered)
        }
        fn consume(&mut self, amt: usize) {
            self.buffered.drain(..amt);
        }
    }

    #[test]
    fn line_reader_survives_timeouts_without_tearing_lines() {
        // The line arrives in three chunks with timeouts interleaved; the
        // reader must return WouldBlock twice and then the intact line.
        let mut input = Stutter {
            chunks: vec![
                Some(b"tail\n".to_vec()),
                Some(b"lo}\n{".to_vec()),
                None,
                Some(b"{\"hel".to_vec()),
                None,
            ],
            buffered: Vec::new(),
        };
        let mut reader = LineReader::new(64);
        assert_eq!(
            reader.read_line(&mut input).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(
            reader.read_line(&mut input).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(
            reader.read_line(&mut input).unwrap(),
            Some(Ok("{\"hello}".to_string()))
        );
        assert_eq!(
            reader.read_line(&mut input).unwrap(),
            Some(Ok("{tail".to_string()))
        );
        assert_eq!(reader.read_line(&mut input).unwrap(), None);
    }

    #[test]
    fn worker_messages_round_trip_through_their_lines() {
        assert_eq!(parse_worker_register(&worker_register_line(3)), Some(Ok(3)));
        assert_eq!(
            parse_worker_register(r#"{"spec": "2x2x2"}"#),
            None,
            "an ordinary request is not a registration"
        );
        match parse_worker_register(
            r#"{"type": "worker_register", "proto": "zkvc-worker/v9", "capacity": 1}"#,
        ) {
            Some(Err(reason)) => assert!(reason.contains("zkvc-worker/v1"), "{reason}"),
            other => panic!("expected a dialect rejection, got {other:?}"),
        }

        let digest = [7u8; 32];
        let spec = JobSpec::new(2, 3, 2);
        match parse_coord_msg(&job_line(9, &spec, 5, 0, &digest, Some(1500))).unwrap() {
            CoordMsg::Job {
                lease,
                spec: s,
                seed,
                statement_id,
                shape_digest,
                deadline_ms,
            } => {
                assert_eq!(lease, 9);
                assert_eq!(s, spec.to_string());
                assert_eq!(seed, 5);
                assert_eq!(statement_id, 0);
                assert_eq!(shape_digest, digest);
                assert_eq!(deadline_ms, Some(1500));
            }
            other => panic!("expected Job, got {other:?}"),
        }
        match parse_coord_msg(&shape_line(&digest, Backend::Groth16, 4, b"bytes")).unwrap() {
            CoordMsg::Shape {
                shape_digest,
                backend,
                seed,
                bytes,
            } => {
                assert_eq!(shape_digest, digest);
                assert_eq!(backend, Backend::Groth16);
                assert_eq!(seed, 4);
                assert_eq!(bytes, b"bytes");
            }
            other => panic!("expected Shape, got {other:?}"),
        }
        assert_eq!(
            parse_coord_msg(&worker_ack_line(2)).unwrap(),
            CoordMsg::Ack { worker: 2 }
        );
        assert_eq!(
            parse_coord_msg(&worker_shutdown_line()).unwrap(),
            CoordMsg::Shutdown
        );

        match parse_worker_msg(&job_done_line(9, true, false, 42, 1.0, 2.5, 0.5, b"proof")).unwrap()
        {
            WorkerMsg::JobDone {
                lease,
                verified,
                cache_hit,
                constraints,
                proof_bytes,
                ..
            } => {
                assert_eq!(lease, 9);
                assert!(verified);
                assert!(!cache_hit);
                assert_eq!(constraints, 42);
                assert_eq!(proof_bytes, b"proof");
            }
            other => panic!("expected JobDone, got {other:?}"),
        }
        match parse_worker_msg(&job_failed_line(9, "panicked", "boom \"quoted\"")).unwrap() {
            WorkerMsg::JobFailed { lease, kind, error } => {
                assert_eq!(lease, 9);
                assert_eq!(kind, "panicked");
                assert_eq!(error, "boom \"quoted\"");
            }
            other => panic!("expected JobFailed, got {other:?}"),
        }
        assert_eq!(
            parse_worker_msg(&heartbeat_line()).unwrap(),
            WorkerMsg::Heartbeat
        );
    }

    #[test]
    fn response_lines_parse_as_flat_json() {
        let error = error_line(Some("\"req\""), &Error::Request("boom".into()));
        let fields = parse_json_object(&error).unwrap();
        assert_eq!(field(&fields, "code"), Some(&Json::Num("2".to_string())));
        assert_eq!(field(&fields, "id"), Some(&Json::Str("req".to_string())));
    }
}
