//! The proving pool: a fixed set of worker threads fed by the sharded
//! work-stealing [`Scheduler`](crate::sched::Scheduler), sharing one
//! [`KeyCache`] so each circuit shape pays for setup exactly once across
//! the whole batch.
//!
//! Every job is fully deterministic given `(job seed, statement id)`:
//! inputs, the CRPC folding challenge, setup randomness (via the cache)
//! and prover randomness are all derived from them, so a batch re-run
//! reproduces byte-identical proofs regardless of how jobs land on
//! workers, which policy the scheduler runs, or who steals what. Proofs
//! additionally make a round trip through the
//! [`ProofEnvelope`](crate::ProofEnvelope) byte format before
//! verification, so the pool continuously exercises the cross-process
//! path.
//!
//! Failure containment: each job runs under `catch_unwind`, so a
//! panicking job (or a panicking proving backend) becomes a recorded
//! [`JobError::Panicked`] result instead of unwinding through the worker
//! and aborting the process — one bad job cannot take down a long-running
//! `zkvc serve`. Cooperative cancellation ([`ProvingPool::cancel`])
//! drains the backlog as [`JobError::Cancelled`] results promptly,
//! without proving them.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use core::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::{compile_shape, generate_witness_for, Circuit};
use zkvc_core::matmul::{MatMulBuilder, ZSource};
use zkvc_core::VerifierKey;
use zkvc_ff::Fr;
use zkvc_hash::{sha256, Transcript};
use zkvc_nn::circuit::ModelStatement;

use crate::cache::{CacheStats, KeyCache};
use crate::sched::{Priority, Scheduler, SchedulerPolicy};
use crate::serial::ProofEnvelope;
use crate::spec::JobSpec;
use crate::util::{hex, json_escape};

/// Why a job finished without a proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The pool was cancelled before (or while) the job ran; nothing was
    /// proved.
    Cancelled,
    /// The job's deadline passed before it finished: either it expired in
    /// the queue, or a kernel cancellation checkpoint stopped the prove
    /// mid-flight. Nothing usable was proved.
    DeadlineExceeded,
    /// The job panicked; the payload message is preserved. The worker
    /// thread survives and keeps serving other jobs.
    Panicked(String),
}

impl JobError {
    /// Stable one-word kind, used by machine-readable reports (panic
    /// payloads can carry addresses or line numbers and are not
    /// deterministic enough to diff).
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Cancelled => "cancelled",
            JobError::DeadlineExceeded => "deadline_exceeded",
            JobError::Panicked(_) => "panicked",
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "cancelled before proving"),
            JobError::DeadlineExceeded => write!(f, "deadline exceeded before the proof finished"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

/// Admission control and cancellation scope for one client session
/// multiplexed onto a shared [`ProvingPool`] (the socket listener in
/// [`crate::net`] creates one per connection).
///
/// Two jobs it does for the network layer:
///
/// * **Per-session backpressure** — [`ProvingPool::submit_for_session`]
///   blocks while the session already has `limit` jobs in flight
///   (queued or proving), so one flooding client fills its own pipe
///   instead of monopolising the pool's shared queue bound.
/// * **Cancel-on-disconnect** — [`SessionCtl::cancel`] marks the
///   session; its queued jobs drain as [`JobError::Cancelled`] without
///   proving, and the one in flight stops at its next checkpoint. Other
///   sessions are untouched.
///
/// [`SessionCtl::drain`] blocks until every in-flight job has been
/// *fully processed* (result sink included), which is what lets a
/// session thread flush all of its responses before emitting the
/// summary line.
#[derive(Debug)]
pub struct SessionCtl {
    id: u64,
    cancelled: AtomicBool,
    in_flight: Mutex<usize>,
    changed: Condvar,
    limit: usize,
}

impl SessionCtl {
    /// A session scope admitting at most `limit` in-flight jobs
    /// (clamped to at least 1); `id` tags this session's results.
    pub fn new(id: u64, limit: usize) -> Self {
        SessionCtl {
            id,
            cancelled: AtomicBool::new(false),
            in_flight: Mutex::new(0),
            changed: Condvar::new(),
            limit: limit.max(1),
        }
    }

    /// The session id carried in [`JobResult::session_id`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Marks the session cancelled: its queued jobs drain unproved, and
    /// producers blocked on the session bound are released.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        // Empty critical section orders the store before the wakeups.
        drop(self.in_flight.lock().expect("session state poisoned"));
        self.changed.notify_all();
    }

    /// `true` once [`SessionCtl::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Jobs submitted for this session and not yet fully processed.
    pub fn in_flight(&self) -> usize {
        *self.in_flight.lock().expect("session state poisoned")
    }

    /// Blocks while the session is at its in-flight limit (unless
    /// cancelled — drains must not deadlock), then claims a slot.
    fn acquire(&self) {
        let mut count = self.in_flight.lock().expect("session state poisoned");
        while *count >= self.limit && !self.is_cancelled() {
            count = self.changed.wait(count).expect("session state poisoned");
        }
        *count += 1;
    }

    /// Releases a slot after the job's result has been fully processed.
    fn release(&self) {
        let mut count = self.in_flight.lock().expect("session state poisoned");
        *count -= 1;
        drop(count);
        self.changed.notify_all();
    }

    /// Blocks until every in-flight job of this session has been fully
    /// processed (its result delivered through the pool's sink).
    pub fn drain(&self) {
        let mut count = self.in_flight.lock().expect("session state poisoned");
        while *count > 0 {
            count = self.changed.wait(count).expect("session state poisoned");
        }
    }
}

/// The outcome of one pooled proving job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Submission-order id (results are returned sorted by it).
    pub id: usize,
    /// The spec the job ran.
    pub spec: JobSpec,
    /// The determinism seed the job's statement was derived from (the
    /// pool seed for batch jobs; per-request for `zkvc serve` jobs).
    pub seed: u64,
    /// Serialised proof envelope (backend tag, public inputs, proof).
    /// Pool envelopes are keyless: Groth16 verification keys ship once per
    /// batch in [`BatchReport::key_table`]. Empty when `error` is set.
    pub proof_bytes: Vec<u8>,
    /// Whether the proof — after a bytes round trip — verified against the
    /// cached verifier key. Always `false` when `error` is set.
    pub verified: bool,
    /// Set when the job did not complete (cancelled, or the job panicked).
    pub error: Option<JobError>,
    /// Whether key material came from the cache (`false` exactly once per
    /// circuit shape per batch).
    pub cache_hit: bool,
    /// Digest of the circuit shape this job proved (keys into
    /// [`BatchReport::key_table`]; zero for jobs that never built a
    /// statement).
    pub shape_digest: [u8; 32],
    /// Index of the worker thread that ran (or drained) the job.
    pub worker: usize,
    /// Opaque caller reference carried through the pool untouched
    /// (`zkvc serve` uses it to echo request ids).
    pub tag: Option<String>,
    /// Time from submission until a worker picked the job up.
    pub queue_wait: Duration,
    /// Circuit synthesis time (witness generation included).
    pub build_time: Duration,
    /// Proving time against the cached key.
    pub prove_time: Duration,
    /// Verification time (from the deserialised envelope).
    pub verify_time: Duration,
    /// R1CS constraints proved.
    pub num_constraints: usize,
    /// Id of the [`SessionCtl`] scope the job was submitted under, when
    /// any (the socket listener routes results back to their session's
    /// connection by it).
    pub session_id: Option<u64>,
}

/// One entry of a batch's out-of-band key table: the verification key for
/// every distinct Groth16 circuit shape the batch proved, shipped once per
/// batch instead of embedded in every proof envelope (~330 B per proof).
#[derive(Clone, Debug)]
pub struct BatchKey {
    /// Circuit-shape digest the key belongs to.
    pub digest: [u8; 32],
    /// Setup seed the key was derived under (batch jobs share the pool
    /// seed; `zkvc serve` requests may override it per job).
    pub seed: u64,
    /// Serialised Groth16 verification key
    /// ([`zkvc_groth16::VerifyingKey::to_bytes`]).
    pub vk_bytes: Vec<u8>,
}

/// Aggregate outcome of a batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job results, sorted by id.
    pub results: Vec<JobResult>,
    /// Wall-clock time from pool creation to the last worker finishing.
    pub wall_time: Duration,
    /// Number of worker threads used.
    pub workers: usize,
    /// The pool's determinism seed.
    pub seed: u64,
    /// Key-cache counters at the end of the batch.
    pub cache: CacheStats,
    /// Groth16 verification keys for the batch's circuit shapes: job
    /// envelopes are keyless, so a consumer verifies them against this
    /// table (Spartan preprocessing is derived from the circuit structure
    /// and has no wire form). Sorted by digest for deterministic reports.
    pub key_table: Vec<BatchKey>,
    /// Worker threads that died outside the per-job panic guard (should
    /// be zero; non-zero means some results may be missing).
    pub worker_panics: usize,
}

impl BatchReport {
    /// `true` iff every job's proof verified.
    pub fn all_verified(&self) -> bool {
        !self.results.is_empty() && self.results.iter().all(|r| r.verified)
    }

    /// End-to-end throughput in jobs per second.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.results.len() as f64 / secs
        }
    }

    /// Fraction of jobs served key material from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.results.iter().filter(|r| r.cache_hit).count() as f64 / self.results.len() as f64
        }
    }

    /// Jobs drained as cancelled.
    pub fn cancelled_jobs(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.error, Some(JobError::Cancelled)))
            .count()
    }

    /// Jobs stopped because their deadline passed.
    pub fn deadline_jobs(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.error, Some(JobError::DeadlineExceeded)))
            .count()
    }

    /// Jobs that panicked (and were contained).
    pub fn panicked_jobs(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.error, Some(JobError::Panicked(_))))
            .count()
    }

    /// Sum of per-job proving times (CPU time, not wall time).
    pub fn total_prove_time(&self) -> Duration {
        self.results.iter().map(|r| r.prove_time).sum()
    }

    /// Mean queue wait of the jobs selected by `pred` (e.g. only the
    /// high-priority ones), or zero when none match.
    pub fn mean_queue_wait(&self, pred: impl Fn(&JobResult) -> bool) -> Duration {
        let waits: Vec<Duration> = self
            .results
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.queue_wait)
            .collect();
        if waits.is_empty() {
            Duration::ZERO
        } else {
            waits.iter().sum::<Duration>() / waits.len() as u32
        }
    }

    /// Renders the per-job metrics table plus aggregate lines, as printed
    /// by the `zkvc` CLI.
    pub fn render_table(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {title} ==");
        let _ = writeln!(
            out,
            "{:>4} {:<12} {:<12} {:<8} {:>6} {:>4} {:>10} {:>10} {:>10} {:>9} {:>6}",
            "job",
            "shape",
            "strategy",
            "backend",
            "cache",
            "wkr",
            "build(ms)",
            "prove(ms)",
            "verify(ms)",
            "proof(B)",
            "ok"
        );
        for r in &self.results {
            let ok = match (&r.error, r.verified) {
                (Some(JobError::Cancelled), _) => "cxl",
                (Some(JobError::DeadlineExceeded), _) => "ddl",
                (Some(JobError::Panicked(_)), _) => "panic",
                (None, true) => "yes",
                (None, false) => "NO",
            };
            let _ = writeln!(
                out,
                "{:>4} {:<12} {:<12} {:<8} {:>6} {:>4} {:>10.2} {:>10.2} {:>10.2} {:>9} {:>6}",
                r.id,
                r.spec.shape_label(),
                r.spec.strategy().token(),
                r.spec.backend().name(),
                if r.cache_hit { "hit" } else { "miss" },
                r.worker,
                r.build_time.as_secs_f64() * 1e3,
                r.prove_time.as_secs_f64() * 1e3,
                r.verify_time.as_secs_f64() * 1e3,
                r.proof_bytes.len(),
                ok,
            );
        }
        let _ = writeln!(
            out,
            "jobs: {}  workers: {}  wall: {:.3}s  throughput: {:.2} jobs/s",
            self.results.len(),
            self.workers,
            self.wall_time.as_secs_f64(),
            self.jobs_per_sec()
        );
        let cancelled = self.cancelled_jobs();
        let deadline = self.deadline_jobs();
        let panicked = self.panicked_jobs();
        if cancelled > 0 || deadline > 0 || panicked > 0 || self.worker_panics > 0 {
            let _ = writeln!(
                out,
                "incidents: {} cancelled, {} past deadline, {} panicked job(s), {} worker thread panic(s)",
                cancelled, deadline, panicked, self.worker_panics
            );
        }
        // The percentage must agree with the counters on the same line, so
        // both come from the cache's lifetime stats (a shared or pre-warmed
        // cache can have seen lookups outside this batch); the batch-local
        // rate is reported separately when it differs.
        let _ = writeln!(
            out,
            "key cache: {} hits / {} misses ({:.0}% hit rate), {} entries",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.entries
        );
        if !self.key_table.is_empty() {
            let total: usize = self.key_table.iter().map(|k| k.vk_bytes.len()).sum();
            let _ = writeln!(
                out,
                "key table: {} groth16 vk(s), {} B shipped once per batch (job envelopes are keyless)",
                self.key_table.len(),
                total
            );
        }
        if (self.cache.hit_rate() - self.cache_hit_rate()).abs() > 1e-9 {
            let _ = writeln!(
                out,
                "this batch: {:.0}% of jobs hit the cache",
                self.cache_hit_rate() * 100.0
            );
        }
        out
    }

    /// Machine-readable batch report containing **only deterministic
    /// fields** (no timings, no cache hit/miss attribution — which job
    /// wins the setup race depends on scheduling): job ids, specs,
    /// verdicts, error kinds, constraint counts, proof digests, and the
    /// key table. Two runs of the same batch with the same seed must
    /// produce byte-identical output — the CI determinism step runs the
    /// batch twice and diffs exactly this.
    pub fn render_report_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"zkvc-batch-report/v1\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"jobs\": [");
        for (i, r) in self.results.iter().enumerate() {
            let error = match &r.error {
                None => "null".to_string(),
                Some(e) => format!("\"{}\"", e.kind()),
            };
            let _ = writeln!(
                out,
                "    {{\"id\": {}, \"spec\": \"{}\", \"seed\": {}, \"verified\": {}, \"error\": {}, \"constraints\": {}, \"proof_sha256\": \"{}\", \"shape_digest\": \"{}\"}}{}",
                r.id,
                json_escape(&r.spec.to_string()),
                r.seed,
                r.verified,
                error,
                r.num_constraints,
                hex(&sha256(&r.proof_bytes)),
                hex(&r.shape_digest),
                if i + 1 < self.results.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"key_table\": [");
        for (i, k) in self.key_table.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"digest\": \"{}\", \"seed\": {}, \"vk_sha256\": \"{}\"}}{}",
                hex(&k.digest),
                k.seed,
                hex(&sha256(&k.vk_bytes)),
                if i + 1 < self.key_table.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Configuration for a [`ProvingPool`]; the two-argument constructors
/// cover the common cases, this covers the rest.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Determinism seed: batch jobs derive statements from it.
    pub seed: u64,
    /// Backpressure bound: `submit` blocks while this many jobs are
    /// queued and unclaimed.
    pub queue_bound: usize,
    /// Queueing discipline (work-stealing by default; single-queue is the
    /// bench baseline).
    pub policy: SchedulerPolicy,
    /// Whether results accumulate for [`ProvingPool::join`]'s report. A
    /// resident `zkvc serve` pool sets this to `false` and consumes
    /// results through its sink instead, so a long-lived process does not
    /// hold every proof it ever made.
    pub retain_results: bool,
}

impl PoolConfig {
    /// Defaults: `workers` threads, seed 0, a 1024-job queue bound,
    /// work-stealing, results retained.
    pub fn new(workers: usize) -> Self {
        PoolConfig {
            workers: workers.max(1),
            seed: 0,
            queue_bound: 1024,
            policy: SchedulerPolicy::WorkStealing,
            retain_results: true,
        }
    }

    /// Sets the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the backpressure bound (clamped to at least 1).
    pub fn queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound.max(1);
        self
    }

    /// Sets the queueing discipline.
    pub fn policy(mut self, policy: SchedulerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets whether results accumulate for the final report.
    pub fn retain_results(mut self, retain: bool) -> Self {
        self.retain_results = retain;
        self
    }
}

/// A callback invoked by worker threads as each result lands, in
/// completion order. Used by `zkvc serve` to stream responses.
pub type ResultSink = Arc<dyn Fn(&JobResult) + Send + Sync>;

/// Per-job submission options for [`ProvingPool::submit`] — the one
/// submission surface, replacing the accreted
/// `submit`/`submit_prioritized`/`submit_request`/`submit_for_session`
/// method family. Build with the fluent setters; the default is a plain
/// batch job at its spec-derived priority:
///
/// ```rust
/// use zkvc_runtime::{JobOptions, JobSpec, Priority, ProvingPool};
/// let pool = ProvingPool::new(1);
/// // A batch job, spec-derived priority.
/// pool.submit(JobSpec::new(2, 2, 2), JobOptions::new());
/// // A serve-style request: own seed (statement id pinned to 0), an
/// // echoed tag, an explicit priority, and a deadline.
/// pool.submit(
///     JobSpec::new(2, 2, 2),
///     JobOptions::new()
///         .seed(7)
///         .tag("req-1")
///         .priority(Priority::High)
///         .deadline(std::time::Duration::from_secs(30)),
/// );
/// pool.join();
/// ```
#[derive(Clone, Debug, Default)]
pub struct JobOptions {
    priority: Option<Priority>,
    seed: Option<u64>,
    session: Option<Arc<SessionCtl>>,
    deadline: Option<Duration>,
    tag: Option<String>,
}

impl JobOptions {
    /// Default options: batch mode (pool seed, statement id = job id),
    /// spec-derived priority, no session, no deadline, no tag.
    pub fn new() -> Self {
        JobOptions::default()
    }

    /// Overrides the spec-derived scheduling priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Makes this a *request-mode* job with its own determinism seed: the
    /// statement id is pinned to 0, so the proof is exactly what
    /// `zkvc prove --spec S --seed N` emits and `zkvc verify` expects —
    /// the `zkvc serve` semantics. Without this, the job is *batch-mode*:
    /// it derives its statement from the pool seed and its job id.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Scopes the job to a client session: submission blocks on the
    /// session's in-flight limit first, the job honours the session's
    /// cancellation, and the result carries the session id.
    pub fn session(mut self, session: Arc<SessionCtl>) -> Self {
        self.session = Some(session);
        self
    }

    /// Gives the job a deadline, measured from admission: once it passes,
    /// the job is answered [`JobError::DeadlineExceeded`] — unstarted jobs
    /// without proving, a running prove at its next kernel checkpoint.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches an opaque tag, echoed untouched in [`JobResult::tag`]
    /// (`zkvc serve` uses it to echo request ids).
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }

    /// [`Self::tag`] taking an `Option` — convenience for call sites that
    /// already hold one (the serve request parser).
    pub fn tag_opt(mut self, tag: Option<String>) -> Self {
        self.tag = tag;
        self
    }

    /// [`Self::deadline`] taking an `Option` — convenience for call sites
    /// that already hold one.
    pub fn deadline_opt(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }
}

pub(crate) struct QueuedJob {
    /// Submission-order id (orders the report).
    pub(crate) id: usize,
    /// Statement derivation id: equals `id` for batch jobs; pinned to 0
    /// for `zkvc serve` requests so their proofs match what
    /// `zkvc prove --spec S --seed N` produces and `zkvc verify` expects.
    pub(crate) statement_id: usize,
    /// Determinism seed for this job's statement and prover randomness.
    pub(crate) seed: u64,
    pub(crate) spec: JobSpec,
    pub(crate) tag: Option<String>,
    /// The session scope the job belongs to (socket sessions only): its
    /// cancellation is honoured alongside the pool-wide flag, and its
    /// in-flight slot is released once the result has been processed.
    pub(crate) session: Option<Arc<SessionCtl>>,
    pub(crate) enqueued: Instant,
    /// Absolute time after which the job must stop (converted from the
    /// request's `deadline_ms` at admission). Enforced at worker pickup,
    /// after statement build, and — via the [`zkvc_ff::cancel`]
    /// checkpoints — mid-MSM and mid-FFT inside the prove itself.
    pub(crate) deadline: Option<Instant>,
    /// The scheduling class the job was admitted at, kept on the job so a
    /// coordinator can re-queue a leased job (after a remote worker dies)
    /// at its original priority.
    pub(crate) priority: Priority,
}

impl QueuedJob {
    /// `true` when either the whole pool or this job's session has been
    /// cancelled.
    fn is_cancelled(&self, sched: &Scheduler<QueuedJob>) -> bool {
        sched.is_cancelled() || self.session.as_ref().is_some_and(|s| s.is_cancelled())
    }

    /// The id of the session the job is scoped to, if any.
    pub(crate) fn session_id(&self) -> Option<u64> {
        self.session.as_ref().map(|s| s.id())
    }
}

/// The shared result-delivery tail of every job, local or remote: sink
/// first, then retention, then the session slot, then the global
/// in-flight count. Split out of the worker loop so the distributed
/// coordinator delivers remotely-proved results through the identical
/// path — which is what guarantees each admitted job is answered exactly
/// once, whoever proves it.
struct Deliverer {
    sink: Option<ResultSink>,
    results: Arc<Mutex<Vec<JobResult>>>,
    retain: bool,
    in_flight: Arc<AtomicUsize>,
}

impl Deliverer {
    fn deliver(&self, session: Option<Arc<SessionCtl>>, result: JobResult) {
        if let Some(sink) = &self.sink {
            sink(&result);
        }
        if self.retain {
            self.results.lock().expect("results poisoned").push(result);
        }
        // Release only after the sink ran: a session drain returning
        // means every response line for that session has been written.
        if let Some(session) = session {
            session.release();
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A worker pool proving jobs concurrently with shared key caching.
pub struct ProvingPool {
    sched: Arc<Scheduler<QueuedJob>>,
    handles: Vec<thread::JoinHandle<()>>,
    results: Arc<Mutex<Vec<JobResult>>>,
    cache: Arc<KeyCache>,
    deliverer: Arc<Deliverer>,
    workers: usize,
    seed: u64,
    next_id: AtomicUsize,
    started: Instant,
    /// Jobs admitted and not yet fully processed (sink included), across
    /// *all* sessions — the load signal the network layer's global
    /// admission bound sheds on.
    in_flight: Arc<AtomicUsize>,
}

impl std::fmt::Debug for ProvingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvingPool")
            .field("workers", &self.workers)
            .field("seed", &self.seed)
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ProvingPool {
    /// A pool with `workers` threads, a fresh key cache and seed 0.
    pub fn new(workers: usize) -> Self {
        Self::with_cache(workers, 0, Arc::new(KeyCache::new()))
    }

    /// A pool with `workers` threads, the given determinism seed, and a
    /// (possibly shared) key cache.
    pub fn with_cache(workers: usize, seed: u64, cache: Arc<KeyCache>) -> Self {
        Self::configured(PoolConfig::new(workers).seed(seed), cache, None)
    }

    /// The fully-configurable constructor: scheduling policy, queue
    /// bound, result retention, and an optional per-result sink invoked
    /// from worker threads as each job completes.
    // The pool owns its config and cache handle; constructors take them
    // by value so call sites read as hand-offs.
    #[allow(clippy::needless_pass_by_value)]
    pub fn configured(config: PoolConfig, cache: Arc<KeyCache>, sink: Option<ResultSink>) -> Self {
        let workers = config.workers.max(1);
        let sched = Arc::new(Scheduler::<QueuedJob>::new(
            workers,
            config.queue_bound,
            config.policy,
        ));
        let results = Arc::new(Mutex::new(Vec::new()));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let deliverer = Arc::new(Deliverer {
            sink,
            results: Arc::clone(&results),
            retain: config.retain_results,
            in_flight: Arc::clone(&in_flight),
        });
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let sched = Arc::clone(&sched);
            let cache = Arc::clone(&cache);
            let deliverer = Arc::clone(&deliverer);
            handles.push(
                thread::Builder::new()
                    .name(format!("zkvc-worker-{w}"))
                    .spawn(move || {
                        while let Some(job) = sched.next(w) {
                            let session = job.session.clone();
                            let result = execute_job(&job, w, &cache, &sched);
                            deliverer.deliver(session, result);
                        }
                    })
                    .expect("spawn pool worker"),
            );
        }
        ProvingPool {
            sched,
            handles,
            results,
            cache,
            deliverer,
            workers,
            seed: config.seed,
            next_id: AtomicUsize::new(0),
            started: Instant::now(),
            in_flight,
        }
    }

    /// The pool's one submission entry point: enqueues a job described by
    /// `options`, returning its id (ids are assigned in submission order
    /// and order the results of [`Self::join`]). Blocks on the session's
    /// in-flight limit first (when a session is set), then on the pool's
    /// shared queue bound.
    ///
    /// Without [`JobOptions::seed`] the job is *batch-mode*: its
    /// statement derives from the pool seed and its job id. With it, the
    /// job is *request-mode* (the `zkvc serve` semantics): its statement
    /// derives from the given seed with the statement id pinned to 0, so
    /// the proof is exactly what `zkvc prove --spec S --seed N` emits and
    /// `zkvc verify --spec S --seed N` expects.
    pub fn submit(&self, spec: JobSpec, options: JobOptions) -> usize {
        let JobOptions {
            priority,
            seed,
            session,
            deadline,
            tag,
        } = options;
        // Per-session backpressure gates admission *before* the job id is
        // assigned and before the deadline clock starts.
        if let Some(session) = &session {
            session.acquire();
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let (seed, statement_id) = match seed {
            Some(seed) => (seed, 0),
            None => (self.seed, id),
        };
        self.enqueue(QueuedJob {
            id,
            statement_id,
            seed,
            spec,
            tag,
            session,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            priority: priority.unwrap_or_else(|| spec.priority()),
        })
    }

    /// Enqueues a batch-mode job with an explicit priority.
    #[deprecated(note = "use submit(spec, JobOptions::new().priority(..))")]
    pub fn submit_prioritized(&self, spec: JobSpec, priority: Priority) -> usize {
        self.submit(spec, JobOptions::new().priority(priority))
    }

    /// Enqueues a request-mode job (own seed, statement id 0, echoed tag).
    #[deprecated(note = "use submit(spec, JobOptions::new().seed(..).tag_opt(..))")]
    pub fn submit_request(
        &self,
        spec: JobSpec,
        seed: u64,
        priority: Priority,
        tag: Option<String>,
    ) -> usize {
        self.submit(
            spec,
            JobOptions::new().seed(seed).priority(priority).tag_opt(tag),
        )
    }

    /// Enqueues a request-mode job with an optional deadline.
    #[deprecated(note = "use submit(spec, JobOptions::new().seed(..).deadline_opt(..))")]
    pub fn submit_request_with_deadline(
        &self,
        spec: JobSpec,
        seed: u64,
        priority: Priority,
        tag: Option<String>,
        deadline: Option<Duration>,
    ) -> usize {
        self.submit(
            spec,
            JobOptions::new()
                .seed(seed)
                .priority(priority)
                .tag_opt(tag)
                .deadline_opt(deadline),
        )
    }

    /// Enqueues a request-mode job scoped to a client session.
    #[deprecated(note = "use submit(spec, JobOptions::new().seed(..).session(..))")]
    pub fn submit_for_session(
        &self,
        spec: JobSpec,
        seed: u64,
        priority: Priority,
        tag: Option<String>,
        session: Arc<SessionCtl>,
    ) -> usize {
        self.submit(
            spec,
            JobOptions::new()
                .seed(seed)
                .priority(priority)
                .tag_opt(tag)
                .session(session),
        )
    }

    /// Enqueues a session-scoped request-mode job with an optional
    /// deadline; the deadline clock starts *after* the session's
    /// admission gate admits the job.
    #[deprecated(
        note = "use submit(spec, JobOptions::new().seed(..).session(..).deadline_opt(..))"
    )]
    pub fn submit_for_session_with_deadline(
        &self,
        spec: JobSpec,
        seed: u64,
        priority: Priority,
        tag: Option<String>,
        session: Arc<SessionCtl>,
        deadline: Option<Duration>,
    ) -> usize {
        self.submit(
            spec,
            JobOptions::new()
                .seed(seed)
                .priority(priority)
                .tag_opt(tag)
                .session(session)
                .deadline_opt(deadline),
        )
    }

    /// Shared tail of every submit path: counts the job in flight and
    /// hands it to the scheduler at the priority recorded on the job.
    fn enqueue(&self, job: QueuedJob) -> usize {
        let id = job.id;
        let priority = job.priority;
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.sched.submit(job, priority).is_err() {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            panic!("pool already joined");
        }
        id
    }

    /// Claims the next queued job for an external executor (the
    /// distributed coordinator's dispatcher), competing with the local
    /// worker threads through the same scheduler lane mechanics. Blocks
    /// until a job is available; `None` once the queue is closed and
    /// drained. The leased job stays counted in flight — whoever holds it
    /// must eventually [`Self::deliver`] a result for it (or
    /// [`Self::requeue`] it).
    pub(crate) fn lease(&self, lane: usize) -> Option<QueuedJob> {
        self.sched.next(lane)
    }

    /// Puts a leased job back on the queue at its original priority —
    /// the failure-handling path when a remote worker dies with leases
    /// outstanding. Does *not* touch the in-flight count (the job never
    /// stopped being in flight). Returns the job back as `Err` when the
    /// queue has already closed; the caller must then execute it inline
    /// (via [`Self::execute_locally`]) so the job is still answered.
    // The Err variant hands the whole job back by value on purpose: the
    // caller must still answer it, so losing it to a boxing round-trip
    // buys nothing.
    #[allow(clippy::result_large_err)]
    pub(crate) fn requeue(&self, job: QueuedJob) -> Result<(), QueuedJob> {
        let priority = job.priority;
        self.sched.submit(job, priority)
    }

    /// Runs a job on the caller's thread under the pool's standard
    /// cancellation + panic guards (the coordinator's inline fallback,
    /// and its cheap way to answer a job that is already cancelled or
    /// past its deadline).
    pub(crate) fn execute_locally(&self, job: &QueuedJob, worker: usize) -> JobResult {
        execute_job(job, worker, &self.cache, &self.sched)
    }

    /// The reason `job` must stop right now, if any (deadline first, then
    /// pool/session cancellation).
    pub(crate) fn job_status(&self, job: &QueuedJob) -> Option<JobError> {
        job_status(job, &self.sched)
    }

    /// Delivers a result for a leased job through the identical tail the
    /// local workers use: sink, retention, session slot, in-flight count.
    pub(crate) fn deliver(&self, session: Option<Arc<SessionCtl>>, result: JobResult) {
        self.deliverer.deliver(session, result);
    }

    /// Builds the terminal error result for a leased job without running
    /// it — the coordinator's answer when a remote worker reports a job
    /// failure (deterministic, so retrying elsewhere would just repeat
    /// it).
    #[allow(clippy::unused_self)] // kept on the pool: it owns the JobResult shape
    pub(crate) fn failed_result(
        &self,
        job: &QueuedJob,
        worker: usize,
        error: JobError,
    ) -> JobResult {
        aborted_result(job, worker, job.enqueued.elapsed(), Duration::ZERO, error)
    }

    /// Closes the queue without joining the worker threads: no new
    /// submissions are accepted, [`Self::lease`] returns `None` once the
    /// backlog drains. The coordinator uses this to stop its dispatcher
    /// before the pool is finally joined (close is idempotent — the later
    /// [`Self::join`] closes again harmlessly).
    pub(crate) fn close_intake(&self) {
        self.sched.close();
    }

    /// Requests cooperative cancellation: jobs not yet started are
    /// drained as [`JobError::Cancelled`] results (promptly — no proving),
    /// the job in flight stops at its next checkpoint, and any producer
    /// blocked on backpressure is released.
    pub fn cancel(&self) {
        self.sched.cancel();
    }

    /// `true` once the pool has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.sched.is_cancelled()
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.sched.queued()
    }

    /// Jobs admitted (any submit path, any session) and not yet fully
    /// processed — queued, proving, or mid-sink. The network layer sheds
    /// new requests when this crosses its global admission bound.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// The shared key cache (e.g. to pre-warm it or to read stats).
    pub fn cache(&self) -> &Arc<KeyCache> {
        &self.cache
    }

    /// The pool's determinism seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Closes the queue, waits for every submitted job to finish, and
    /// returns the batch report with results sorted by job id.
    pub fn join(mut self) -> BatchReport {
        self.sched.close();
        let mut worker_panics = 0;
        for handle in self.handles.drain(..) {
            // A worker dying outside the per-job guard (sink or results
            // mutex panic) is recorded, not propagated: the report must
            // come back even from a degraded pool.
            if handle.join().is_err() {
                worker_panics += 1;
            }
        }
        let mut results = std::mem::take(&mut *self.results.lock().expect("results poisoned"));
        results.sort_by_key(|r| r.id);
        // Only the (shape, seed) pairs this batch actually proved: a
        // shared or pre-warmed cache may hold keys for unrelated shapes,
        // which must not leak into this report's table.
        let batch_keys: HashSet<([u8; 32], u64)> = results
            .iter()
            .filter(|r| r.error.is_none())
            .map(|r| (r.shape_digest, r.seed))
            .collect();
        let mut key_table: Vec<BatchKey> = self
            .cache
            .entries()
            .iter()
            .filter(|entry| batch_keys.contains(&(entry.digest, entry.setup_seed)))
            .filter_map(|entry| match &entry.verifier {
                VerifierKey::Groth16(vk) => Some(BatchKey {
                    digest: entry.digest,
                    seed: entry.setup_seed,
                    vk_bytes: vk.to_bytes(),
                }),
                VerifierKey::Spartan(_) => None,
            })
            .collect();
        // The cache map iterates in hash order; reports must not.
        key_table.sort_by_key(|k| (k.digest, k.seed));
        BatchReport {
            wall_time: self.started.elapsed(),
            workers: self.workers,
            seed: self.seed,
            cache: self.cache.stats(),
            results,
            key_table,
            worker_panics,
        }
    }
}

impl Drop for ProvingPool {
    fn drop(&mut self) {
        // `join` drained the handles already; this path only fires when
        // the pool is abandoned (early return, panic). Cancel so workers
        // drain the backlog without proving, then wait for them to exit
        // so no detached thread keeps burning CPU on a discarded batch.
        if self.handles.is_empty() {
            return;
        }
        self.sched.cancel();
        self.sched.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Derives the fixed CRPC folding challenge shared by every job with the
/// same (seed, statement shape) — required so same-shape jobs share one
/// circuit template and therefore one cache entry. This is the paper's
/// "challenge sampled at setup time" Groth16 flow (`ZSource::Fixed`); see
/// the soundness note on [`zkvc_core::matmul::ZSource`].
fn fixed_z(seed: u64, spec: &JobSpec) -> zkvc_ff::Fr {
    let mut t = Transcript::new(b"zkvc-runtime-template-z");
    t.append_u64(b"seed", seed);
    t.append_bytes(b"shape", spec.shape_label().as_bytes());
    t.append_bytes(b"strategy", spec.strategy().token().as_bytes());
    t.challenge_field(b"z")
}

/// Builds the deterministic statement for `(seed, id, spec)` as a *lazy*
/// [`Circuit`] trait object: matmul inputs (or a model statement's
/// configuration) are derived from the seeded per-job rng, and — for CRPC
/// strategies — the shape-level fixed folding challenge. **No constraint
/// synthesis happens here**: the returned circuit drives the two-pass
/// pipeline on demand (shape pass for setup/digests, witness pass for
/// proving). This is exactly the statement the pool proves for job `id`,
/// so external tools (the `zkvc` CLI's `verify` subcommand) can
/// reconstruct the circuit a proof refers to, including its expected
/// public outputs.
pub fn build_statement(seed: u64, id: usize, spec: &JobSpec) -> Box<dyn Circuit> {
    let input_seed = seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match spec {
        JobSpec::MatMul {
            dims,
            strategy,
            public_outputs,
            ..
        } => {
            let mut rng = StdRng::seed_from_u64(input_seed);
            let mut builder = MatMulBuilder::new(dims.0, dims.1, dims.2)
                .strategy(*strategy)
                .public_outputs(*public_outputs);
            if strategy.uses_crpc() {
                builder = builder.z_source(ZSource::Fixed(fixed_z(seed, spec)));
            }
            Box::new(builder.build_circuit_random(&mut rng))
        }
        JobSpec::Model {
            preset, strategy, ..
        } => {
            let (model, schedule) = preset.config();
            // The challenge is shape-level (shared across ids) while the
            // weights are per-id, so a batch of model jobs shares one
            // circuit shape and therefore one cache entry.
            let circuit =
                ModelStatement::new(model, schedule, *strategy, input_seed, fixed_z(seed, spec));
            Box::new(circuit)
        }
    }
}

/// The pool's acceptance predicate for a proof that claims to prove a
/// statement with the given expected public outputs: the envelope must
/// decode, its public inputs must be exactly those outputs (statement
/// binding — a replayed same-shape proof for a different `Y` dies here;
/// trivially satisfied for circuits with no public outputs), and the proof
/// must pass the supplied cryptographic check.
pub(crate) fn envelope_verifies(
    bytes: &[u8],
    expected_publics: &[Fr],
    verify: impl FnOnce(&ProofEnvelope) -> bool,
) -> bool {
    match ProofEnvelope::from_bytes(bytes) {
        Some(envelope) => envelope.public_inputs == expected_publics && verify(&envelope),
        None => false,
    }
}

/// A result for a job that never proved anything (cancelled or panicked).
fn aborted_result(
    job: &QueuedJob,
    worker: usize,
    queue_wait: Duration,
    build_time: Duration,
    error: JobError,
) -> JobResult {
    JobResult {
        id: job.id,
        spec: job.spec,
        seed: job.seed,
        proof_bytes: Vec::new(),
        verified: false,
        error: Some(error),
        cache_hit: false,
        shape_digest: [0u8; 32],
        worker,
        tag: job.tag.clone(),
        queue_wait,
        build_time,
        prove_time: Duration::ZERO,
        verify_time: Duration::ZERO,
        num_constraints: 0,
        session_id: job.session.as_ref().map(|s| s.id()),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The reason this job must stop right now, if any. The deadline is
/// checked first: a job that is both cancelled and past its deadline
/// reports the deadline (a draining server that outlives a job's budget
/// must still answer `deadline_exceeded`, not a generic cancel).
fn job_status(job: &QueuedJob, sched: &Scheduler<QueuedJob>) -> Option<JobError> {
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        Some(JobError::DeadlineExceeded)
    } else if job.is_cancelled(sched) {
        Some(JobError::Cancelled)
    } else {
        None
    }
}

/// Runs one job under the cancellation + panic guards. Never panics.
fn execute_job(
    job: &QueuedJob,
    worker: usize,
    cache: &KeyCache,
    sched: &Arc<Scheduler<QueuedJob>>,
) -> JobResult {
    let queue_wait = job.enqueued.elapsed();
    if let Some(error) = job_status(job, sched) {
        return aborted_result(job, worker, queue_wait, Duration::ZERO, error);
    }
    // The kernel-level cancellation check must own its captures (it is
    // re-installed inside MSM worker threads), so it clones the job's
    // scoping handles instead of borrowing the job.
    let check: zkvc_ff::cancel::CancelCheck = {
        let sched = Arc::clone(sched);
        let session = job.session.clone();
        let deadline = job.deadline;
        Arc::new(move || {
            deadline.is_some_and(|d| Instant::now() >= d)
                || sched.is_cancelled()
                || session.as_ref().is_some_and(|s| s.is_cancelled())
        })
    };
    match catch_unwind(AssertUnwindSafe(|| {
        crate::fault::fire_panic("pool.pickup.panic");
        let _cancel = zkvc_ff::cancel::install(check);
        run_job(job, worker, queue_wait, cache, &|| job_status(job, sched))
    })) {
        Ok(result) => result,
        Err(payload) => {
            let error = if payload
                .downcast_ref::<zkvc_ff::cancel::Cancelled>()
                .is_some()
            {
                // A kernel checkpoint stopped the job cooperatively;
                // re-derive which condition tripped it.
                job_status(job, sched).unwrap_or(JobError::Cancelled)
            } else {
                JobError::Panicked(panic_message(payload.as_ref()))
            };
            aborted_result(job, worker, queue_wait, Duration::ZERO, error)
        }
    }
}

fn run_job(
    job: &QueuedJob,
    worker: usize,
    queue_wait: Duration,
    cache: &KeyCache,
    status: &dyn Fn() -> Option<JobError>,
) -> JobResult {
    let t0 = Instant::now();
    let statement = build_statement(job.seed, job.statement_id, &job.spec);
    let statement_time = t0.elapsed();

    // Cooperative checkpoint: a cancellation that lands mid-build skips
    // the (much more expensive) setup + prove work.
    if let Some(error) = status() {
        return aborted_result(job, worker, queue_wait, statement_time, error);
    }

    // Shape + keys: on a warm template no synthesis of any kind runs —
    // the compiled CSR shape and key material come straight from the
    // cache, keyed by the job spec. The first job of a spec pays one
    // witness-free shape pass plus the setup.
    let system = job.spec.backend().system();
    let (keys, cache_hit) = cache.get_or_setup_template(
        job.spec.backend(),
        job.seed,
        &job.spec.to_string(),
        statement.as_ref(),
    );

    // Witness pass: the only per-job synthesis work — a flat assignment,
    // validated against the cached shape.
    let t1 = Instant::now();
    let witness = generate_witness_for(statement.as_ref(), &keys.shape);
    let build_time = statement_time + t1.elapsed();

    let mut prover_rng = StdRng::seed_from_u64(
        job.seed ^ (job.statement_id as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
    );
    let t1 = Instant::now();
    crate::fault::fire_delay("pool.prove.delay");
    let artifacts = system.prove_assignment(&keys.prover, &witness, &mut prover_rng);
    let prove_time = t1.elapsed();
    let num_constraints = artifacts.metrics.num_constraints;

    // Cross the byte boundary before verifying, as a remote consumer
    // would. Pool envelopes are keyless: the Groth16 vk ships once per
    // batch in the report's key table, not once per proof. Verification
    // checks statement binding first: the envelope's public inputs must be
    // exactly the statement's expected public outputs (the witness pass's
    // instance values).
    let proof_bytes = ProofEnvelope::from_artifacts(&artifacts)
        .without_vk()
        .to_bytes();
    let t2 = Instant::now();
    let verified = envelope_verifies(&proof_bytes, &witness.instance, |envelope| {
        envelope.verify_with_key(&keys.verifier)
    });
    let verify_time = t2.elapsed();

    JobResult {
        id: job.id,
        spec: job.spec,
        seed: job.seed,
        proof_bytes,
        verified,
        error: None,
        cache_hit,
        shape_digest: keys.digest,
        worker,
        tag: job.tag.clone(),
        queue_wait,
        build_time,
        prove_time,
        verify_time,
        num_constraints,
        session_id: job.session.as_ref().map(|s| s.id()),
    }
}

/// Proves `specs` on a `workers`-thread pool with a fresh cache; the
/// convenience entry point behind the `zkvc prove-batch` CLI.
pub fn prove_batch(specs: &[JobSpec], workers: usize, seed: u64) -> BatchReport {
    prove_batch_with_policy(specs, workers, seed, SchedulerPolicy::WorkStealing)
}

/// [`prove_batch`] with an explicit scheduling policy (the pool bench
/// compares `WorkStealing` against the `SingleQueue` baseline).
pub fn prove_batch_with_policy(
    specs: &[JobSpec],
    workers: usize,
    seed: u64,
    policy: SchedulerPolicy,
) -> BatchReport {
    let pool = ProvingPool::configured(
        PoolConfig::new(workers).seed(seed).policy(policy),
        Arc::new(KeyCache::with_seed(seed)),
        None,
    );
    for spec in specs {
        pool.submit(*spec, JobOptions::new());
    }
    pool.join()
}

/// The naive baseline the pool is measured against: the same deterministic
/// jobs, proved sequentially with a fresh one-shot
/// [`ProofSystem::prove_oneshot`](zkvc_core::ProofSystem::prove_oneshot)
/// (setup re-run per job, no cache, no parallelism).
pub fn prove_batch_serial(specs: &[JobSpec], seed: u64) -> BatchReport {
    let started = Instant::now();
    let mut results = Vec::with_capacity(specs.len());
    for (id, spec) in specs.iter().enumerate() {
        let t0 = Instant::now();
        let statement = build_statement(seed, id, spec);
        let build_time = t0.elapsed();
        let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let artifacts = spec
            .backend()
            .system()
            .prove_oneshot(statement.as_ref(), &mut rng);
        let proof_bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
        // The naive baseline re-compiles the shape even to verify — that
        // per-job re-synthesis is exactly what the split pipeline removes.
        let shape = compile_shape(statement.as_ref());
        let t2 = Instant::now();
        let verified = envelope_verifies(&proof_bytes, &artifacts.public_inputs, |envelope| {
            envelope.verify_with_shape(&shape)
        });
        let verify_time = t2.elapsed();
        results.push(JobResult {
            id,
            spec: *spec,
            seed,
            proof_bytes,
            verified,
            error: None,
            cache_hit: false,
            shape_digest: shape.digest,
            worker: 0,
            tag: None,
            queue_wait: Duration::ZERO,
            build_time,
            // One-shot proving pays setup every time; count it as part of
            // the per-job proving cost, which is exactly the figure the
            // split API exists to improve.
            prove_time: artifacts.metrics.setup_time + artifacts.metrics.prove_time,
            verify_time,
            num_constraints: artifacts.metrics.num_constraints,
            session_id: None,
        });
    }
    BatchReport {
        wall_time: started.elapsed(),
        workers: 1,
        seed,
        cache: CacheStats::default(),
        results,
        // One-shot envelopes embed their vk, so there is no key table.
        key_table: Vec::new(),
        worker_panics: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelPreset;
    use zkvc_core::matmul::Strategy;
    use zkvc_core::Backend;

    #[test]
    fn pool_proves_mixed_batch_deterministically() {
        // 8 jobs over 4 workers: two shapes x two backends x two strategies.
        let specs: Vec<JobSpec> = vec![
            JobSpec::new(4, 4, 4),
            JobSpec::new(4, 4, 4),
            JobSpec::new(4, 4, 4).with_backend(Backend::Spartan),
            JobSpec::new(4, 4, 4).with_backend(Backend::Spartan),
            JobSpec::new(3, 2, 3).with_strategy(Strategy::Vanilla),
            JobSpec::new(3, 2, 3).with_strategy(Strategy::Vanilla),
            JobSpec::new(3, 2, 3)
                .with_strategy(Strategy::VanillaPsq)
                .with_backend(Backend::Spartan),
            JobSpec::new(4, 4, 4),
        ];
        let report = prove_batch(&specs, 4, 42);
        assert_eq!(report.results.len(), 8);
        assert!(report.all_verified(), "all 8 proofs must verify");
        assert_eq!(report.worker_panics, 0);
        assert_eq!(
            report.results.iter().map(|r| r.id).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>(),
            "results ordered by id"
        );
        // 4 distinct (shape, backend) pairs -> 4 misses, 4 hits.
        assert_eq!(report.cache.misses, 4);
        assert_eq!(report.cache.hits, 4);
        assert!((report.cache_hit_rate() - 0.5).abs() < 1e-9);
        assert!(report.jobs_per_sec() > 0.0);

        // Re-running the identical batch reproduces byte-identical proofs,
        // regardless of worker scheduling or queueing policy.
        for (label, rerun) in [
            ("2 workers", prove_batch(&specs, 2, 42)),
            (
                "single-queue",
                prove_batch_with_policy(&specs, 2, 42, SchedulerPolicy::SingleQueue),
            ),
        ] {
            for (a, b) in report.results.iter().zip(rerun.results.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(
                    a.proof_bytes, b.proof_bytes,
                    "job {} not deterministic ({label})",
                    a.id
                );
            }
            assert_eq!(
                report.render_report_json(),
                rerun.render_report_json(),
                "deterministic report must be byte-identical ({label})"
            );
        }

        // A different seed produces different proofs.
        let other = prove_batch(&specs, 2, 43);
        assert!(report
            .results
            .iter()
            .zip(other.results.iter())
            .any(|(a, b)| a.proof_bytes != b.proof_bytes));
    }

    #[test]
    fn same_shape_jobs_share_one_setup() {
        let specs = vec![JobSpec::new(3, 3, 3).with_backend(Backend::Spartan); 2];
        let report = prove_batch(&specs, 2, 7);
        assert!(report.all_verified());
        assert_eq!(report.cache.misses, 1, "one setup");
        assert_eq!(report.cache.hits, 1, "second job reuses it");
        let table = report.render_table("test");
        assert!(table.contains("hit") && table.contains("miss"));
    }

    #[test]
    fn model_jobs_flow_through_the_pool() {
        // Two jobs of the same preset (different per-id weights) plus one
        // of another preset: the per-shape challenge lets the same-preset
        // pair share one setup, and every proof still verifies after the
        // envelope round trip, publics binding included.
        let specs = vec![
            JobSpec::model(ModelPreset::MixerBlock).with_backend(Backend::Spartan),
            JobSpec::model(ModelPreset::MixerBlock).with_backend(Backend::Spartan),
            JobSpec::model(ModelPreset::BertBlock).with_backend(Backend::Spartan),
        ];
        let report = prove_batch(&specs, 2, 17);
        assert!(report.all_verified(), "model proofs must verify");
        assert_eq!(report.cache.misses, 2, "one setup per preset");
        assert_eq!(report.cache.hits, 1, "same-preset job reuses it");
        // Different weights per id: the two mixer-block proofs bind
        // different logits.
        let e0 = ProofEnvelope::from_bytes(&report.results[0].proof_bytes).unwrap();
        let e1 = ProofEnvelope::from_bytes(&report.results[1].proof_bytes).unwrap();
        assert!(!e0.public_inputs.is_empty());
        assert_ne!(e0.public_inputs, e1.public_inputs);
        let table = report.render_table("models");
        assert!(table.contains("mixer-block") && table.contains("bert-block"));
    }

    #[test]
    fn pool_rejects_replayed_statement_proofs() {
        // A proof for job id 0 presented as job id 1 (same shape, different
        // Y) must fail the exact acceptance predicate run_job and
        // prove_batch_serial use, on both of their cryptographic paths.
        let spec = JobSpec::new(3, 3, 3).with_backend(Backend::Spartan);
        let s0 = build_statement(21, 0, &spec);
        let s1 = build_statement(21, 1, &spec);
        assert_eq!(s0.shape_digest(), s1.shape_digest(), "same shape");
        assert_ne!(s0.public_outputs(), s1.public_outputs(), "different Y");
        let cache = KeyCache::with_seed(21);
        let (keys, _) = cache.get_or_setup_circuit(spec.backend(), s0.as_ref());
        let mut rng = StdRng::seed_from_u64(99);
        let system = spec.backend().system();
        let artifacts = system.prove(&keys.prover, s0.as_ref(), &mut rng);
        let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
        let p0 = s0.public_outputs();
        let p1 = s1.public_outputs();

        // Honest: accepted for the statement it proves...
        assert!(envelope_verifies(&bytes, &p0, |e| e.verify_with_key(&keys.verifier)));
        assert!(envelope_verifies(&bytes, &p0, |e| e.verify_with_shape(&keys.shape)));
        // ...replayed: rejected for job 1's statement, even though the
        // cryptographic check alone would accept it (same shape and keys).
        assert!(ProofEnvelope::from_bytes(&bytes)
            .unwrap()
            .verify_with_key(&keys.verifier));
        assert!(!envelope_verifies(&bytes, &p1, |e| e.verify_with_key(&keys.verifier)));
        assert!(!envelope_verifies(&bytes, &p1, |e| e.verify_with_shape(&keys.shape)));
    }

    #[test]
    fn submit_after_results_and_empty_join() {
        let pool = ProvingPool::new(2);
        let report = pool.join();
        assert!(report.results.is_empty());
        assert!(
            !report.all_verified(),
            "empty batch is not vacuously verified"
        );
        assert_eq!(report.jobs_per_sec(), 0.0);
        assert_eq!(report.worker_panics, 0);
    }

    #[test]
    fn abandoned_pool_drains_without_proving() {
        // Dropping a pool without join must not leave workers proving a
        // discarded backlog; the drop blocks only until the queue is
        // drained (skipping the work), which this test bounds implicitly
        // by finishing fast despite 32 queued Groth16 jobs.
        let pool = ProvingPool::new(1);
        for _ in 0..32 {
            pool.submit(
                JobSpec::new(6, 6, 6).with_strategy(Strategy::Vanilla),
                JobOptions::new(),
            );
        }
        let cache = Arc::clone(pool.cache());
        drop(pool);
        // At most the in-flight job ran setup; the drained backlog didn't.
        assert!(cache.stats().misses <= 1);
    }

    #[test]
    fn serial_baseline_matches_pool_verdicts() {
        let specs = vec![
            JobSpec::new(2, 3, 2),
            JobSpec::new(2, 3, 2).with_backend(Backend::Spartan),
        ];
        let serial = prove_batch_serial(&specs, 11);
        assert!(serial.all_verified());
        assert_eq!(serial.workers, 1);
        assert_eq!(serial.cache, CacheStats::default());

        let pooled = prove_batch(&specs, 2, 11);
        let verdicts = |r: &BatchReport| {
            r.results
                .iter()
                .map(|j| (j.id, j.verified))
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(&serial), verdicts(&pooled));
    }

    #[test]
    fn serve_style_requests_match_single_prove() {
        // submit_request pins the statement id to 0: the proof is
        // byte-identical to job 0 of a fresh batch at the same seed, no
        // matter how many requests preceded it in the resident pool.
        let cache = Arc::new(KeyCache::with_seed(0));
        let pool = ProvingPool::with_cache(1, 0, cache);
        let spec = JobSpec::new(3, 3, 3).with_backend(Backend::Spartan);
        pool.submit(spec, JobOptions::new().seed(5).tag("a"));
        pool.submit(spec, JobOptions::new().seed(5).tag("b"));
        let report = pool.join();
        assert!(report.all_verified());
        assert_eq!(report.results[0].tag.as_deref(), Some("a"));
        assert_eq!(report.results[1].tag.as_deref(), Some("b"));
        // Same (spec, seed) -> same statement -> identical proofs and one
        // shared setup.
        assert_eq!(report.results[0].proof_bytes, report.results[1].proof_bytes);
        assert_eq!(report.cache.misses, 1);
        // And the proof matches the "job 0 at seed 5" statement exactly.
        let statement = build_statement(5, 0, &spec);
        let shape = compile_shape(statement.as_ref());
        assert!(envelope_verifies(
            &report.results[0].proof_bytes,
            &statement.public_outputs(),
            |e| e.verify_with_shape(&shape)
        ));
    }

    #[test]
    fn session_cancellation_is_scoped_to_the_session() {
        // Two sessions share one pool; cancelling one must drain only its
        // jobs (as Cancelled, tagged with its session id) while the other
        // session's jobs prove normally. Cancelling *before* submission
        // makes the outcome deterministic: acquire passes through on a
        // cancelled session, and every worker pickup sees it cancelled.
        let pool = ProvingPool::new(2);
        let dead = Arc::new(SessionCtl::new(1, 8));
        let live = Arc::new(SessionCtl::new(2, 8));
        dead.cancel();
        let spec = JobSpec::new(3, 3, 3).with_backend(Backend::Spartan);
        for _ in 0..3 {
            pool.submit(spec, JobOptions::new().seed(5).session(Arc::clone(&dead)));
        }
        for _ in 0..3 {
            pool.submit(spec, JobOptions::new().seed(5).session(Arc::clone(&live)));
        }
        let report = pool.join();
        let by = |sid: u64| {
            report
                .results
                .iter()
                .filter(move |r| r.session_id == Some(sid))
        };
        assert_eq!(by(1).count(), 3);
        assert!(by(1).all(|r| matches!(r.error, Some(JobError::Cancelled)) && !r.verified));
        assert_eq!(by(2).count(), 3);
        assert!(by(2).all(|r| r.verified));
        // Every slot was released through the sink path.
        assert_eq!(dead.in_flight(), 0);
        assert_eq!(live.in_flight(), 0);
    }

    #[test]
    fn session_admission_blocks_at_the_limit_until_release_or_cancel() {
        let ctl = Arc::new(SessionCtl::new(7, 2));
        ctl.acquire();
        ctl.acquire();
        assert_eq!(ctl.in_flight(), 2);

        // A third acquire parks until a slot frees up.
        let acquired = Arc::new(AtomicBool::new(false));
        let waiter = {
            let ctl = Arc::clone(&ctl);
            let acquired = Arc::clone(&acquired);
            thread::spawn(move || {
                ctl.acquire();
                acquired.store(true, Ordering::SeqCst);
            })
        };
        thread::sleep(Duration::from_millis(100));
        assert!(!acquired.load(Ordering::SeqCst), "blocked at the limit");
        ctl.release();
        waiter.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
        assert_eq!(ctl.in_flight(), 2);

        // Cancellation lifts the bound so a draining session can never
        // deadlock a producer.
        let post_cancel = {
            let ctl = Arc::clone(&ctl);
            thread::spawn(move || {
                ctl.acquire();
                ctl.acquire();
            })
        };
        thread::sleep(Duration::from_millis(50));
        ctl.cancel();
        post_cancel.join().unwrap();
        assert!(ctl.in_flight() >= 2);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_submit_shims_match_the_unified_entry_point() {
        // The five legacy submission methods are thin shims over
        // submit(spec, JobOptions): each pair below must produce
        // byte-identical proofs and identical metadata.
        let spec = JobSpec::new(3, 3, 3).with_backend(Backend::Spartan);
        let run = |f: &dyn Fn(&ProvingPool)| {
            let pool = ProvingPool::with_cache(1, 3, Arc::new(KeyCache::with_seed(3)));
            f(&pool);
            pool.join()
        };
        let ctl = || Arc::new(SessionCtl::new(9, 4));

        let old = run(&|p| {
            p.submit_prioritized(spec, Priority::High);
            p.submit_request(spec, 5, Priority::Normal, Some("r".into()));
            p.submit_request_with_deadline(spec, 5, Priority::Normal, None, None);
            p.submit_for_session(spec, 5, Priority::Normal, None, ctl());
            p.submit_for_session_with_deadline(spec, 5, Priority::Normal, None, ctl(), None);
        });
        let new = run(&|p| {
            p.submit(spec, JobOptions::new().priority(Priority::High));
            p.submit(spec, JobOptions::new().seed(5).tag("r"));
            p.submit(spec, JobOptions::new().seed(5));
            p.submit(spec, JobOptions::new().seed(5).session(ctl()));
            p.submit(
                spec,
                JobOptions::new().seed(5).session(ctl()).deadline_opt(None),
            );
        });
        assert_eq!(old.results.len(), new.results.len());
        for (a, b) in old.results.iter().zip(new.results.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.tag, b.tag);
            assert_eq!(a.session_id, b.session_id);
            assert_eq!(a.proof_bytes, b.proof_bytes, "job {}", a.id);
            assert!(a.verified && b.verified);
        }
    }
}
