//! The proving pool: a fixed set of worker threads draining an mpsc job
//! queue, sharing one [`KeyCache`] so each circuit shape pays for setup
//! exactly once across the whole batch.
//!
//! Every job is fully deterministic given `(pool seed, job id)`: inputs,
//! the CRPC folding challenge, setup randomness (via the cache) and prover
//! randomness are all derived from them, so a batch re-run reproduces
//! byte-identical proofs regardless of how jobs land on workers. Proofs
//! additionally make a round trip through the
//! [`ProofEnvelope`](crate::ProofEnvelope) byte format before verification,
//! so the pool continuously exercises the cross-process path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::Circuit;
use zkvc_core::matmul::{MatMulBuilder, ZSource};
use zkvc_core::VerifierKey;
use zkvc_hash::Transcript;
use zkvc_nn::circuit::ModelCircuit;

use crate::cache::{CacheStats, KeyCache};
use crate::serial::ProofEnvelope;
use crate::spec::JobSpec;

/// The outcome of one pooled proving job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Submission-order id (results are returned sorted by it).
    pub id: usize,
    /// The spec the job ran.
    pub spec: JobSpec,
    /// Serialised proof envelope (backend tag, public inputs, proof).
    /// Pool envelopes are keyless: Groth16 verification keys ship once per
    /// batch in [`BatchReport::key_table`].
    pub proof_bytes: Vec<u8>,
    /// Whether the proof — after a bytes round trip — verified against the
    /// cached verifier key.
    pub verified: bool,
    /// Whether key material came from the cache (`false` exactly once per
    /// circuit shape per batch).
    pub cache_hit: bool,
    /// Digest of the circuit shape this job proved (keys into
    /// [`BatchReport::key_table`]).
    pub shape_digest: [u8; 32],
    /// Time from submission until a worker picked the job up.
    pub queue_wait: Duration,
    /// Circuit synthesis time (witness generation included).
    pub build_time: Duration,
    /// Proving time against the cached key.
    pub prove_time: Duration,
    /// Verification time (from the deserialised envelope).
    pub verify_time: Duration,
    /// R1CS constraints proved.
    pub num_constraints: usize,
}

/// One entry of a batch's out-of-band key table: the verification key for
/// every distinct Groth16 circuit shape the batch proved, shipped once per
/// batch instead of embedded in every proof envelope (~330 B per proof).
#[derive(Clone, Debug)]
pub struct BatchKey {
    /// Circuit-shape digest the key belongs to.
    pub digest: [u8; 32],
    /// Serialised Groth16 verification key
    /// ([`zkvc_groth16::VerifyingKey::to_bytes`]).
    pub vk_bytes: Vec<u8>,
}

/// Aggregate outcome of a batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job results, sorted by id.
    pub results: Vec<JobResult>,
    /// Wall-clock time from pool creation to the last worker finishing.
    pub wall_time: Duration,
    /// Number of worker threads used.
    pub workers: usize,
    /// Key-cache counters at the end of the batch.
    pub cache: CacheStats,
    /// Groth16 verification keys for the batch's circuit shapes: job
    /// envelopes are keyless, so a consumer verifies them against this
    /// table (Spartan preprocessing is derived from the circuit structure
    /// and has no wire form).
    pub key_table: Vec<BatchKey>,
}

impl BatchReport {
    /// `true` iff every job's proof verified.
    pub fn all_verified(&self) -> bool {
        !self.results.is_empty() && self.results.iter().all(|r| r.verified)
    }

    /// End-to-end throughput in jobs per second.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.results.len() as f64 / secs
        }
    }

    /// Fraction of jobs served key material from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.results.iter().filter(|r| r.cache_hit).count() as f64 / self.results.len() as f64
        }
    }

    /// Sum of per-job proving times (CPU time, not wall time).
    pub fn total_prove_time(&self) -> Duration {
        self.results.iter().map(|r| r.prove_time).sum()
    }

    /// Renders the per-job metrics table plus aggregate lines, as printed
    /// by the `zkvc` CLI.
    pub fn render_table(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {title} ==");
        let _ = writeln!(
            out,
            "{:>4} {:<12} {:<12} {:<8} {:>6} {:>10} {:>10} {:>10} {:>9} {:>6}",
            "job",
            "shape",
            "strategy",
            "backend",
            "cache",
            "build(ms)",
            "prove(ms)",
            "verify(ms)",
            "proof(B)",
            "ok"
        );
        for r in &self.results {
            let _ = writeln!(
                out,
                "{:>4} {:<12} {:<12} {:<8} {:>6} {:>10.2} {:>10.2} {:>10.2} {:>9} {:>6}",
                r.id,
                r.spec.shape_label(),
                r.spec.strategy().token(),
                r.spec.backend().name(),
                if r.cache_hit { "hit" } else { "miss" },
                r.build_time.as_secs_f64() * 1e3,
                r.prove_time.as_secs_f64() * 1e3,
                r.verify_time.as_secs_f64() * 1e3,
                r.proof_bytes.len(),
                if r.verified { "yes" } else { "NO" },
            );
        }
        let _ = writeln!(
            out,
            "jobs: {}  workers: {}  wall: {:.3}s  throughput: {:.2} jobs/s",
            self.results.len(),
            self.workers,
            self.wall_time.as_secs_f64(),
            self.jobs_per_sec()
        );
        // The percentage must agree with the counters on the same line, so
        // both come from the cache's lifetime stats (a shared or pre-warmed
        // cache can have seen lookups outside this batch); the batch-local
        // rate is reported separately when it differs.
        let _ = writeln!(
            out,
            "key cache: {} hits / {} misses ({:.0}% hit rate), {} entries",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.entries
        );
        if !self.key_table.is_empty() {
            let total: usize = self.key_table.iter().map(|k| k.vk_bytes.len()).sum();
            let _ = writeln!(
                out,
                "key table: {} groth16 vk(s), {} B shipped once per batch (job envelopes are keyless)",
                self.key_table.len(),
                total
            );
        }
        if (self.cache.hit_rate() - self.cache_hit_rate()).abs() > 1e-9 {
            let _ = writeln!(
                out,
                "this batch: {:.0}% of jobs hit the cache",
                self.cache_hit_rate() * 100.0
            );
        }
        out
    }
}

struct QueuedJob {
    id: usize,
    spec: JobSpec,
    enqueued: Instant,
}

/// A worker pool proving jobs concurrently with shared key caching.
pub struct ProvingPool {
    sender: Option<mpsc::Sender<QueuedJob>>,
    handles: Vec<thread::JoinHandle<()>>,
    results: Arc<Mutex<Vec<JobResult>>>,
    cache: Arc<KeyCache>,
    workers: usize,
    seed: u64,
    next_id: AtomicUsize,
    started: Instant,
    /// Set when the pool is dropped without `join`: workers drain the
    /// queue without proving, so abandoned batches don't burn CPU on
    /// results nobody will read.
    discard: Arc<std::sync::atomic::AtomicBool>,
}

impl ProvingPool {
    /// A pool with `workers` threads, a fresh key cache and seed 0.
    pub fn new(workers: usize) -> Self {
        Self::with_cache(workers, 0, Arc::new(KeyCache::new()))
    }

    /// A pool with `workers` threads, the given determinism seed, and a
    /// (possibly shared) key cache.
    pub fn with_cache(workers: usize, seed: u64, cache: Arc<KeyCache>) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = mpsc::channel::<QueuedJob>();
        let receiver = Arc::new(Mutex::new(receiver));
        let results = Arc::new(Mutex::new(Vec::new()));
        let discard = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let receiver = Arc::clone(&receiver);
            let results = Arc::clone(&results);
            let cache = Arc::clone(&cache);
            let discard = Arc::clone(&discard);
            handles.push(thread::spawn(move || loop {
                let job = {
                    let guard = receiver.lock().expect("job queue poisoned");
                    guard.recv()
                };
                let Ok(job) = job else {
                    break; // channel closed: pool is joining
                };
                if discard.load(Ordering::Relaxed) {
                    continue; // abandoned pool: drain without proving
                }
                let result = run_job(job, seed, &cache);
                results.lock().expect("results poisoned").push(result);
            }));
        }
        ProvingPool {
            sender: Some(sender),
            handles,
            results,
            cache,
            workers,
            seed,
            next_id: AtomicUsize::new(0),
            started: Instant::now(),
            discard,
        }
    }

    /// Enqueues a job, returning its id (ids are assigned in submission
    /// order and order the results of [`Self::join`]).
    pub fn submit(&self, spec: JobSpec) -> usize {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sender
            .as_ref()
            .expect("pool already joined")
            .send(QueuedJob {
                id,
                spec,
                enqueued: Instant::now(),
            })
            .expect("workers terminated early");
        id
    }

    /// The shared key cache (e.g. to pre-warm it or to read stats).
    pub fn cache(&self) -> &Arc<KeyCache> {
        &self.cache
    }

    /// The pool's determinism seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Closes the queue, waits for every submitted job to finish, and
    /// returns the batch report with results sorted by job id.
    pub fn join(mut self) -> BatchReport {
        drop(self.sender.take()); // close the channel; workers drain + exit
        for handle in self.handles.drain(..) {
            handle.join().expect("worker thread panicked");
        }
        let mut results = std::mem::take(&mut *self.results.lock().expect("results poisoned"));
        results.sort_by_key(|r| r.id);
        // Only the shapes this batch actually proved: a shared or
        // pre-warmed cache may hold keys for unrelated shapes, which must
        // not leak into this report's table.
        let batch_digests: std::collections::HashSet<[u8; 32]> =
            results.iter().map(|r| r.shape_digest).collect();
        let key_table = self
            .cache
            .entries()
            .iter()
            .filter(|entry| batch_digests.contains(&entry.digest))
            .filter_map(|entry| match &entry.verifier {
                VerifierKey::Groth16(vk) => Some(BatchKey {
                    digest: entry.digest,
                    vk_bytes: vk.to_bytes(),
                }),
                VerifierKey::Spartan(_) => None,
            })
            .collect();
        BatchReport {
            wall_time: self.started.elapsed(),
            workers: self.workers,
            cache: self.cache.stats(),
            results,
            key_table,
        }
    }
}

impl Drop for ProvingPool {
    fn drop(&mut self) {
        // `join` consumed the sender and handles already; this path only
        // fires when the pool is abandoned (early return, panic). Tell the
        // workers to drain without proving, then wait for them to exit so
        // no detached thread keeps burning CPU on a discarded batch.
        if let Some(sender) = self.sender.take() {
            self.discard.store(true, Ordering::Relaxed);
            drop(sender);
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// Derives the fixed CRPC folding challenge shared by every job with the
/// same (seed, statement shape) — required so same-shape jobs share one
/// circuit template and therefore one cache entry. This is the paper's
/// "challenge sampled at setup time" Groth16 flow (`ZSource::Fixed`); see
/// the soundness note on [`zkvc_core::matmul::ZSource`].
fn fixed_z(seed: u64, spec: &JobSpec) -> zkvc_ff::Fr {
    let mut t = Transcript::new(b"zkvc-runtime-template-z");
    t.append_u64(b"seed", seed);
    t.append_bytes(b"shape", spec.shape_label().as_bytes());
    t.append_bytes(b"strategy", spec.strategy().token().as_bytes());
    t.challenge_field(b"z")
}

/// Builds the deterministic statement for `(seed, id, spec)` as a
/// [`Circuit`] trait object: matmul inputs (or model weights) drawn from
/// the seeded per-job rng, and — for CRPC strategies — the shape-level
/// fixed folding challenge. This is exactly the statement the pool proves
/// for job `id`, so external tools (the `zkvc` CLI's `verify` subcommand)
/// can reconstruct the circuit a proof refers to, including its expected
/// public outputs.
pub fn build_statement(seed: u64, id: usize, spec: &JobSpec) -> Box<dyn Circuit> {
    let input_seed = seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match spec {
        JobSpec::MatMul {
            dims,
            strategy,
            public_outputs,
            ..
        } => {
            let mut rng = StdRng::seed_from_u64(input_seed);
            let mut builder = MatMulBuilder::new(dims.0, dims.1, dims.2)
                .strategy(*strategy)
                .public_outputs(*public_outputs);
            if strategy.uses_crpc() {
                builder = builder.z_source(ZSource::Fixed(fixed_z(seed, spec)));
            }
            Box::new(builder.build_random(&mut rng))
        }
        JobSpec::Model {
            preset, strategy, ..
        } => {
            let (model, schedule) = preset.config();
            // The challenge is shape-level (shared across ids) while the
            // weights are per-id, so a batch of model jobs shares one
            // circuit shape and therefore one cache entry.
            let circuit = ModelCircuit::build_seeded(
                &model,
                &schedule,
                *strategy,
                input_seed,
                fixed_z(seed, spec),
            );
            Box::new(circuit)
        }
    }
}

/// The pool's acceptance predicate for a proof that claims to prove
/// `statement`: the envelope must decode, its public inputs must be
/// exactly the statement's expected public outputs (statement binding — a
/// replayed same-shape proof for a different `Y` dies here; trivially
/// satisfied for circuits with no public outputs), and the proof must pass
/// the supplied cryptographic check.
fn envelope_verifies_for_statement(
    bytes: &[u8],
    statement: &dyn Circuit,
    verify: impl FnOnce(&ProofEnvelope) -> bool,
) -> bool {
    match ProofEnvelope::from_bytes(bytes) {
        Some(envelope) => envelope.public_inputs == statement.public_outputs() && verify(&envelope),
        None => false,
    }
}

fn run_job(job: QueuedJob, seed: u64, cache: &KeyCache) -> JobResult {
    let queue_wait = job.enqueued.elapsed();

    let t0 = Instant::now();
    let statement = build_statement(seed, job.id, &job.spec);
    let build_time = t0.elapsed();

    let system = job.spec.backend().system();
    let (keys, cache_hit) = cache.get_or_setup_circuit(job.spec.backend(), statement.as_ref());

    let mut prover_rng =
        StdRng::seed_from_u64(seed ^ (job.id as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    let t1 = Instant::now();
    let artifacts = system.prove(&keys.prover, statement.as_ref(), &mut prover_rng);
    let prove_time = t1.elapsed();
    let num_constraints = artifacts.metrics.num_constraints;

    // Cross the byte boundary before verifying, as a remote consumer
    // would. Pool envelopes are keyless: the Groth16 vk ships once per
    // batch in the report's key table, not once per proof. Verification
    // checks statement binding first: the envelope's public inputs must be
    // exactly the statement's expected public outputs.
    let proof_bytes = ProofEnvelope::from_artifacts(&artifacts)
        .without_vk()
        .to_bytes();
    let t2 = Instant::now();
    let verified = envelope_verifies_for_statement(&proof_bytes, statement.as_ref(), |envelope| {
        envelope.verify_with_key(&keys.verifier)
    });
    let verify_time = t2.elapsed();

    JobResult {
        id: job.id,
        spec: job.spec,
        proof_bytes,
        verified,
        cache_hit,
        shape_digest: keys.digest,
        queue_wait,
        build_time,
        prove_time,
        verify_time,
        num_constraints,
    }
}

/// Proves `specs` on a `workers`-thread pool with a fresh cache; the
/// convenience entry point behind the `zkvc prove-batch` CLI.
pub fn prove_batch(specs: &[JobSpec], workers: usize, seed: u64) -> BatchReport {
    let pool = ProvingPool::with_cache(workers, seed, Arc::new(KeyCache::with_seed(seed)));
    for spec in specs {
        pool.submit(*spec);
    }
    pool.join()
}

/// The naive baseline the pool is measured against: the same deterministic
/// jobs, proved sequentially with a fresh one-shot
/// [`ProofSystem::prove_oneshot`](zkvc_core::ProofSystem::prove_oneshot)
/// (setup re-run per job, no cache, no parallelism).
pub fn prove_batch_serial(specs: &[JobSpec], seed: u64) -> BatchReport {
    let started = Instant::now();
    let mut results = Vec::with_capacity(specs.len());
    for (id, spec) in specs.iter().enumerate() {
        let t0 = Instant::now();
        let statement = build_statement(seed, id, spec);
        let build_time = t0.elapsed();
        let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let artifacts = spec
            .backend()
            .system()
            .prove_oneshot(statement.as_ref(), &mut rng);
        let proof_bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
        let t2 = Instant::now();
        let verified =
            envelope_verifies_for_statement(&proof_bytes, statement.as_ref(), |envelope| {
                envelope.verify_cs(statement.constraint_system())
            });
        let verify_time = t2.elapsed();
        results.push(JobResult {
            id,
            spec: *spec,
            proof_bytes,
            verified,
            cache_hit: false,
            shape_digest: statement.shape_digest(),
            queue_wait: Duration::ZERO,
            build_time,
            // One-shot proving pays setup every time; count it as part of
            // the per-job proving cost, which is exactly the figure the
            // split API exists to improve.
            prove_time: artifacts.metrics.setup_time + artifacts.metrics.prove_time,
            verify_time,
            num_constraints: artifacts.metrics.num_constraints,
        });
    }
    BatchReport {
        wall_time: started.elapsed(),
        workers: 1,
        cache: CacheStats::default(),
        results,
        // One-shot envelopes embed their vk, so there is no key table.
        key_table: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelPreset;
    use zkvc_core::matmul::Strategy;
    use zkvc_core::Backend;

    #[test]
    fn pool_proves_mixed_batch_deterministically() {
        // 8 jobs over 4 workers: two shapes x two backends x two strategies.
        let specs: Vec<JobSpec> = vec![
            JobSpec::new(4, 4, 4),
            JobSpec::new(4, 4, 4),
            JobSpec::new(4, 4, 4).with_backend(Backend::Spartan),
            JobSpec::new(4, 4, 4).with_backend(Backend::Spartan),
            JobSpec::new(3, 2, 3).with_strategy(Strategy::Vanilla),
            JobSpec::new(3, 2, 3).with_strategy(Strategy::Vanilla),
            JobSpec::new(3, 2, 3)
                .with_strategy(Strategy::VanillaPsq)
                .with_backend(Backend::Spartan),
            JobSpec::new(4, 4, 4),
        ];
        let report = prove_batch(&specs, 4, 42);
        assert_eq!(report.results.len(), 8);
        assert!(report.all_verified(), "all 8 proofs must verify");
        assert_eq!(
            report.results.iter().map(|r| r.id).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>(),
            "results ordered by id"
        );
        // 4 distinct (shape, backend) pairs -> 4 misses, 4 hits.
        assert_eq!(report.cache.misses, 4);
        assert_eq!(report.cache.hits, 4);
        assert!((report.cache_hit_rate() - 0.5).abs() < 1e-9);
        assert!(report.jobs_per_sec() > 0.0);

        // Re-running the identical batch reproduces byte-identical proofs,
        // regardless of worker scheduling.
        let rerun = prove_batch(&specs, 2, 42);
        for (a, b) in report.results.iter().zip(rerun.results.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.proof_bytes, b.proof_bytes,
                "job {} not deterministic",
                a.id
            );
        }

        // A different seed produces different proofs.
        let other = prove_batch(&specs, 2, 43);
        assert!(report
            .results
            .iter()
            .zip(other.results.iter())
            .any(|(a, b)| a.proof_bytes != b.proof_bytes));
    }

    #[test]
    fn same_shape_jobs_share_one_setup() {
        let specs = vec![JobSpec::new(3, 3, 3).with_backend(Backend::Spartan); 2];
        let report = prove_batch(&specs, 2, 7);
        assert!(report.all_verified());
        assert_eq!(report.cache.misses, 1, "one setup");
        assert_eq!(report.cache.hits, 1, "second job reuses it");
        let table = report.render_table("test");
        assert!(table.contains("hit") && table.contains("miss"));
    }

    #[test]
    fn model_jobs_flow_through_the_pool() {
        // Two jobs of the same preset (different per-id weights) plus one
        // of another preset: the per-shape challenge lets the same-preset
        // pair share one setup, and every proof still verifies after the
        // envelope round trip, publics binding included.
        let specs = vec![
            JobSpec::model(ModelPreset::MixerBlock).with_backend(Backend::Spartan),
            JobSpec::model(ModelPreset::MixerBlock).with_backend(Backend::Spartan),
            JobSpec::model(ModelPreset::BertBlock).with_backend(Backend::Spartan),
        ];
        let report = prove_batch(&specs, 2, 17);
        assert!(report.all_verified(), "model proofs must verify");
        assert_eq!(report.cache.misses, 2, "one setup per preset");
        assert_eq!(report.cache.hits, 1, "same-preset job reuses it");
        // Different weights per id: the two mixer-block proofs bind
        // different logits.
        let e0 = ProofEnvelope::from_bytes(&report.results[0].proof_bytes).unwrap();
        let e1 = ProofEnvelope::from_bytes(&report.results[1].proof_bytes).unwrap();
        assert!(!e0.public_inputs.is_empty());
        assert_ne!(e0.public_inputs, e1.public_inputs);
        let table = report.render_table("models");
        assert!(table.contains("mixer-block") && table.contains("bert-block"));
    }

    #[test]
    fn pool_rejects_replayed_statement_proofs() {
        // A proof for job id 0 presented as job id 1 (same shape, different
        // Y) must fail the exact acceptance predicate run_job and
        // prove_batch_serial use, on both of their cryptographic paths.
        let spec = JobSpec::new(3, 3, 3).with_backend(Backend::Spartan);
        let s0 = build_statement(21, 0, &spec);
        let s1 = build_statement(21, 1, &spec);
        assert_eq!(s0.shape_digest(), s1.shape_digest(), "same shape");
        assert_ne!(s0.public_outputs(), s1.public_outputs(), "different Y");
        let cache = KeyCache::with_seed(21);
        let (keys, _) = cache.get_or_setup_circuit(spec.backend(), s0.as_ref());
        let mut rng = StdRng::seed_from_u64(99);
        let system = spec.backend().system();
        let artifacts = system.prove(&keys.prover, s0.as_ref(), &mut rng);
        let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();

        // Honest: accepted for the statement it proves...
        assert!(envelope_verifies_for_statement(&bytes, s0.as_ref(), |e| e
            .verify_with_key(&keys.verifier)));
        assert!(envelope_verifies_for_statement(&bytes, s0.as_ref(), |e| e
            .verify_cs(s0.constraint_system())));
        // ...replayed: rejected for job 1's statement, even though the
        // cryptographic check alone would accept it (same shape and keys).
        assert!(ProofEnvelope::from_bytes(&bytes)
            .unwrap()
            .verify_with_key(&keys.verifier));
        assert!(!envelope_verifies_for_statement(&bytes, s1.as_ref(), |e| e
            .verify_with_key(&keys.verifier)));
        assert!(!envelope_verifies_for_statement(&bytes, s1.as_ref(), |e| e
            .verify_cs(s1.constraint_system())));
    }

    #[test]
    fn submit_after_results_and_empty_join() {
        let pool = ProvingPool::new(2);
        let report = pool.join();
        assert!(report.results.is_empty());
        assert!(
            !report.all_verified(),
            "empty batch is not vacuously verified"
        );
        assert_eq!(report.jobs_per_sec(), 0.0);
    }

    #[test]
    fn abandoned_pool_drains_without_proving() {
        // Dropping a pool without join must not leave workers proving a
        // discarded backlog; the drop blocks only until the queue is
        // drained (skipping the work), which this test bounds implicitly
        // by finishing fast despite 32 queued Groth16 jobs.
        let pool = ProvingPool::new(1);
        for _ in 0..32 {
            pool.submit(JobSpec::new(6, 6, 6).with_strategy(Strategy::Vanilla));
        }
        let cache = Arc::clone(pool.cache());
        drop(pool);
        // At most the in-flight job ran setup; the drained backlog didn't.
        assert!(cache.stats().misses <= 1);
    }

    #[test]
    fn serial_baseline_matches_pool_verdicts() {
        let specs = vec![
            JobSpec::new(2, 3, 2),
            JobSpec::new(2, 3, 2).with_backend(Backend::Spartan),
        ];
        let serial = prove_batch_serial(&specs, 11);
        assert!(serial.all_verified());
        assert_eq!(serial.workers, 1);
        assert_eq!(serial.cache, CacheStats::default());
    }
}
