//! The `zkvc analyze` layer: runs the `zkvc-r1cs` static lint catalog
//! over the circuits a [`JobSpec`] names, for the CLI, the CI gate, and
//! the serve pre-flight.
//!
//! The analysis itself lives in `zkvc_r1cs::analyze` and works on any
//! [`CompiledShape`](zkvc_r1cs::CompiledShape); this module owns the
//! *spec-level* plumbing: building the statement a spec describes,
//! compiling its shape, feeding the circuit's declared public-output
//! count to the analyzer, sweeping the shipping spec matrix, rendering
//! reports (human and JSON lines), and applying fingerprint baselines so
//! a known, reviewed finding can be waived without disabling its rule.
//!
//! Analysis is witness-free and backend-independent: the compiled shape
//! is the same whether it will be proved under Groth16 or Spartan, so
//! [`analyze_specs`] memoises per backend-normalised spec and a full
//! sweep costs one compile per distinct circuit.

use std::collections::HashMap;
use std::sync::Mutex;

use zkvc_core::api::compile_shape;
use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;
use zkvc_r1cs::{Severity, ShapeReport};

use crate::pool::build_statement;
use crate::spec::{JobSpec, ModelPreset};
use crate::util::json_escape;

/// Analyzes the circuit `spec` names at `seed`: builds the statement,
/// compiles its shape (witness-free), and runs the full lint catalog
/// against the statement's declared public-output count.
pub fn analyze_spec(spec: &JobSpec, seed: u64) -> ShapeReport {
    let statement = build_statement(seed, 0, spec);
    let shape = compile_shape(statement.as_ref());
    shape.analyze(statement.declared_publics())
}

/// One spec's analysis result inside a sweep.
#[derive(Clone, Debug)]
pub struct SpecAnalysis {
    /// The spec as given (backend included).
    pub spec: JobSpec,
    /// The lint report for its compiled shape.
    pub report: ShapeReport,
}

/// Analyzes every spec in `specs` at `seed`, memoising compiles across
/// backend variants (the backend never changes the shape).
pub fn analyze_specs(specs: &[JobSpec], seed: u64) -> Vec<SpecAnalysis> {
    let mut memo: HashMap<JobSpec, ShapeReport> = HashMap::new();
    specs
        .iter()
        .map(|spec| {
            let key = spec.with_backend(Backend::Groth16);
            let report = memo
                .entry(key)
                .or_insert_with(|| analyze_spec(spec, seed))
                .clone();
            SpecAnalysis {
                spec: *spec,
                report,
            }
        })
        .collect()
}

/// The shipping spec matrix the bare `zkvc analyze` sweeps: a
/// representative matmul plus every model preset, across all four
/// strategies and both backends. Every deployable circuit appears by
/// name, so the CI gate's report has one line per spec a user could
/// actually submit.
pub fn default_sweep() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for strategy in Strategy::ALL {
        for backend in Backend::ALL {
            specs.push(
                JobSpec::new(4, 4, 4)
                    .with_strategy(strategy)
                    .with_backend(backend),
            );
            for preset in ModelPreset::ALL {
                specs.push(
                    JobSpec::model(preset)
                        .with_strategy(strategy)
                        .with_backend(backend),
                );
            }
        }
    }
    specs
}

/// A thread-safe, memoising deny-severity pre-flight for the serve
/// intake loops (`--analyze-on-compile`): the first job of each distinct
/// spec pays one witness-free compile + lint pass, later jobs reuse the
/// cached verdict. Seeds change statement values but never the shape, so
/// the verdict is keyed on the backend-normalised spec alone.
#[derive(Debug, Default)]
pub struct Preflight {
    verdicts: Mutex<HashMap<JobSpec, Option<String>>>,
}

impl Preflight {
    /// An empty pre-flight cache.
    pub fn new() -> Self {
        Preflight::default()
    }

    /// `Err(reason)` when `spec`'s compiled shape carries deny-severity
    /// findings, `Ok(())` otherwise.
    pub fn check(&self, spec: &JobSpec, seed: u64) -> Result<(), String> {
        let key = spec.with_backend(Backend::Groth16);
        let mut verdicts = self.verdicts.lock().expect("preflight poisoned");
        let verdict = verdicts.entry(key).or_insert_with(|| {
            let report = analyze_spec(spec, seed);
            let denies: Vec<_> = report.at_least(Severity::Deny).collect();
            if denies.is_empty() {
                return None;
            }
            let mut rules: Vec<&str> = denies.iter().map(|f| f.rule.id()).collect();
            rules.dedup();
            Some(format!(
                "spec {spec} failed pre-flight analysis: {} deny-severity finding(s) ({})",
                denies.len(),
                rules.join(", ")
            ))
        });
        match verdict {
            None => Ok(()),
            Some(reason) => Err(reason.clone()),
        }
    }
}

/// A set of waived finding fingerprints, parsed from a baseline file.
///
/// One waiver per line: either `SPEC FINGERPRINT` (waives the finding in
/// that spec only) or a bare `FINGERPRINT` (waives it in every spec).
/// Blank lines and `#`-comments are ignored. Fingerprints come from
/// [`zkvc_r1cs::Finding::fingerprint`] and are message-free, so reworded
/// diagnostics never invalidate a waiver.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    entries: Vec<(Option<String>, String)>,
}

impl Baseline {
    /// Parses baseline text. Never fails: unparseable lines cannot exist
    /// (any non-comment line is one or two whitespace-separated tokens;
    /// extra tokens are rejected).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let first = tokens.next().expect("non-empty line");
            let second = tokens.next();
            if tokens.next().is_some() {
                return Err(format!(
                    "baseline line {}: expected `SPEC FINGERPRINT` or `FINGERPRINT`, got {line:?}",
                    n + 1
                ));
            }
            match second {
                Some(fp) => entries.push((Some(first.to_string()), fp.to_string())),
                None => entries.push((None, first.to_string())),
            }
        }
        Ok(Baseline { entries })
    }

    /// Whether a finding with `fingerprint` in `spec` is waived.
    pub fn waives(&self, spec: &str, fingerprint: &str) -> bool {
        self.entries
            .iter()
            .any(|(s, fp)| fp == fingerprint && s.as_deref().is_none_or(|s| s == spec))
    }

    /// Number of waiver entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline holds no waivers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counts findings at or above `threshold` across a sweep, excluding
/// baseline-waived ones — the number the CLI gates its exit code on.
pub fn gate_count(results: &[SpecAnalysis], threshold: Severity, baseline: &Baseline) -> usize {
    results
        .iter()
        .map(|r| {
            let spec = r.spec.to_string();
            r.report
                .at_least(threshold)
                .filter(|f| !baseline.waives(&spec, &f.fingerprint()))
                .count()
        })
        .sum()
}

/// Renders a sweep as a human-readable report: one block per spec, every
/// finding with its severity, fingerprint (for baseline authoring) and
/// message, then a totals line.
pub fn render_human(results: &[SpecAnalysis], baseline: &Baseline) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut total = 0usize;
    let mut waived = 0usize;
    for r in results {
        let spec = r.spec.to_string();
        if r.report.is_clean() {
            let _ = writeln!(
                out,
                "{spec}: clean ({} constraints, {} instance, {} witness)",
                r.report.num_constraints, r.report.num_instance, r.report.num_witness
            );
            continue;
        }
        let _ = writeln!(
            out,
            "{spec}: {} finding(s) ({} constraints)",
            r.report.findings.len(),
            r.report.num_constraints
        );
        for f in &r.report.findings {
            let fp = f.fingerprint();
            let tag = if baseline.waives(&spec, &fp) {
                waived += 1;
                " (waived)"
            } else {
                total += 1;
                ""
            };
            let _ = writeln!(out, "  {} [{fp}]{tag}: {}", f.severity, f.message);
        }
    }
    let _ = writeln!(
        out,
        "analyzed {} spec(s): {total} finding(s){}",
        results.len(),
        if waived > 0 {
            format!(", {waived} waived")
        } else {
            String::new()
        }
    );
    out
}

/// Renders a sweep as one flat JSON object (the machine-readable report
/// the CI gate archives). Waived findings are included with
/// `"waived":true` so the artifact shows what the baseline hides.
pub fn render_json(results: &[SpecAnalysis], baseline: &Baseline) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"type\":\"analysis\",\"specs\":[");
    let mut worst: Option<Severity> = None;
    let mut total = 0usize;
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let spec = r.spec.to_string();
        let _ = write!(
            out,
            "{{\"spec\":\"{}\",\"constraints\":{},\"instance\":{},\"witness\":{},\"declared_publics\":{},\"findings\":[",
            json_escape(&spec),
            r.report.num_constraints,
            r.report.num_instance,
            r.report.num_witness,
            r.report.declared_publics,
        );
        for (j, f) in r.report.findings.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let fp = f.fingerprint();
            let is_waived = baseline.waives(&spec, &fp);
            if !is_waived {
                total += 1;
                worst = worst.max(Some(f.severity));
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"constraint\":{},\"column\":{},\"fingerprint\":\"{fp}\",\"waived\":{is_waived},\"message\":\"{}\"}}",
                f.rule.id(),
                f.severity,
                f.constraint.map_or("null".to_string(), |r| r.to_string()),
                f.column.map_or("null".to_string(), |c| c.to_string()),
                json_escape(&f.message),
            );
        }
        out.push_str("]}");
    }
    let _ = write!(
        out,
        "],\"total_findings\":{total},\"worst\":{}}}",
        worst.map_or("null".to_string(), |w| format!("\"{w}\""))
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse_json_object;
    use zkvc_r1cs::Rule;

    #[test]
    fn private_matmul_is_flagged_unbound() {
        let (spec, _) = JobSpec::parse("3x2x3:vanilla:g:private").unwrap();
        let report = analyze_spec(&spec, 0);
        assert_eq!(
            report.num_instance, 0,
            "private outputs allocate no instance"
        );
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::UnboundPublic));
        assert_eq!(report.worst(), Some(Severity::Deny));
    }

    #[test]
    fn memoised_sweep_compiles_each_shape_once() {
        // Same circuit under both backends: two entries, identical reports.
        let (g, _) = JobSpec::parse("2x2x2:zkvc:g").unwrap();
        let (s, _) = JobSpec::parse("2x2x2:zkvc:s").unwrap();
        let results = analyze_specs(&[g, s], 0);
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].report.num_constraints,
            results[1].report.num_constraints
        );
    }

    #[test]
    fn default_sweep_names_the_shipping_matrix() {
        let sweep = default_sweep();
        // (1 matmul + 3 presets) x 4 strategies x 2 backends.
        assert_eq!(sweep.len(), 32);
        let labels: std::collections::HashSet<String> =
            sweep.iter().map(std::string::ToString::to_string).collect();
        assert_eq!(labels.len(), 32, "no duplicate spec lines");
        assert!(sweep.iter().all(super::super::spec::JobSpec::binds_outputs));
    }

    #[test]
    fn baseline_waives_by_fingerprint_and_spec() {
        let text = "\
            # reviewed 2026-08: shape-only binding is intentional here\n\
            3x2x3:vanilla:groth16:private unbound-public\n\
            dead-constraint@r7   # global waiver\n";
        let baseline = Baseline::parse(text).unwrap();
        assert_eq!(baseline.len(), 2);
        assert!(baseline.waives("3x2x3:vanilla:groth16:private", "unbound-public"));
        assert!(!baseline.waives("4x4x4:vanilla:groth16:private", "unbound-public"));
        assert!(baseline.waives("anything", "dead-constraint@r7"));
        assert!(!baseline.waives("anything", "dead-constraint@r8"));

        assert!(Baseline::parse("a b c\n").is_err());
        assert!(Baseline::parse("").unwrap().is_empty());
    }

    #[test]
    fn gate_count_respects_threshold_and_baseline() {
        let (private, _) = JobSpec::parse("3x2x3:vanilla:g:private").unwrap();
        let results = analyze_specs(&[private], 0);
        let none = Baseline::default();
        assert!(gate_count(&results, Severity::Deny, &none) > 0);

        let fp = results[0].report.findings[0].fingerprint();
        let waiver = Baseline::parse(&format!("{private} {fp}\n")).unwrap();
        assert_eq!(gate_count(&results, Severity::Deny, &waiver), 0);
    }

    #[test]
    fn reports_render_and_json_parses_flat() {
        let (clean, _) = JobSpec::parse("2x2x2:zkvc:s").unwrap();
        let (private, _) = JobSpec::parse("3x2x3:vanilla:g:private").unwrap();
        let results = analyze_specs(&[clean, private], 0);
        let baseline = Baseline::default();

        let human = render_human(&results, &baseline);
        assert!(human.contains("2x2x2:crpc+psq:spartan: clean"), "{human}");
        assert!(human.contains("unbound-public"), "{human}");
        assert!(human.contains("analyzed 2 spec(s)"), "{human}");

        let json = render_json(&results, &baseline);
        // The nested arrays make it non-flat for the wire parser, but it
        // must at least be balanced and carry the gate fields.
        assert!(json.contains("\"total_findings\":"), "{json}");
        assert!(json.contains("\"worst\":\"deny\""), "{json}");
        assert!(
            json.contains("\"fingerprint\":\"unbound-public\""),
            "{json}"
        );

        // A clean sweep's summary fields parse as JSON scalars.
        let clean_json = render_json(&results[..1], &baseline);
        assert!(clean_json.contains("\"worst\":null"), "{clean_json}");
        // Sanity: the per-finding object for the private spec is flat.
        let start = json.find("{\"rule\":").unwrap();
        let end = json[start..].find('}').unwrap();
        parse_json_object(&json[start..=start + end]).unwrap();
    }
}
