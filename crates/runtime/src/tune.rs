//! Tune-profile persistence and startup activation: the runtime half of
//! the adaptive kernel auto-tuning subsystem (`zkvc_curve::tune` holds
//! the calibration probe and the dispatch tables themselves).
//!
//! A calibrated [`TuneProfile`] is persisted as JSON beside the existing
//! verification-key cache (`<cache root>/zkvc/tune.json`, where the vk
//! cache lives at `<cache root>/zkvc/keys/`) and reloaded at startup by
//! `zkvc prove`, `prove-batch`, `serve` and `worker`. Resolution order:
//!
//! 1. `--tune-profile PATH` pins a profile file (`none` disables tuning);
//! 2. `$ZKVC_TUNE` pins one the same way;
//! 3. otherwise the default cache path is loaded **if present**.
//!
//! A pinned path that does not exist or does not parse is a usage error —
//! you asked for that exact profile, so silently proving with different
//! dispatch would defeat reproducible benching. A *version* mismatch
//! anywhere (stale profile from an old build, or a future one) falls back
//! to the static defaults with a warning: old hosts must never crash on a
//! new profile format. A missing or corrupt file at the *default* path is
//! handled like the vk cache handles corruption — warn, quarantine to
//! `.bad`, run static.
//!
//! Profiles change kernel schedules only, never results (see
//! `docs/TUNING.md`), so every path through this module yields
//! bit-identical proofs.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::RwLock;

pub use zkvc_curve::tune::{calibrate, ProbeConfig, ProfileError, TuneProfile, PROFILE_VERSION};

use crate::Error;

/// File name of the persisted profile in the zkvc cache directory.
pub const PROFILE_FILE: &str = "tune.json";

/// Short content digest of a profile: the first 8 bytes of the SHA-256 of
/// its canonical JSON, hex-encoded. Logged by every consumer (CLI
/// startup, worker registration, bench provenance) so runs can be traced
/// to the exact dispatch decisions they used.
#[must_use]
pub fn profile_digest(profile: &TuneProfile) -> String {
    let hash = zkvc_hash::sha256(profile.to_json().as_bytes());
    crate::util::hex(&hash[..8])
}

/// The default on-disk profile location: `$XDG_CACHE_HOME/zkvc/tune.json`
/// or `$HOME/.cache/zkvc/tune.json` — beside the vk cache's `keys/`
/// directory. `None` when no user cache directory exists (tuning then
/// stays in-process only).
#[must_use]
pub fn default_profile_path() -> Option<PathBuf> {
    let base = std::env::var_os("XDG_CACHE_HOME")
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("HOME").map(|h| PathBuf::from(h).join(".cache")))?;
    Some(base.join("zkvc").join(PROFILE_FILE))
}

/// Where the active profile came from, for startup logging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneSource {
    /// Explicitly pinned via `--tune-profile` or `$ZKVC_TUNE`.
    Pinned(PathBuf),
    /// Loaded from the default cache path.
    Cached(PathBuf),
    /// Freshly calibrated in this process; `Some` when also persisted.
    Calibrated(Option<PathBuf>),
    /// No profile: the static defaults (today's hard-coded dispatch).
    Static,
}

/// The profile a process resolved and activated at startup.
#[derive(Debug, Clone)]
pub struct ActiveTune {
    /// The activated profile ([`TuneProfile::static_profile`] when none
    /// was found).
    pub profile: TuneProfile,
    /// Where it came from.
    pub source: TuneSource,
}

impl ActiveTune {
    /// The digest consumers log; `"static"` when no calibrated profile is
    /// active, so log lines always carry a meaningful token.
    #[must_use]
    pub fn digest(&self) -> String {
        match self.source {
            TuneSource::Static => "static".to_string(),
            _ => profile_digest(&self.profile),
        }
    }

    /// One human line describing the active tuning, for startup logs.
    #[must_use]
    pub fn describe(&self) -> String {
        match &self.source {
            TuneSource::Pinned(path) => {
                format!("profile {} pinned from {}", self.digest(), path.display())
            }
            TuneSource::Cached(path) => {
                format!("profile {} loaded from {}", self.digest(), path.display())
            }
            TuneSource::Calibrated(Some(path)) => format!(
                "profile {} calibrated and persisted to {}",
                self.digest(),
                path.display()
            ),
            TuneSource::Calibrated(None) => {
                format!("profile {} calibrated (in-process only)", self.digest())
            }
            TuneSource::Static => "static defaults (no calibrated profile)".to_string(),
        }
    }
}

/// Reads and parses a profile file. [`ProfileError`] distinguishes a
/// version mismatch (caller falls back) from garbage (caller quarantines
/// or errors); plain I/O failure is reported separately.
pub fn load_profile(path: &Path) -> Result<TuneProfile, LoadError> {
    let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    TuneProfile::from_json(&text).map_err(LoadError::Profile)
}

/// Why [`load_profile`] failed.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The bytes were read but are not a usable profile.
    Profile(ProfileError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "{e}"),
            LoadError::Profile(e) => write!(f, "{e}"),
        }
    }
}

/// Persists a profile atomically (tmp + rename, like the vk cache), and
/// returns the path written. Parent directories are created as needed.
pub fn persist_profile(profile: &TuneProfile, path: &Path) -> io::Result<PathBuf> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, profile.to_json())?;
    std::fs::rename(&tmp, path)?;
    Ok(path.to_path_buf())
}

/// Resolves which profile file (if any) governs this invocation.
/// `flag` is the raw `--tune-profile` value when the user passed one.
#[must_use]
pub fn resolve_source(flag: Option<&str>) -> TuneSource {
    match flag {
        Some("none") => TuneSource::Static,
        Some(path) => TuneSource::Pinned(PathBuf::from(path)),
        None => match std::env::var_os("ZKVC_TUNE") {
            Some(v) if v == "none" => TuneSource::Static,
            Some(v) => TuneSource::Pinned(PathBuf::from(v)),
            None => match default_profile_path() {
                Some(path) => TuneSource::Cached(path),
                None => TuneSource::Static,
            },
        },
    }
}

/// Resolves, loads and **activates** the tune profile for this process —
/// the single startup call shared by `zkvc prove/prove-batch/serve/
/// worker`. Returns what was activated; failure modes follow the module
/// contract above (pinned-and-broken is an error, everything else
/// degrades to static with a warning on stderr).
pub fn startup(flag: Option<&str>) -> Result<ActiveTune, Error> {
    let source = resolve_source(flag);
    let active = match &source {
        // resolve_source never yields Calibrated — that source only comes
        // out of calibrate_activate_persist.
        TuneSource::Static | TuneSource::Calibrated(_) => ActiveTune {
            profile: TuneProfile::static_profile(),
            source: TuneSource::Static,
        },
        TuneSource::Pinned(path) => match load_profile(path) {
            Ok(profile) => ActiveTune {
                profile,
                source: source.clone(),
            },
            Err(LoadError::Profile(ProfileError::Version { found })) => {
                eprintln!(
                    "warning: pinned tune profile {} has version {found} (this build speaks \
                     {PROFILE_VERSION}); running with static kernel defaults",
                    path.display()
                );
                ActiveTune {
                    profile: TuneProfile::static_profile(),
                    source: TuneSource::Static,
                }
            }
            Err(e) => {
                return Err(Error::Usage(format!(
                    "cannot load pinned tune profile {}: {e}",
                    path.display()
                )));
            }
        },
        TuneSource::Cached(path) => match load_profile(path) {
            Ok(profile) => ActiveTune {
                profile,
                source: source.clone(),
            },
            Err(LoadError::Io(_)) => {
                // No cached profile yet: the normal cold-start case.
                ActiveTune {
                    profile: TuneProfile::static_profile(),
                    source: TuneSource::Static,
                }
            }
            Err(LoadError::Profile(ProfileError::Version { found })) => {
                eprintln!(
                    "warning: cached tune profile {} has version {found} (this build speaks \
                     {PROFILE_VERSION}); running with static kernel defaults \
                     (re-run `zkvc tune` to recalibrate)",
                    path.display()
                );
                ActiveTune {
                    profile: TuneProfile::static_profile(),
                    source: TuneSource::Static,
                }
            }
            Err(LoadError::Profile(ProfileError::Parse(msg))) => {
                // Same treatment as a corrupt vk-cache entry: quarantine
                // so the damage is inspectable and the path is free for a
                // clean rewrite.
                let mut bad = path.clone().into_os_string();
                bad.push(".bad");
                let _ = std::fs::rename(path, &bad);
                eprintln!(
                    "warning: cached tune profile {} is corrupt ({msg}); quarantined to .bad, \
                     running with static kernel defaults",
                    path.display()
                );
                ActiveTune {
                    profile: TuneProfile::static_profile(),
                    source: TuneSource::Static,
                }
            }
        },
    };
    zkvc_curve::tune::activate(&active.profile);
    record_active(&active);
    Ok(active)
}

/// The digest of whatever this process last activated, for bench/report
/// provenance (`"static"` until a calibrated profile is installed).
static ACTIVE_DIGEST: RwLock<Option<String>> = RwLock::new(None);

fn record_active(active: &ActiveTune) {
    let mut slot = ACTIVE_DIGEST.write().expect("active tune digest poisoned");
    *slot = Some(active.digest());
}

/// Digest of the tune profile governing this process's kernel dispatch —
/// what every `BENCH_*.json` emitter records as `tune_profile`
/// provenance. `"static"` when no profile was ever activated.
#[must_use]
pub fn active_digest() -> String {
    ACTIVE_DIGEST
        .read()
        .expect("active tune digest poisoned")
        .clone()
        .unwrap_or_else(|| "static".to_string())
}

/// Runs the calibration probe, activates the result, and (when a path is
/// given) persists it for future startups. Persistence failure is a
/// warning, not an error — the calibrated profile still governs this
/// process. Shared by `zkvc tune` and the worker's cold-start path.
pub fn calibrate_activate_persist(config: &ProbeConfig, path: Option<&Path>) -> ActiveTune {
    let profile = calibrate(config);
    zkvc_curve::tune::activate(&profile);
    let source = match path {
        Some(path) => match persist_profile(&profile, path) {
            Ok(written) => TuneSource::Calibrated(Some(written)),
            Err(e) => {
                eprintln!(
                    "warning: could not persist tune profile to {}: {e}",
                    path.display()
                );
                TuneSource::Calibrated(None)
            }
        },
        None => TuneSource::Calibrated(None),
    };
    let active = ActiveTune { profile, source };
    record_active(&active);
    active
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that activate profiles mutate process-global dispatch
    /// tables; serialise them so parallel test threads don't observe each
    /// other's installs.
    static GLOBALS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("zkvc-tune-test-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn persist_load_roundtrip() {
        let path = temp_path("roundtrip");
        let mut profile = TuneProfile::static_profile();
        profile.msm.set_affine(11, true);
        profile.msm.set_window(11, 7);
        persist_profile(&profile, &path).expect("persist");
        let back = load_profile(&path).expect("load");
        assert_eq!(back, profile);
        // Digest is stable for identical content.
        assert_eq!(profile_digest(&back), profile_digest(&profile));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_load_error() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(load_profile(&path), Err(LoadError::Io(_))));
    }

    #[test]
    fn version_mismatch_is_distinguished_from_garbage() {
        let path = temp_path("version");
        let mut profile = TuneProfile::static_profile();
        profile.version = PROFILE_VERSION + 9;
        persist_profile(&profile, &path).expect("persist");
        assert!(matches!(
            load_profile(&path),
            Err(LoadError::Profile(ProfileError::Version { found })) if found == PROFILE_VERSION + 9
        ));
        std::fs::write(&path, "{ not json").expect("scribble");
        assert!(matches!(
            load_profile(&path),
            Err(LoadError::Profile(ProfileError::Parse(_)))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resolve_source_honours_flag_over_env() {
        // Flag wins outright; "none" disables even with an env var set.
        assert_eq!(
            resolve_source(Some("/tmp/p.json")),
            TuneSource::Pinned(PathBuf::from("/tmp/p.json"))
        );
        assert_eq!(resolve_source(Some("none")), TuneSource::Static);
    }

    #[test]
    fn pinned_missing_profile_is_a_usage_error() {
        let path = temp_path("pinned-missing");
        let _ = std::fs::remove_file(&path);
        let err = startup(Some(path.to_str().expect("utf8 path")))
            .expect_err("missing pinned profile must fail");
        assert!(matches!(err, Error::Usage(_)), "{err}");
    }

    #[test]
    fn pinned_version_mismatch_warns_and_falls_back_to_static() {
        let _serial = GLOBALS.lock().expect("test mutex");
        let path = temp_path("pinned-version");
        let mut profile = TuneProfile::static_profile();
        // A calibrated-looking profile with a future version stamp.
        profile.version = PROFILE_VERSION + 1;
        profile.fft.set_parallel(18, false);
        persist_profile(&profile, &path).expect("persist");
        let active = startup(Some(path.to_str().expect("utf8 path")))
            .expect("version mismatch must not be fatal");
        assert_eq!(active.source, TuneSource::Static);
        assert_eq!(active.profile.msm, zkvc_curve::tune::MsmParams::STATIC);
        assert_eq!(active.digest(), "static");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pinned_profile_activates_and_digests() {
        let _serial = GLOBALS.lock().expect("test mutex");
        let path = temp_path("pinned-ok");
        let mut profile = TuneProfile::static_profile();
        profile.msm.set_affine(10, true);
        profile.msm.set_window(10, 6);
        persist_profile(&profile, &path).expect("persist");
        let active = startup(Some(path.to_str().expect("utf8 path"))).expect("startup");
        assert!(matches!(active.source, TuneSource::Pinned(_)));
        assert_eq!(active.profile, profile);
        assert_eq!(active.digest(), profile_digest(&profile));
        assert_eq!(zkvc_curve::tune::msm_params(), profile.msm);
        // Restore the static defaults for the rest of the test binary.
        zkvc_curve::tune::activate(&TuneProfile::static_profile());
        let _ = std::fs::remove_file(&path);
    }
}
