//! The sharded, work-stealing job scheduler underneath
//! [`ProvingPool`](crate::ProvingPool).
//!
//! Jobs land on per-worker shards (round-robin at submission); each shard
//! is a pair of FIFO deques, one per [`Priority`]. A worker drains its own
//! shard first and **steals from the other shards when idle**, so a skewed
//! batch — one model-block job pinning a worker for seconds next to a pile
//! of small matmuls — never leaves runnable work stranded behind a busy
//! worker. Priorities are global: every worker exhausts *all* reachable
//! high-priority work (own shard, then victims) before touching a normal
//! job, which is what keeps small interactive matmuls from starving behind
//! model blocks.
//!
//! Two further properties the proving service needs from its queue:
//!
//! * **Bounded-queue backpressure** — [`Scheduler::submit`] blocks once
//!   `queue_bound` jobs are waiting, so a producer that outpaces the
//!   workers (a client flooding `zkvc serve`) holds its own requests in
//!   the pipe instead of ballooning the process heap.
//! * **Cooperative cancellation** — [`Scheduler::cancel`] flips a flag
//!   that job execution checks at pickup (and at checkpoints inside a
//!   job); queued work keeps flowing to workers so the *caller* can drain
//!   it as recorded-but-unproved results, promptly and accountably.
//!
//! The scheduler is generic over the job type and does no proving itself,
//! so its concurrency semantics are unit-testable without touching a
//! backend. [`SchedulerPolicy::SingleQueue`] reproduces the pre-sharding
//! design (one shared FIFO, no priorities) and exists so the pool bench
//! can measure the old scheduler against the new one forever.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crossbeam::deque::{Steal, Stealer, Worker};

/// Scheduling class of one job. High-priority work is dispatched before
/// normal work everywhere (own shard and steals alike).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Dispatch ahead of normal work (small interactive statements).
    High,
    /// Default class (bulk and model-block jobs).
    Normal,
}

/// Which queueing discipline the scheduler runs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Per-worker sharded deques with steal-on-idle and priorities (the
    /// default).
    #[default]
    WorkStealing,
    /// One shared strict-FIFO queue, no priorities: the pre-sharding pool
    /// design, kept as the bench baseline.
    SingleQueue,
}

/// One worker's slice of the queue: a deque per priority level.
struct Shard<T> {
    high: Worker<T>,
    high_stealer: Stealer<T>,
    normal: Worker<T>,
    normal_stealer: Stealer<T>,
}

impl<T> Shard<T> {
    fn new() -> Self {
        let high = Worker::new_fifo();
        let normal = Worker::new_fifo();
        Shard {
            high_stealer: high.stealer(),
            normal_stealer: normal.stealer(),
            high,
            normal,
        }
    }
}

/// Counters guarded by the coordination mutex. `queued` counts accepted
/// jobs not yet handed to a worker; it is incremented *before* the shard
/// push (see [`Scheduler::submit`]) so the idle test in
/// [`Scheduler::next`] can never report "empty" while a publish is in
/// flight.
struct State {
    queued: usize,
    closed: bool,
}

/// A sharded work-stealing scheduler; see the module docs.
pub struct Scheduler<T> {
    shards: Vec<Shard<T>>,
    state: Mutex<State>,
    /// Workers park here when no job is reachable.
    work: Condvar,
    /// Submitters park here when the queue is at its bound.
    space: Condvar,
    cancelled: AtomicBool,
    next_shard: AtomicUsize,
    bound: usize,
    policy: SchedulerPolicy,
}

impl<T> Scheduler<T> {
    /// A scheduler with one shard per worker, blocking submissions once
    /// `bound` jobs are queued (`bound` is clamped to at least 1).
    pub fn new(workers: usize, bound: usize, policy: SchedulerPolicy) -> Self {
        let workers = workers.max(1);
        Scheduler {
            shards: (0..workers).map(|_| Shard::new()).collect(),
            state: Mutex::new(State {
                queued: 0,
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            cancelled: AtomicBool::new(false),
            next_shard: AtomicUsize::new(0),
            bound: bound.max(1),
            policy,
        }
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.state.lock().expect("scheduler state poisoned").queued
    }

    /// Enqueues a job, blocking while the queue is at its bound (the
    /// backpressure path; cancellation lifts the bound so drains can't
    /// deadlock a blocked producer). Returns the job back as `Err` when
    /// the scheduler is already closed.
    pub fn submit(&self, item: T, priority: Priority) -> Result<(), T> {
        {
            let mut st = self.state.lock().expect("scheduler state poisoned");
            loop {
                if st.closed {
                    return Err(item);
                }
                if st.queued < self.bound || self.is_cancelled() {
                    break;
                }
                st = self.space.wait(st).expect("scheduler state poisoned");
            }
            st.queued += 1;
        }
        let shard = match self.policy {
            SchedulerPolicy::SingleQueue => &self.shards[0],
            SchedulerPolicy::WorkStealing => {
                let idx = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
                &self.shards[idx]
            }
        };
        match (self.policy, priority) {
            // The single-queue baseline is strict FIFO: priorities collapse.
            (SchedulerPolicy::SingleQueue, _) => shard.normal.push(item),
            (SchedulerPolicy::WorkStealing, Priority::High) => shard.high.push(item),
            (SchedulerPolicy::WorkStealing, Priority::Normal) => shard.normal.push(item),
        }
        self.work.notify_one();
        Ok(())
    }

    /// One dispatch attempt for `worker`: own shard first (high before
    /// normal), then steal-on-idle from the other shards in ring order —
    /// all reachable high-priority work is preferred over any normal job.
    fn try_pop(&self, worker: usize) -> Option<T> {
        let n = self.shards.len();
        let worker = worker % n;
        match self.policy {
            SchedulerPolicy::SingleQueue => self.shards[0].normal.pop(),
            SchedulerPolicy::WorkStealing => {
                if let Some(item) = self.shards[worker].high.pop() {
                    return Some(item);
                }
                for k in 1..n {
                    if let Steal::Success(item) = self.shards[(worker + k) % n].high_stealer.steal()
                    {
                        return Some(item);
                    }
                }
                if let Some(item) = self.shards[worker].normal.pop() {
                    return Some(item);
                }
                for k in 1..n {
                    if let Steal::Success(item) =
                        self.shards[(worker + k) % n].normal_stealer.steal()
                    {
                        return Some(item);
                    }
                }
                None
            }
        }
    }

    /// Blocks until a job is available for `worker` (own or stolen) and
    /// returns it, or returns `None` when the scheduler is closed and
    /// fully drained — the worker's signal to exit. Cancellation does
    /// *not* stop delivery: remaining jobs still flow out so the caller
    /// can record them as cancelled.
    pub fn next(&self, worker: usize) -> Option<T> {
        loop {
            if let Some(item) = self.try_pop(worker) {
                let mut st = self.state.lock().expect("scheduler state poisoned");
                st.queued -= 1;
                drop(st);
                self.space.notify_one();
                return Some(item);
            }
            let st = self.state.lock().expect("scheduler state poisoned");
            if st.queued == 0 {
                if st.closed {
                    return None;
                }
                // The timeout is a belt-and-braces guard against a missed
                // wakeup; correctness only needs the re-scan on wake.
                let (_g, _) = self
                    .work
                    .wait_timeout(st, Duration::from_millis(50))
                    .expect("scheduler state poisoned");
            } else {
                // A submitter has incremented `queued` but not yet pushed
                // to its shard: spin past the tiny publish window.
                drop(st);
                std::thread::yield_now();
            }
        }
    }

    /// Closes the queue: no new submissions are accepted, workers drain
    /// what is left and then see `None` from [`Scheduler::next`].
    pub fn close(&self) {
        let mut st = self.state.lock().expect("scheduler state poisoned");
        st.closed = true;
        drop(st);
        self.work.notify_all();
        self.space.notify_all();
    }

    /// Requests cooperative cancellation: queued jobs keep draining to
    /// workers (so they can be recorded as cancelled) and any producer
    /// blocked on backpressure is released.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        // Empty critical section orders the flag store before the wakeups.
        drop(self.state.lock().expect("scheduler state poisoned"));
        self.work.notify_all();
        self.space.notify_all();
    }

    /// `true` once [`Scheduler::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn steal_on_idle_balances_a_skewed_backlog() {
        // Four jobs land round-robin on two shards. Worker 0 takes exactly
        // one job and then stalls (a long model block, say). Worker 1 must
        // drain *everything else*, including the jobs parked on shard 0 —
        // that is steal-on-idle, deterministically.
        let sched = Scheduler::new(2, 64, SchedulerPolicy::WorkStealing);
        for i in 0..4 {
            sched.submit(i, Priority::Normal).unwrap();
        }
        let first = sched.next(0).unwrap();
        let mut worker1 = Vec::new();
        while sched.queued() > 0 {
            worker1.push(sched.next(1).unwrap());
        }
        let mut all: Vec<i32> = worker1.clone();
        all.push(first);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(worker1.len(), 3, "worker 1 stole shard 0's backlog");
    }

    #[test]
    fn high_priority_jobs_jump_normal_backlogs_everywhere() {
        // Normal jobs across both shards, then high-priority ones: every
        // reachable high job must be dispatched before any normal job,
        // from the owner's shard or a victim's.
        let sched = Scheduler::new(2, 64, SchedulerPolicy::WorkStealing);
        for i in 0..4 {
            sched
                .submit((Priority::Normal, i), Priority::Normal)
                .unwrap();
        }
        for i in 0..3 {
            sched.submit((Priority::High, i), Priority::High).unwrap();
        }
        let order: Vec<(Priority, i32)> = (0..7).map(|_| sched.next(0).unwrap()).collect();
        let highs = order.iter().take(3).map(|(p, _)| *p).collect::<Vec<_>>();
        assert_eq!(highs, vec![Priority::High; 3], "{order:?}");
    }

    #[test]
    fn single_queue_policy_is_strict_fifo() {
        let sched = Scheduler::new(3, 64, SchedulerPolicy::SingleQueue);
        sched.submit(0, Priority::Normal).unwrap();
        sched.submit(1, Priority::High).unwrap();
        sched.submit(2, Priority::Normal).unwrap();
        // Any worker index pops from the one shared queue, in order.
        assert_eq!(sched.next(2), Some(0));
        assert_eq!(sched.next(0), Some(1));
        assert_eq!(sched.next(1), Some(2));
    }

    #[test]
    fn submit_blocks_at_the_bound_and_unblocks_on_pop() {
        let sched = Arc::new(Scheduler::new(1, 2, SchedulerPolicy::WorkStealing));
        sched.submit(0, Priority::Normal).unwrap();
        sched.submit(1, Priority::Normal).unwrap();
        assert_eq!(sched.queued(), 2);

        let submitted = Arc::new(AtomicBool::new(false));
        let handle = {
            let sched = Arc::clone(&sched);
            let submitted = Arc::clone(&submitted);
            std::thread::spawn(move || {
                sched.submit(2, Priority::Normal).unwrap();
                submitted.store(true, Ordering::SeqCst);
            })
        };
        // The third submit must still be blocked after a generous delay...
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            !submitted.load(Ordering::SeqCst),
            "submit above the bound must block"
        );
        // ...and must complete promptly once a worker frees a slot.
        assert_eq!(sched.next(0), Some(0));
        let t0 = Instant::now();
        while !submitted.load(Ordering::SeqCst) {
            assert!(t0.elapsed() < Duration::from_secs(5), "submit never woke");
            std::thread::yield_now();
        }
        handle.join().unwrap();
        assert_eq!(sched.next(0), Some(1));
        assert_eq!(sched.next(0), Some(2));
    }

    #[test]
    fn cancel_releases_blocked_producers_and_keeps_draining() {
        let sched = Arc::new(Scheduler::new(1, 1, SchedulerPolicy::WorkStealing));
        sched.submit(0, Priority::Normal).unwrap();
        let handle = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || sched.submit(1, Priority::Normal))
        };
        std::thread::sleep(Duration::from_millis(50));
        sched.cancel();
        // The blocked producer is released (the bound is lifted) and its
        // job is still queued for an accountable cancelled drain.
        handle.join().unwrap().unwrap();
        assert!(sched.is_cancelled());
        assert_eq!(sched.next(0), Some(0));
        assert_eq!(sched.next(0), Some(1));
        assert_eq!(sched.queued(), 0);
    }

    #[test]
    fn close_drains_then_exits_workers() {
        let sched = Arc::new(Scheduler::new(2, 16, SchedulerPolicy::WorkStealing));
        for i in 0..8 {
            sched.submit(i, Priority::Normal).unwrap();
        }
        sched.close();
        assert!(sched.submit(99, Priority::Normal).is_err(), "closed");
        let mut seen = Vec::new();
        let mut handles = Vec::new();
        for w in 0..2 {
            let sched = Arc::clone(&sched);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = sched.next(w) {
                    got.push(item);
                }
                got
            }));
        }
        for h in handles {
            seen.extend(h.join().unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_workers_wake_on_late_submissions() {
        let sched = Arc::new(Scheduler::new(1, 16, SchedulerPolicy::WorkStealing));
        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || sched.next(0))
        };
        std::thread::sleep(Duration::from_millis(30));
        sched.submit(7, Priority::Normal).unwrap();
        assert_eq!(worker.join().unwrap(), Some(7));
    }
}
