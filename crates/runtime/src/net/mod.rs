//! Network-native proving service: the socket transports behind
//! `zkvc serve --listen` and the `zkvc client` load driver.
//!
//! The stdin serve loop ([`crate::serve`]) handles exactly one session
//! over one pipe. This module promotes the same wire dialect
//! (`zkvc-serve/v1`, see [`crate::wire`] and `docs/PROTOCOL.md`) to a
//! real server:
//!
//! * [`ListenAddr`] — `unix:/path/to.sock` and `tcp:HOST:PORT` endpoint
//!   grammar, shared by server and client.
//! * [`serve_listener`] — accept loop + thread-per-connection sessions,
//!   all multiplexed onto **one** shared [`ProvingPool`](crate::ProvingPool)
//!   and warm [`KeyCache`](crate::KeyCache). Each session keeps its own
//!   id space, key-announcement state, and summary counters; a
//!   per-session [`SessionCtl`](crate::SessionCtl) bounds its in-flight
//!   jobs (backpressure lands in the client's socket, not in server
//!   memory) and cancels the remainder when the client disconnects.
//! * [`run_client`] / [`run_sweep`] — the measuring client: streams
//!   requests, verifies returned envelopes against the streamed `key`
//!   lines, and reports latency percentiles and throughput
//!   (`BENCH_serve.json`).
//!
//! Everything is hand-rolled on `std` blocking sockets — no async
//! runtime. Read timeouts double as the poll tick that notices shutdown
//! flags, idle sessions, and broken outputs.

mod addr;
mod client;
mod server;

pub use addr::{AnyStream, ListenAddr};
pub use client::{run_client, run_sweep, ClientConfig, ClientReport, SessionReport};
pub use server::{serve_listener, NetConfig, NetSummary};
