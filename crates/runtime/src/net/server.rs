//! The socket listener: accept loop, thread-per-connection sessions, and
//! the connection registry that routes pool results back to the session
//! that submitted them.
//!
//! Every connection gets its own thread running the same intake loop as
//! the stdin [`crate::serve`] path (shared wire grammar, shared
//! [`SessionOut`](crate::serve) response plumbing), but all sessions
//! feed **one** [`ProvingPool`] and one warm [`KeyCache`]: a shape set
//! up for client A is a cache hit for client B. Isolation is per
//! session — id spaces, key announcements, summary counters, and a
//! [`SessionCtl`] that (a) bounds the session's in-flight jobs so one
//! greedy client parks in its own socket rather than flooding the shared
//! queue, and (b) cancels the remainder when the client disconnects.
//!
//! Blocking reads with a short timeout double as the poll tick: each
//! tick checks the shutdown flag, the idle deadline, and whether the
//! response stream broke (dead peer). On shutdown the listener stops
//! accepting, every session drains its in-flight jobs, flushes its
//! responses, and emits its summary line before the process exits.

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::analysis::Preflight;
use crate::cache::KeyCache;
use crate::coordinator::Coordinator;
use crate::error::Error;
use crate::net::addr::{AnyListener, AnyStream, ListenAddr};
use crate::pool::{JobOptions, PoolConfig, ProvingPool, ResultSink, SessionCtl};
use crate::serve::{ready_line, Output, ServeConfig, ServeSummary, SessionOut};
use crate::wire::{error_line, parse_request, parse_worker_register, LineReader, LineReject};

/// How often a blocked session read wakes to poll shutdown/idle/broken
/// state. This bounds how stale a session's view of the shutdown flag
/// can get, so it is also the floor on SIGTERM drain latency — kept
/// small enough that a drain is dominated by the jobs it flushes (or
/// their deadlines), not by polling.
const READ_TICK: Duration = Duration::from_millis(50);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// Configuration for [`serve_listener`]: the per-session serve settings
/// plus the listener-level policies.
#[derive(Debug)]
pub struct NetConfig {
    /// Per-session settings (workers and queue bound apply to the one
    /// shared pool; seed, request-size bound, proof inclusion and cache
    /// settings apply to every session).
    pub serve: ServeConfig,
    /// Sessions silent for this long (no complete request line) with no
    /// in-flight jobs are reaped: answered with an error line, summarised
    /// and closed. `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
    /// Per-session in-flight job bound: a session blocks in its own
    /// socket once this many of its jobs are queued or running, leaving
    /// the shared queue fair for other sessions.
    pub session_bound: usize,
    /// Global admission bound across *all* sessions: a request that would
    /// push the pool's total in-flight jobs past this is refused with a
    /// code-3 `shed` error (and a `retry_after_ms` hint) instead of
    /// queueing. `None` disables shedding (requests park on the session
    /// and queue bounds instead).
    pub admission_bound: Option<usize>,
    /// The backoff hint a shed response carries, in milliseconds.
    pub retry_after_ms: u64,
}

impl NetConfig {
    /// Defaults: 5-minute idle timeout, 64 in-flight jobs per session, no
    /// global admission bound, a 100 ms shed retry hint.
    pub fn new(serve: ServeConfig) -> Self {
        NetConfig {
            serve,
            idle_timeout: Some(Duration::from_secs(300)),
            session_bound: 64,
            admission_bound: None,
            retry_after_ms: 100,
        }
    }

    /// Sets (or disables) the idle-session reap timeout.
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the per-session in-flight bound (clamped to at least 1).
    pub fn session_bound(mut self, bound: usize) -> Self {
        self.session_bound = bound.max(1);
        self
    }

    /// Sets (or disables) the global admission bound (clamped to at
    /// least 1 when set).
    pub fn admission_bound(mut self, bound: Option<usize>) -> Self {
        self.admission_bound = bound.map(|b| b.max(1));
        self
    }

    /// Sets the `retry_after_ms` hint shed responses carry.
    pub fn retry_after_ms(mut self, ms: u64) -> Self {
        self.retry_after_ms = ms;
        self
    }
}

/// What a whole [`serve_listener`] run did, aggregated over every
/// session it accepted.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NetSummary {
    /// Connections accepted.
    pub sessions: usize,
    /// Jobs accepted and run across all sessions (cancelled included).
    pub jobs: usize,
    /// Jobs whose proof verified.
    pub verified: usize,
    /// Jobs that did not verify (bad proof, cancelled, panicked).
    pub failed: usize,
    /// Request lines rejected before reaching the pool.
    pub rejected: usize,
    /// Well-formed requests refused by the global admission bound (each
    /// was answered with a code-3 `shed` error, never queued).
    pub shed: usize,
    /// Sessions that ended uncleanly (peer vanished; their in-flight
    /// jobs were cancelled).
    pub disconnected: usize,
    /// Sessions reaped by the idle timeout.
    pub reaped_idle: usize,
    /// Connections that registered as remote proving workers
    /// (zkvc-worker/v1) over the run's lifetime. Worker connections are
    /// counted in `sessions` too, but contribute no job totals of their
    /// own — their results are attributed to the client session that
    /// submitted each job.
    pub remote_workers: usize,
}

/// How a session ended; folded into [`NetSummary`].
enum SessionEnd {
    /// Client half-closed its write side: the orderly goodbye.
    Eof,
    /// The server-wide shutdown flag was raised.
    Shutdown,
    /// The peer vanished (read error or broken response stream).
    Disconnected,
    /// The idle timeout fired with nothing in flight.
    ReapedIdle,
    /// The connection registered as a remote proving worker and spent its
    /// life in the coordinator's read loop.
    Worker,
}

/// One live session in the registry: its response plumbing and its
/// cancellation/backpressure scope. The pool's result sink routes by
/// [`JobResult::session_id`](crate::JobResult::session_id) into this.
struct SessionEntry {
    out: SessionOut<AnyStream>,
    ctl: Arc<SessionCtl>,
}

type Registry = Mutex<HashMap<u64, Arc<SessionEntry>>>;

/// Settings every session thread needs, extracted once.
struct SessionParams {
    max_request_bytes: usize,
    queue_bound: usize,
    seed: u64,
    workers: usize,
    session_bound: usize,
    idle_timeout: Option<Duration>,
    admission_bound: Option<usize>,
    retry_after_ms: u64,
    /// Shared across sessions: the memoised `--analyze-on-compile`
    /// verdict cache, when the pre-flight is enabled.
    preflight: Option<Preflight>,
}

/// Binds `addr` and serves connections until `shutdown` becomes `true`,
/// then drains: stops accepting, lets every live session flush its
/// in-flight results and summary line, joins the pool, and returns the
/// aggregate totals. `on_bound` runs once with the address actually
/// bound (the resolved port for `tcp:HOST:0`) before the first accept.
///
/// Request problems are answered in-stream per session; a vanished
/// client cancels only its own remaining jobs. The returned `Err` is
/// reserved for listener-level failures (bind errors).
// Config and shutdown flag are taken by value: the server owns both for
// its whole lifetime, and callers hand them over at startup.
#[allow(clippy::needless_pass_by_value)]
pub fn serve_listener(
    addr: &ListenAddr,
    config: NetConfig,
    shutdown: Arc<AtomicBool>,
    on_bound: impl FnOnce(&ListenAddr),
) -> Result<NetSummary, Error> {
    let listener = AnyListener::bind(addr)?;
    on_bound(&listener.bound_addr());

    let cache = Arc::new(config.serve.build_cache());
    let registry: Arc<Registry> = Arc::new(Mutex::new(HashMap::new()));
    let params = Arc::new(SessionParams {
        max_request_bytes: config.serve.max_request_bytes,
        queue_bound: config.serve.queue_bound,
        seed: config.serve.seed,
        workers: config.serve.workers.max(1),
        session_bound: config.session_bound,
        idle_timeout: config.idle_timeout,
        admission_bound: config.admission_bound,
        retry_after_ms: config.retry_after_ms,
        preflight: config.serve.analyze_on_compile.then(Preflight::new),
    });

    // One sink for the whole pool: route each result to its session's
    // writer. A result whose session already deregistered (reaped or
    // long gone) is dropped — there is nowhere left to send it. A broken
    // writer (peer vanished mid-stream) cancels the session's remaining
    // jobs right here, so they drain instead of proving into the void.
    let sink: ResultSink = {
        let registry = Arc::clone(&registry);
        let cache = Arc::clone(&cache);
        let include_proofs = config.serve.include_proofs;
        let disk = config.serve.disk_cache.clone();
        Arc::new(move |result| {
            let Some(sid) = result.session_id else { return };
            let entry = registry
                .lock()
                .expect("session registry poisoned")
                .get(&sid)
                .cloned();
            if let Some(entry) = entry {
                entry
                    .out
                    .emit_result(&cache, disk.as_ref(), include_proofs, result);
                if entry.out.out.is_broken() {
                    entry.ctl.cancel();
                }
            }
        })
    };

    let pool = Arc::new(ProvingPool::configured(
        PoolConfig::new(config.serve.workers)
            .seed(config.serve.seed)
            .queue_bound(config.serve.queue_bound)
            .retain_results(false),
        Arc::clone(&cache),
        Some(sink),
    ));

    // The distributed coordinator: its dispatcher thread competes with
    // the local worker threads for queued jobs and places its leases on
    // whatever remote workers have registered. With no workers connected
    // it simply parks — a purely local server pays one idle thread.
    let (coordinator, dispatcher) = Coordinator::start(&pool, &cache);

    let totals = Arc::new(Mutex::new(NetSummary::default()));
    let mut handles = Vec::new();
    let mut next_sid: u64 = 0;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                next_sid += 1;
                let sid = next_sid;
                let pool = Arc::clone(&pool);
                let cache = Arc::clone(&cache);
                let registry = Arc::clone(&registry);
                let params = Arc::clone(&params);
                let shutdown = Arc::clone(&shutdown);
                let totals = Arc::clone(&totals);
                let coordinator = Arc::clone(&coordinator);
                handles.push(thread::spawn(move || {
                    let (summary, end, shed) = run_session(
                        stream,
                        sid,
                        &pool,
                        &cache,
                        &registry,
                        &params,
                        &shutdown,
                        &coordinator,
                    );
                    let mut totals = totals.lock().expect("net totals poisoned");
                    totals.sessions += 1;
                    totals.jobs += summary.jobs;
                    totals.verified += summary.verified;
                    totals.failed += summary.failed;
                    totals.rejected += summary.rejected;
                    totals.shed += shed;
                    match end {
                        SessionEnd::Disconnected => totals.disconnected += 1,
                        SessionEnd::ReapedIdle => totals.reaped_idle += 1,
                        SessionEnd::Worker => totals.remote_workers += 1,
                        SessionEnd::Eof | SessionEnd::Shutdown => {}
                    }
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient accept failures (fd exhaustion, aborted
            // handshakes): back off and keep listening — one hiccup must
            // not take the whole service down.
            Err(_) => thread::sleep(ACCEPT_TICK),
        }
    }

    // Graceful drain: the accept loop has stopped; every session notices
    // the flag within a read tick. Client sessions drain their in-flight
    // jobs through the sink and write their summaries; worker-connection
    // threads say goodbye to their workers and re-queue any outstanding
    // leases onto the local pool. Only after all of that does the
    // coordinator's dispatcher stop, the queue close, and the shared
    // pool join — so every accepted job is answered before exit.
    for handle in handles {
        let _ = handle.join();
    }
    coordinator.shutdown();
    pool.close_intake();
    let _ = dispatcher.join();
    drop(listener);
    Arc::try_unwrap(pool)
        .expect("all session threads joined")
        .join();
    let totals = *totals.lock().expect("net totals poisoned");
    Ok(totals)
}

/// One connection's lifecycle: handshake, request intake with
/// per-session backpressure, drain, summary. A connection whose first
/// line is a `worker_register` is handed to the coordinator instead and
/// this thread becomes the worker's reader.
#[allow(clippy::too_many_arguments)]
fn run_session(
    stream: AnyStream,
    sid: u64,
    pool: &Arc<ProvingPool>,
    cache: &KeyCache,
    registry: &Registry,
    params: &SessionParams,
    shutdown: &AtomicBool,
    coordinator: &Coordinator,
) -> (ServeSummary, SessionEnd, usize) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let Ok(write_half) = stream.try_clone() else {
        return (ServeSummary::default(), SessionEnd::Disconnected, 0);
    };
    let entry = Arc::new(SessionEntry {
        out: SessionOut::new(write_half),
        ctl: Arc::new(SessionCtl::new(sid, params.session_bound)),
    });
    registry
        .lock()
        .expect("session registry poisoned")
        .insert(sid, Arc::clone(&entry));

    entry.out.out.emit(&ready_line(
        Some(sid),
        params.workers,
        params.seed,
        params.queue_bound,
    ));

    let mut reader = BufReader::new(stream);
    // One stateful reader across ticks: a read timeout mid-line must not
    // tear the partial request (see `wire::LineReader`).
    let mut lines = LineReader::new(params.max_request_bytes);
    let mut rejected = 0usize;
    let mut shed = 0usize;
    let mut last_activity = Instant::now();
    let mut end = loop {
        if shutdown.load(Ordering::SeqCst) {
            break SessionEnd::Shutdown;
        }
        if entry.out.out.is_broken() {
            entry.ctl.cancel();
            break SessionEnd::Disconnected;
        }
        match lines.read_line(&mut reader) {
            Ok(None) => break SessionEnd::Eof,
            Ok(Some(Err(LineReject::TooLarge(actual)))) => {
                rejected += 1;
                last_activity = Instant::now();
                let error = Error::RequestTooLarge {
                    actual,
                    limit: params.max_request_bytes,
                };
                entry.out.out.emit(&error_line(None, &error));
            }
            Ok(Some(Err(LineReject::NotUtf8))) => {
                rejected += 1;
                last_activity = Instant::now();
                let error = Error::Request("request line is not valid UTF-8".into());
                entry.out.out.emit(&error_line(None, &error));
            }
            Ok(Some(Ok(line))) => {
                last_activity = Instant::now();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                // A worker announcing itself turns this connection into a
                // coordinator-managed proving worker: deregister the
                // session (no client results will ever route here) and
                // let the coordinator own the rest of the stream.
                match parse_worker_register(line) {
                    Some(Ok(capacity)) => {
                        registry
                            .lock()
                            .expect("session registry poisoned")
                            .remove(&sid);
                        let Ok(worker_write) = reader.get_ref().try_clone() else {
                            return (ServeSummary::default(), SessionEnd::Disconnected, shed);
                        };
                        coordinator.run_worker_connection(
                            pool,
                            &mut reader,
                            Output::new(worker_write),
                            capacity,
                            shutdown,
                        );
                        return (ServeSummary::default(), SessionEnd::Worker, shed);
                    }
                    Some(Err(reason)) => {
                        rejected += 1;
                        entry
                            .out
                            .out
                            .emit(&error_line(None, &Error::Request(reason)));
                        continue;
                    }
                    None => {}
                }
                match parse_request(line) {
                    Ok(request) if request.count > params.queue_bound => {
                        rejected += 1;
                        let error = Error::Request(format!(
                            "repetition count {} exceeds the queue bound {} (send more lines instead)",
                            request.count, params.queue_bound
                        ));
                        entry
                            .out
                            .out
                            .emit(&error_line(request.id_json.as_deref(), &error));
                    }
                    // Overload shedding: refuse the whole request up front
                    // when admitting it would push the pool past the global
                    // bound. The refusal is a terminal answer (code 3 with a
                    // retry hint), never a queued job — a shed request does
                    // not exist as far as the drain path is concerned. The
                    // check is admission-time-only and races benignly with
                    // other sessions: the bound is a load shed, not a hard
                    // capacity invariant.
                    Ok(request)
                        if params
                            .admission_bound
                            .is_some_and(|bound| pool.in_flight() + request.count > bound) =>
                    {
                        shed += 1;
                        let error = Error::Shed {
                            retry_after_ms: params.retry_after_ms,
                        };
                        entry
                            .out
                            .out
                            .emit(&error_line(request.id_json.as_deref(), &error));
                    }
                    Ok(request) => {
                        let seed = request.seed.unwrap_or(params.seed);
                        if let Some(preflight) = &params.preflight {
                            if let Err(reason) = preflight.check(&request.spec, seed) {
                                rejected += 1;
                                let error = Error::Request(reason);
                                entry
                                    .out
                                    .out
                                    .emit(&error_line(request.id_json.as_deref(), &error));
                                continue;
                            }
                        }
                        let priority = request.priority.unwrap_or(request.spec.priority());
                        let deadline = request.deadline_ms.map(Duration::from_millis);
                        for _ in 0..request.count {
                            // A session cancelled mid-request (peer died
                            // while we were blocked on its own bound)
                            // stops submitting; the drain below settles
                            // what was already accepted.
                            if entry.ctl.is_cancelled() {
                                break;
                            }
                            pool.submit(
                                request.spec,
                                JobOptions::new()
                                    .seed(seed)
                                    .priority(priority)
                                    .tag_opt(request.id_json.clone())
                                    .session(Arc::clone(&entry.ctl))
                                    .deadline_opt(deadline),
                            );
                        }
                    }
                    Err((error, id_json)) => {
                        rejected += 1;
                        entry.out.out.emit(&error_line(id_json.as_deref(), &error));
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                // Poll tick. Reap only truly idle sessions: a client
                // quietly waiting for a deep queue of its own jobs is
                // not idle.
                if let Some(idle) = params.idle_timeout {
                    if last_activity.elapsed() >= idle && entry.ctl.in_flight() == 0 {
                        let error = Error::Request(format!(
                            "idle for {}s with no in-flight jobs, closing session",
                            idle.as_secs()
                        ));
                        entry.out.out.emit(&error_line(None, &error));
                        break SessionEnd::ReapedIdle;
                    }
                }
            }
            Err(_) => {
                entry.ctl.cancel();
                break SessionEnd::Disconnected;
            }
        }
    };

    // Settle every accepted job before summarising: results flow through
    // the pool sink into this session's writer; `drain` returns only
    // once the last one has been fully emitted. If the peer is gone the
    // first failed write latches the output broken, the sink cancels the
    // session, and the remaining jobs drain unproved — so this never
    // waits on proofs nobody will read.
    entry.ctl.drain();
    if matches!(end, SessionEnd::Eof) && entry.out.out.is_broken() {
        end = SessionEnd::Disconnected;
    }
    let summary = entry.out.emit_summary(
        Some(sid),
        rejected,
        cache,
        started.elapsed().as_secs_f64(),
        "",
    );
    registry
        .lock()
        .expect("session registry poisoned")
        .remove(&sid);
    (summary, end, shed)
}
