//! Endpoint grammar and the stream/listener abstraction over Unix-domain
//! and TCP sockets. Both transports behave identically at the session
//! layer; everything protocol-shaped lives above this file.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

use crate::error::Error;

/// A serve/client endpoint: `unix:/path/to.sock` or `tcp:HOST:PORT`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListenAddr {
    /// A Unix-domain socket at the given filesystem path.
    Unix(PathBuf),
    /// A TCP endpoint (`HOST:PORT`, as accepted by `ToSocketAddrs`).
    Tcp(String),
}

impl ListenAddr {
    /// Parses the `unix:PATH` / `tcp:HOST:PORT` endpoint grammar.
    pub fn parse(s: &str) -> Result<Self, Error> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(Error::Usage("unix: endpoint needs a path".into()));
            }
            return Ok(ListenAddr::Unix(PathBuf::from(path)));
        }
        if let Some(hostport) = s.strip_prefix("tcp:") {
            // Reject early rather than at bind time: HOST:PORT with a
            // numeric port is the whole grammar.
            let valid = hostport
                .rsplit_once(':')
                .is_some_and(|(host, port)| !host.is_empty() && port.parse::<u16>().is_ok());
            if !valid {
                return Err(Error::Usage(format!(
                    "tcp: endpoint must be HOST:PORT, got {hostport:?}"
                )));
            }
            return Ok(ListenAddr::Tcp(hostport.to_string()));
        }
        Err(Error::Usage(format!(
            "listen address must start with unix: or tcp:, got {s:?}"
        )))
    }
}

impl fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListenAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            ListenAddr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
        }
    }
}

/// A connected stream over either transport. `Read`/`Write` plus the few
/// socket controls the session layer needs (clone into read/write
/// halves, read timeouts as poll ticks, half-close for client EOF).
#[derive(Debug)]
pub enum AnyStream {
    /// A Unix-domain socket connection.
    #[cfg(unix)]
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl AnyStream {
    /// Connects to a listening endpoint (the client side).
    pub fn connect(addr: &ListenAddr) -> Result<Self, Error> {
        match addr {
            #[cfg(unix)]
            ListenAddr::Unix(path) => UnixStream::connect(path)
                .map(AnyStream::Unix)
                .map_err(|e| Error::io(path.clone(), e)),
            #[cfg(not(unix))]
            ListenAddr::Unix(path) => Err(Error::io(
                path.clone(),
                io::Error::new(io::ErrorKind::Unsupported, "unix sockets need a unix host"),
            )),
            ListenAddr::Tcp(hostport) => {
                // Nagle would batch our small JSON lines; the protocol is
                // latency-sensitive request/response, so disable it.
                let stream = TcpStream::connect(hostport.as_str())
                    .map_err(|e| Error::io(hostport.as_str(), e))?;
                let _ = stream.set_nodelay(true);
                Ok(AnyStream::Tcp(stream))
            }
        }
    }

    /// Clones the stream into an independent handle (read/write halves
    /// share the one socket).
    pub fn try_clone(&self) -> io::Result<Self> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.try_clone().map(AnyStream::Unix),
            AnyStream::Tcp(s) => s.try_clone().map(AnyStream::Tcp),
        }
    }

    /// Sets the read timeout; timed-out reads surface as
    /// `WouldBlock`/`TimedOut` errors and serve as poll ticks.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_read_timeout(timeout),
            AnyStream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Half-closes the write side: the peer sees EOF after draining, but
    /// this end can keep reading responses (how a client says "no more
    /// requests, flush everything").
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.shutdown(Shutdown::Write),
            AnyStream::Tcp(s) => s.shutdown(Shutdown::Write),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // Fault points (no-ops unless a ZKVC_FAULTS schedule arms them):
        // a stalled, failed, or short read — the three ways a real socket
        // goes bad under load. A short read must stay a *valid* `Read`
        // outcome (some bytes delivered), so it truncates the destination
        // rather than dropping data already read off the socket.
        crate::fault::fire_delay("net.read.delay");
        if crate::fault::fires("net.read.io_error").is_some() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected fault: net.read.io_error",
            ));
        }
        let buf = if crate::fault::fires("net.read.short").is_some() && !buf.is_empty() {
            &mut buf[..1]
        } else {
            buf
        };
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
            AnyStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        crate::fault::fire_delay("net.write.delay");
        if crate::fault::fires("net.write.io_error").is_some() {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected fault: net.write.io_error",
            ));
        }
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
            AnyStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
            AnyStream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound, non-blocking listener over either transport. Owns the Unix
/// socket path and removes it on drop.
#[derive(Debug)]
pub(crate) enum AnyListener {
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl AnyListener {
    /// Binds the endpoint non-blocking. A stale Unix socket file (left
    /// by a killed server) is removed first, matching daemon convention.
    pub(crate) fn bind(addr: &ListenAddr) -> Result<Self, Error> {
        let listener = match addr {
            #[cfg(unix)]
            ListenAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path).map_err(|e| Error::io(path.clone(), e))?;
                AnyListener::Unix(listener, path.clone())
            }
            #[cfg(not(unix))]
            ListenAddr::Unix(path) => {
                return Err(Error::io(
                    path.clone(),
                    io::Error::new(io::ErrorKind::Unsupported, "unix sockets need a unix host"),
                ))
            }
            ListenAddr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport.as_str())
                    .map_err(|e| Error::io(hostport.as_str(), e))?;
                AnyListener::Tcp(listener)
            }
        };
        match &listener {
            #[cfg(unix)]
            AnyListener::Unix(l, path) => l
                .set_nonblocking(true)
                .map_err(|e| Error::io(path.clone(), e))?,
            AnyListener::Tcp(l) => l
                .set_nonblocking(true)
                .map_err(|e| Error::io(addr.to_string(), e))?,
        }
        Ok(listener)
    }

    /// The address actually bound — `tcp:HOST:0` resolves to the real
    /// ephemeral port here, which is what tests and `--listen` banners
    /// need.
    pub(crate) fn bound_addr(&self) -> ListenAddr {
        match self {
            #[cfg(unix)]
            AnyListener::Unix(_, path) => ListenAddr::Unix(path.clone()),
            AnyListener::Tcp(l) => ListenAddr::Tcp(
                l.local_addr()
                    .map_or_else(|_| "?:0".into(), |a| a.to_string()),
            ),
        }
    }

    /// Accepts one pending connection; `WouldBlock` when none is ready.
    pub(crate) fn accept(&self) -> io::Result<AnyStream> {
        match self {
            #[cfg(unix)]
            AnyListener::Unix(l, _) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                AnyStream::Tcp(s)
            }),
        }
    }
}

impl Drop for AnyListener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let AnyListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_addr_grammar_round_trips() {
        let unix = ListenAddr::parse("unix:/tmp/zkvc.sock").unwrap();
        assert_eq!(unix, ListenAddr::Unix(PathBuf::from("/tmp/zkvc.sock")));
        assert_eq!(unix.to_string(), "unix:/tmp/zkvc.sock");
        assert_eq!(ListenAddr::parse(&unix.to_string()).unwrap(), unix);

        let tcp = ListenAddr::parse("tcp:127.0.0.1:7878").unwrap();
        assert_eq!(tcp, ListenAddr::Tcp("127.0.0.1:7878".into()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:7878");
        assert_eq!(ListenAddr::parse(&tcp.to_string()).unwrap(), tcp);
    }

    #[test]
    fn listen_addr_rejects_malformed_endpoints() {
        for bad in [
            "",
            "unix:",
            "tcp:",
            "tcp:no-port",
            "tcp::123",
            "tcp:host:notaport",
            "tcp:host:99999",
            "udp:1.2.3.4:5",
            "/plain/path",
        ] {
            let err = ListenAddr::parse(bad).unwrap_err();
            assert!(matches!(err, Error::Usage(_)), "{bad:?} -> {err:?}");
        }
    }
}
