//! The `zkvc client` load driver: connects to a serve endpoint, streams
//! request lines, and measures what comes back.
//!
//! The client is also the protocol's conformance checker: it verifies
//! that result ids belong to its own session (id spaces must never cross
//! connections), that the handshake speaks `zkvc-serve/v1`, and — unless
//! disabled — it **re-verifies every returned proof envelope locally**:
//! statement binding against the deterministic statement for `(spec,
//! seed)`, Groth16 pairing checks against the *streamed* `key` lines
//! (never a key the client derived itself — that is the whole
//! trust-the-wire exercise), and transparent Spartan verification
//! against locally derived preprocessing.
//!
//! Per-proof latency (request write to result read) and aggregate
//! throughput feed `BENCH_serve.json` via [`run_sweep`].

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use zkvc_core::{Backend, Circuit, VerifierKey};
use zkvc_ff::Fr;
use zkvc_hash::sha256;

use crate::cache::KeyCache;
use crate::codec::{CLIENT_REPORT_SCHEMA, SERVE_BENCH_SCHEMA, SERVE_PROTO};
use crate::error::Error;
use crate::net::addr::{AnyStream, ListenAddr};
use crate::pool::build_statement;
use crate::serial::ProofEnvelope;
use crate::spec::JobSpec;
use crate::util::{hex, json_escape, unhex};
use crate::wire::{field, parse_json_object, Json};

/// Statement data memoised per `(spec, seed)` during the local
/// verification pass: the public inputs, the locally recomputed shape
/// digest (hex), and the rebuilt circuit.
type StatementMemo = HashMap<(String, u64), (Vec<Fr>, String, Box<dyn Circuit>)>;

/// Configuration for [`run_client`] / [`run_sweep`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// The serve endpoint to connect to.
    pub addr: ListenAddr,
    /// The spec every generated request proves.
    pub spec: JobSpec,
    /// Generated requests per session (ignored when `jobs` is set).
    pub count: usize,
    /// Statement seed attached to generated requests (`None` leaves the
    /// server's default in charge).
    pub seed: Option<u64>,
    /// Concurrent connections, each its own session.
    pub sessions: usize,
    /// Whether returned envelopes are re-verified locally.
    pub verify: bool,
    /// Raw request lines to stream instead of generated ones (the
    /// `--jobs FILE` mode). Ids are the file's own; latency and
    /// id-scoping checks are skipped, and retries only cover the
    /// connect (raw lines cannot be resubmitted idempotently).
    pub jobs: Option<Vec<String>>,
    /// Retry attempts after the first try. A retry reconnects and
    /// resubmits only the still-unanswered client-assigned ids, so
    /// retries are idempotent: proofs are deterministic in `(spec,
    /// seed)` and answered ids are never resent. `0` disables retrying.
    pub retries: usize,
    /// Base for the exponential retry backoff, in milliseconds (delay
    /// before retry `r` is `backoff_ms * 2^(r-1)` plus seeded jitter,
    /// floored at any `retry_after_ms` hint a shed response carried).
    pub backoff_ms: u64,
    /// Seed for the deterministic backoff jitter: same seed, same
    /// session index, same attempt — same delay.
    pub retry_seed: u64,
    /// `deadline_ms` attached to every generated request (`None` sends
    /// none): the server abandons a proof still running this long after
    /// admission and answers `deadline_exceeded`.
    pub deadline_ms: Option<u64>,
}

impl ClientConfig {
    /// Defaults: 8 generated requests, 1 session, local verification on,
    /// 2 retries with a 50 ms backoff base.
    pub fn new(addr: ListenAddr, spec: JobSpec) -> Self {
        ClientConfig {
            addr,
            spec,
            count: 8,
            seed: None,
            sessions: 1,
            verify: true,
            jobs: None,
            retries: 2,
            backoff_ms: 50,
            retry_seed: 0,
            deadline_ms: None,
        }
    }

    /// Sets the generated-request count per session.
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the statement seed attached to generated requests.
    pub fn seed(mut self, seed: Option<u64>) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of concurrent sessions.
    pub fn sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions.max(1);
        self
    }

    /// Enables/disables local envelope verification.
    pub fn verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Streams these raw request lines instead of generated ones.
    pub fn jobs(mut self, jobs: Option<Vec<String>>) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the retry budget (`0` disables retrying).
    pub fn retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the exponential-backoff base in milliseconds.
    pub fn backoff_ms(mut self, ms: u64) -> Self {
        self.backoff_ms = ms;
        self
    }

    /// Sets the deterministic backoff-jitter seed.
    pub fn retry_seed(mut self, seed: u64) -> Self {
        self.retry_seed = seed;
        self
    }

    /// Sets the per-request deadline attached to generated requests.
    pub fn deadline_ms(mut self, ms: Option<u64>) -> Self {
        self.deadline_ms = ms;
        self
    }
}

/// One job's outcome in the deterministic client report (see
/// [`ClientReport::render_report_json`]).
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The result's `id` field, as its JSON token.
    pub id: String,
    /// The server's verdict for the proof.
    pub verified: bool,
    /// SHA-256 of the decoded proof envelope bytes (empty for error
    /// results or when the server omitted `proof_hex`).
    pub proof_sha256: String,
}

/// What one client session observed.
#[derive(Clone, Debug, Default)]
pub struct SessionReport {
    /// Client-side session index (the `cK-` id prefix).
    pub session: usize,
    /// Request lines successfully written.
    pub sent: usize,
    /// `result` lines received.
    pub results: usize,
    /// `error` lines, unparseable lines, and handshake problems.
    pub errors: usize,
    /// Results whose id was not one of this session's own.
    pub id_mismatches: usize,
    /// Results the *server* reported unverified (or failed).
    pub verdict_failures: usize,
    /// Envelopes that passed local re-verification.
    pub verified_local: usize,
    /// Envelopes that failed local re-verification (binding, pairing,
    /// missing key, undecodable proof).
    pub verify_failures: usize,
    /// Request-to-result latency per job, milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Shed responses received (the request stayed unanswered and was
    /// resubmitted on a later attempt — informational, not a failure).
    pub shed: usize,
    /// Connection attempts this session made (1 = no retries needed).
    pub attempts: usize,
    /// Whether the session ended with the server's `summary` line.
    pub summary_seen: bool,
    /// Local worker-thread count the server advertised in its ready
    /// line (0 when no ready line was seen). Remote workers joining the
    /// server later are not reflected here.
    pub server_workers: usize,
    /// Per-job records for the deterministic report.
    pub jobs: Vec<JobRecord>,
}

/// Aggregate over all sessions of one [`run_client`] call.
#[derive(Clone, Debug, Default)]
pub struct ClientReport {
    /// Per-session breakdowns.
    pub sessions: Vec<SessionReport>,
    /// Wall-clock for the whole run, seconds.
    pub wall_s: f64,
}

impl ClientReport {
    fn sum(&self, f: impl Fn(&SessionReport) -> usize) -> usize {
        self.sessions.iter().map(f).sum()
    }

    /// Total `result` lines received.
    pub fn results(&self) -> usize {
        self.sum(|s| s.results)
    }

    /// Total results the server reported unverified.
    pub fn verdict_failures(&self) -> usize {
        self.sum(|s| s.verdict_failures)
    }

    /// Total envelopes that passed local re-verification.
    pub fn verified_local(&self) -> usize {
        self.sum(|s| s.verified_local)
    }

    /// Total envelopes that failed local re-verification.
    pub fn verify_failures(&self) -> usize {
        self.sum(|s| s.verify_failures)
    }

    /// Total error lines / protocol problems.
    pub fn errors(&self) -> usize {
        self.sum(|s| s.errors)
    }

    /// Total results whose id belonged to some other session.
    pub fn id_mismatches(&self) -> usize {
        self.sum(|s| s.id_mismatches)
    }

    /// Total shed responses (each was later retried).
    pub fn sheds(&self) -> usize {
        self.sum(|s| s.shed)
    }

    /// Total connection attempts across all sessions.
    pub fn attempts(&self) -> usize {
        self.sum(|s| s.attempts)
    }

    /// The worker-thread count the server advertised (max over sessions;
    /// 0 when no session saw a ready line).
    pub fn server_workers(&self) -> usize {
        self.sessions
            .iter()
            .map(|s| s.server_workers)
            .max()
            .unwrap_or(0)
    }

    /// Results per wall-clock second across all sessions.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.results() as f64 / self.wall_s
    }

    /// The `pct`-th latency percentile (nearest-rank over all sessions),
    /// in milliseconds; 0 when no latencies were measured.
    pub fn latency_ms(&self, pct: f64) -> f64 {
        let mut all: Vec<f64> = self
            .sessions
            .iter()
            .flat_map(|s| s.latencies_ms.iter().copied())
            .collect();
        if all.is_empty() {
            return 0.0;
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("latency NaN"));
        let rank = ((pct / 100.0) * (all.len() as f64 - 1.0)).round() as usize;
        all[rank.min(all.len() - 1)]
    }

    /// `true` when every session got its summary, every verdict was
    /// positive, ids stayed in their sessions, and (when local
    /// verification ran) every envelope checked out.
    pub fn all_ok(&self) -> bool {
        self.sessions.iter().all(|s| s.summary_seen)
            && self.verdict_failures() == 0
            && self.verify_failures() == 0
            && self.id_mismatches() == 0
            && self.errors() == 0
    }

    /// Human summary for the CLI.
    pub fn render_table(&self) -> String {
        format!(
            "zkvc client: {} session(s), {} results in {:.3}s ({:.2} jobs/s)\n  \
             latency p50 {:.3} ms, p99 {:.3} ms\n  \
             server verdicts: {} ok, {} failed; local verification: {} ok, {} failed\n  \
             errors {}, id mismatches {}, shed {} (over {} connection attempts)",
            self.sessions.len(),
            self.results(),
            self.wall_s,
            self.jobs_per_sec(),
            self.latency_ms(50.0),
            self.latency_ms(99.0),
            self.results() - self.verdict_failures(),
            self.verdict_failures(),
            self.verified_local(),
            self.verify_failures(),
            self.errors(),
            self.id_mismatches(),
            self.sheds(),
            self.attempts(),
        )
    }

    /// Deterministic per-job report (flat JSON): ids, verdicts, and
    /// proof digests, sorted — two runs against deterministic servers
    /// diff clean, which is what the CI smoke job checks.
    pub fn render_report_json(&self) -> String {
        let mut jobs: Vec<&JobRecord> = self.sessions.iter().flat_map(|s| s.jobs.iter()).collect();
        jobs.sort_by(|a, b| (&a.id, &a.proof_sha256).cmp(&(&b.id, &b.proof_sha256)));
        let body: Vec<String> = jobs
            .iter()
            .map(|j| {
                format!(
                    "{{\"id\":{},\"verified\":{},\"proof_sha256\":\"{}\"}}",
                    j.id, j.verified, j.proof_sha256
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{CLIENT_REPORT_SCHEMA}\",\"jobs\":[{}]}}",
            body.join(",")
        )
    }
}

/// Runs `config.sessions` concurrent client sessions against the
/// endpoint and aggregates what they saw. Connection failures and hard
/// stream errors are returned; protocol-level problems are counted in
/// the report instead.
pub fn run_client(config: &ClientConfig) -> Result<ClientReport, Error> {
    let started = Instant::now();
    let mut handles = Vec::new();
    for k in 0..config.sessions.max(1) {
        let config = config.clone();
        handles.push(thread::spawn(move || run_one_session(&config, k)));
    }
    let mut sessions = Vec::new();
    for handle in handles {
        let report = handle
            .join()
            .map_err(|_| Error::Request("client session thread panicked".into()))??;
        sessions.push(report);
    }
    Ok(ClientReport {
        sessions,
        wall_s: started.elapsed().as_secs_f64(),
    })
}

/// Runs [`run_client`] once per session count in `sweep` and renders the
/// `BENCH_serve.json` document: throughput and latency percentiles vs
/// concurrency against one resident server (so later points run against
/// a warm key cache, like production traffic would).
pub fn run_sweep(config: &ClientConfig, sweep: &[usize]) -> Result<String, Error> {
    let mut points = Vec::new();
    for &sessions in sweep {
        let report = run_client(&config.clone().sessions(sessions))?;
        points.push(format!(
            "{{\"sessions\":{sessions},\"workers\":{},\"cores\":{},\"jobs\":{},\"verdict_failures\":{},\"verified_local\":{},\"jobs_per_sec\":{:.3},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"wall_s\":{:.3}}}",
            report.server_workers(),
            available_cores(),
            report.results(),
            report.verdict_failures(),
            report.verified_local(),
            report.jobs_per_sec(),
            report.latency_ms(50.0),
            report.latency_ms(99.0),
            report.wall_s,
        ));
    }
    Ok(format!(
        "{{\"schema\":\"{SERVE_BENCH_SCHEMA}\",\"spec\":\"{}\",\"seed\":{},\"count_per_session\":{},\"threads\":{},\"cores\":{},\"tune_profile\":\"{}\",\"points\":[{}]}}",
        json_escape(&config.spec.to_string()),
        config
            .seed.map_or_else(|| "null".into(), |s| s.to_string()),
        config.count,
        available_cores(),
        available_cores(),
        crate::tune::active_digest(),
        points.join(",")
    ))
}

/// Machine core count for bench provenance (what the hardware offered,
/// as opposed to what `--workers` used of it).
pub(crate) fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// A `result` line held until the session ends: verification runs after
/// the read loop so `key` lines that arrive late (another worker's
/// result raced ahead of the announcement) are still available.
struct PendingResult {
    id_token: String,
    spec_str: String,
    seed: u64,
    verified: bool,
    proof_hex: Option<String>,
    is_error: bool,
}

fn str_val(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn num_u64(v: &Json) -> Option<u64> {
    match v {
        Json::Num(raw) => raw.parse().ok(),
        _ => None,
    }
}

/// Deterministic jitter in `[0, modulus)` from `(seed, session,
/// attempt)` — splitmix64, so retry timing is reproducible by pinning
/// `retry_seed` (which is what keeps chaos runs diffable).
fn jitter(seed: u64, session: u64, attempt: u64, modulus: u64) -> u64 {
    if modulus == 0 {
        return 0;
    }
    let mut x = seed
        ^ session.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x % modulus
}

/// The pause before retry `attempt` (1-based): exponential in the
/// backoff base plus seeded jitter, floored at the strongest
/// `retry_after_ms` hint the previous attempt's shed responses carried,
/// capped at 10 s.
fn retry_delay(config: &ClientConfig, k: usize, attempt: usize, shed_hint: u64) -> Duration {
    let shift = attempt.saturating_sub(1).min(10) as u32;
    let base = config.backoff_ms.saturating_mul(1u64 << shift);
    let delay = base
        .saturating_add(jitter(
            config.retry_seed,
            k as u64,
            attempt as u64,
            config.backoff_ms,
        ))
        .max(shed_hint)
        .min(10_000);
    Duration::from_millis(delay)
}

/// What one connection attempt observed beyond the per-job accounting:
/// protocol-level noise is folded into the session report only when the
/// attempt is terminal — lines torn by a connection a retry then
/// replaced are not errors of the session's final outcome.
#[derive(Default)]
struct AttemptTally {
    proto_errors: usize,
    summary_seen: bool,
}

fn run_one_session(config: &ClientConfig, k: usize) -> Result<SessionReport, Error> {
    let requests: Vec<(Option<String>, String)> = match &config.jobs {
        Some(lines) => lines
            .iter()
            .filter(|l| !l.trim().is_empty())
            .map(|l| (None, l.trim().to_string()))
            .collect(),
        None => (0..config.count)
            .map(|i| {
                let id = format!("c{k}-{i}");
                let seed = config
                    .seed
                    .map(|s| format!(",\"seed\":{s}"))
                    .unwrap_or_default();
                let deadline = config
                    .deadline_ms
                    .map(|ms| format!(",\"deadline_ms\":{ms}"))
                    .unwrap_or_default();
                let line = format!(
                    "{{\"spec\":\"{}\",\"id\":\"{id}\"{seed}{deadline}}}",
                    json_escape(&config.spec.to_string())
                );
                (Some(id), line)
            })
            .collect(),
    };
    let generated = config.jobs.is_none();
    // The retry ledger: ids with no terminal answer yet. A retry
    // resubmits exactly these — answered ids are never resent, so a
    // flaky connection cannot double-count a job in the report.
    let mut unanswered: HashSet<String> =
        requests.iter().filter_map(|(id, _)| id.clone()).collect();

    let mut report = SessionReport {
        session: k,
        ..SessionReport::default()
    };
    let mut keys: HashMap<(String, u64), zkvc_groth16::VerifyingKey> = HashMap::new();
    let mut pending: Vec<PendingResult> = Vec::new();

    let attempts = config.retries + 1;
    let mut shed_hint = 0u64;
    let mut last_failure: Option<Error> = None;
    let mut settled = false;
    for attempt in 0..attempts {
        if attempt > 0 {
            let delay = retry_delay(config, k, attempt, shed_hint);
            let last = last_failure
                .as_ref()
                .map(std::string::ToString::to_string)
                .unwrap_or_default();
            eprintln!(
                "zkvc client: session {k} attempt {attempt} of {attempts} failed ({last}); retrying in {} ms",
                delay.as_millis()
            );
            thread::sleep(delay);
            shed_hint = 0;
        }
        report.attempts += 1;
        let sent_before = report.sent;
        match run_attempt(
            config,
            k,
            &requests,
            &mut unanswered,
            &mut report,
            &mut keys,
            &mut pending,
            &mut shed_hint,
        ) {
            Ok(tally) => {
                report.summary_seen = tally.summary_seen;
                if tally.summary_seen && (!generated || unanswered.is_empty()) {
                    report.errors += tally.proto_errors;
                    settled = true;
                    break;
                }
                if !generated && report.sent > sent_before {
                    // Raw `--jobs` lines cannot be resubmitted
                    // idempotently once any went out: settle with what
                    // was observed (`all_ok` will be false).
                    report.errors += tally.proto_errors;
                    settled = true;
                    break;
                }
                last_failure = Some(if shed_hint > 0 {
                    Error::Shed {
                        retry_after_ms: shed_hint,
                    }
                } else if generated && !unanswered.is_empty() {
                    Error::Request(format!(
                        "{} request(s) unanswered when the stream ended",
                        unanswered.len()
                    ))
                } else {
                    Error::Request("stream ended before the summary line".into())
                });
            }
            Err(e) => last_failure = Some(e),
        }
    }
    if !settled {
        let last = last_failure.unwrap_or_else(|| Error::Request("no attempt was made".into()));
        if config.retries == 0 {
            // No retry budget configured: surface the original failure
            // untranslated, as pre-retry clients did.
            return Err(last);
        }
        let message = last.to_string();
        eprintln!("zkvc client: session {k} giving up after {attempts} attempts: {message}");
        return Err(Error::RetriesExhausted {
            attempts,
            last: message,
        });
    }

    // Local verification pass, now that every key line is in hand.
    // Statements (and Spartan preprocessing) are deterministic in
    // `(spec, seed)`, so each pair is derived once.
    let mut statements = StatementMemo::new();
    let mut spartan_verifiers: HashMap<(String, u64), VerifierKey> = HashMap::new();
    for p in &pending {
        let mut record = JobRecord {
            id: p.id_token.clone(),
            verified: p.verified,
            proof_sha256: String::new(),
        };
        if let Some(proof_hex) = &p.proof_hex {
            if let Some(bytes) = unhex(proof_hex) {
                record.proof_sha256 = hex(&sha256(&bytes));
            }
        }
        if config.verify && !p.is_error {
            match verify_result(p, &keys, &mut statements, &mut spartan_verifiers) {
                Some(true) => report.verified_local += 1,
                Some(false) | None => report.verify_failures += 1,
            }
        }
        report.jobs.push(record);
    }
    Ok(report)
}

/// One connection's worth of the session: connect, stream the
/// still-unanswered requests, read responses until summary or EOF.
/// Results, latencies, shed counts and key lines accumulate straight
/// into the caller's state; protocol noise comes back in the tally for
/// the caller to fold in (or discard, when this attempt gets retried).
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    config: &ClientConfig,
    k: usize,
    requests: &[(Option<String>, String)],
    unanswered: &mut HashSet<String>,
    report: &mut SessionReport,
    keys: &mut HashMap<(String, u64), zkvc_groth16::VerifyingKey>,
    pending: &mut Vec<PendingResult>,
    shed_hint: &mut u64,
) -> Result<AttemptTally, Error> {
    let stream = AnyStream::connect(&config.addr)?;
    let writer_stream = stream
        .try_clone()
        .map_err(|e| Error::io(config.addr.to_string(), e))?;
    let mut reader = BufReader::new(stream);

    let batch: Vec<(Option<String>, String)> = requests
        .iter()
        .filter(|(id, _)| id.as_ref().is_none_or(|i| unanswered.contains(i)))
        .cloned()
        .collect();

    let sent_at: Arc<Mutex<HashMap<String, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let writer = {
        let sent_at = Arc::clone(&sent_at);
        let mut w = writer_stream;
        thread::spawn(move || -> usize {
            let mut sent = 0usize;
            for (id, line) in batch {
                if let Some(id) = id {
                    sent_at
                        .lock()
                        .expect("sent-at map poisoned")
                        .insert(id, Instant::now());
                }
                if w.write_all(line.as_bytes())
                    .and_then(|_| w.write_all(b"\n"))
                    .is_err()
                {
                    break;
                }
                sent += 1;
            }
            // Half-close: the server reads EOF once it has consumed
            // everything, flushes our results, and summarises — while
            // this end keeps reading.
            let _ = w.shutdown_write();
            sent
        })
    };

    let generated = config.jobs.is_none();
    let mut tally = AttemptTally::default();
    let mut proto_ok = false;
    let id_prefix = format!("c{k}-");
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                report.sent += writer.join().unwrap_or(0);
                return Err(Error::io(config.addr.to_string(), e));
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Ok(fields) = parse_json_object(trimmed) else {
            tally.proto_errors += 1;
            continue;
        };
        match field(&fields, "type").and_then(str_val).unwrap_or("") {
            "ready" => {
                proto_ok = field(&fields, "proto").and_then(str_val) == Some(SERVE_PROTO);
                if let Some(workers) = field(&fields, "workers").and_then(num_u64) {
                    report.server_workers = workers as usize;
                }
            }
            "key" => {
                let digest = field(&fields, "shape_digest").and_then(str_val);
                let seed = field(&fields, "seed").and_then(num_u64);
                let vk = field(&fields, "vk_hex")
                    .and_then(str_val)
                    .and_then(unhex)
                    .and_then(|bytes| zkvc_groth16::VerifyingKey::from_bytes(&bytes));
                match (digest, seed, vk) {
                    (Some(digest), Some(seed), Some(vk)) => {
                        keys.insert((digest.to_string(), seed), vk);
                    }
                    _ => tally.proto_errors += 1,
                }
            }
            "result" => {
                report.results += 1;
                // `fresh` guards the per-job accounting: a duplicate
                // terminal answer (or an id from another session's space)
                // must not add a second JobRecord — that is what keeps
                // `--report` byte-diffable across retries.
                let mut fresh = true;
                if generated {
                    match field(&fields, "id") {
                        Some(Json::Str(id)) if id.starts_with(&id_prefix) => {
                            let t0 = sent_at.lock().expect("sent-at map poisoned").remove(id);
                            if let Some(t0) = t0 {
                                report.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                            if !unanswered.remove(id) {
                                report.id_mismatches += 1;
                                fresh = false;
                            }
                        }
                        _ => {
                            report.id_mismatches += 1;
                            fresh = false;
                        }
                    }
                }
                if fresh {
                    let verified = field(&fields, "verified") == Some(&Json::Bool(true));
                    if !verified {
                        report.verdict_failures += 1;
                    }
                    pending.push(PendingResult {
                        id_token: field(&fields, "id")
                            .map_or_else(|| "null".into(), Json::to_token),
                        spec_str: field(&fields, "spec")
                            .and_then(str_val)
                            .unwrap_or("")
                            .to_string(),
                        seed: field(&fields, "seed").and_then(num_u64).unwrap_or(0),
                        verified,
                        proof_hex: field(&fields, "proof_hex")
                            .and_then(str_val)
                            .map(str::to_string),
                        is_error: field(&fields, "code").is_some(),
                    });
                }
            }
            "error" => {
                // A shed answer for one of our own still-open ids is not a
                // failure: the request was refused before admission, stays
                // on the retry ledger, and the hint shapes the next
                // backoff. Everything else on an error line is counted.
                let retry_after = field(&fields, "retry_after_ms").and_then(num_u64);
                let ours = generated
                    && matches!(field(&fields, "id"),
                        Some(Json::Str(id)) if id.starts_with(&id_prefix) && unanswered.contains(id));
                match retry_after {
                    Some(hint) if ours => {
                        report.shed += 1;
                        *shed_hint = (*shed_hint).max(hint.max(1));
                    }
                    _ => tally.proto_errors += 1,
                }
            }
            "summary" => {
                tally.summary_seen = true;
                break;
            }
            _ => tally.proto_errors += 1,
        }
    }
    report.sent += writer.join().unwrap_or(0);
    if !proto_ok {
        tally.proto_errors += 1;
    }
    Ok(tally)
}

/// Re-verifies one result envelope exactly the way `zkvc verify` would:
/// statement binding first, then cryptographic verification against the
/// expected key for the shape — the streamed vk for Groth16 (looked up
/// by the *locally recomputed* shape digest, so a server lying about
/// digests fails here), derived transparent preprocessing for Spartan.
fn verify_result(
    p: &PendingResult,
    keys: &HashMap<(String, u64), zkvc_groth16::VerifyingKey>,
    statements: &mut StatementMemo,
    spartan_verifiers: &mut HashMap<(String, u64), VerifierKey>,
) -> Option<bool> {
    let (spec, _count) = JobSpec::parse(&p.spec_str).ok()?;
    let bytes = unhex(p.proof_hex.as_deref()?)?;
    let envelope = ProofEnvelope::from_bytes(&bytes)?;
    if envelope.backend != spec.backend() {
        return Some(false);
    }
    let key = (p.spec_str.clone(), p.seed);
    let (expected, digest_hex, statement) = statements.entry(key.clone()).or_insert_with(|| {
        let statement = build_statement(p.seed, 0, &spec);
        let expected = statement.public_outputs();
        let digest_hex = hex(&statement.shape_digest());
        (expected, digest_hex, statement)
    });
    if !expected.is_empty() && &envelope.public_inputs != expected {
        return Some(false);
    }
    match envelope.backend {
        Backend::Groth16 => {
            let vk = keys.get(&(digest_hex.clone(), p.seed))?;
            Some(envelope.verify_with_key(&VerifierKey::Groth16(vk.clone())))
        }
        Backend::Spartan => {
            let verifier = match spartan_verifiers.get(&key) {
                Some(v) => v.clone(),
                None => {
                    let cache = KeyCache::with_seed(p.seed);
                    let verifier = cache
                        .get_or_setup_circuit(Backend::Spartan, statement.as_ref())
                        .0
                        .verifier
                        .clone();
                    spartan_verifiers.insert(key, verifier.clone());
                    verifier
                }
            };
            Some(envelope.verify_with_key(&verifier))
        }
    }
}
