//! A self-describing wire envelope for proofs produced by either backend:
//! backend tag, public inputs, and the backend-specific proof material.
//!
//! Groth16 envelopes can travel in two forms: *self-contained* (the
//! verification key embedded, ~330 bytes of overhead, decodable-and-
//! verifiable with no other context — what `zkvc prove` writes to disk) or
//! *keyless* (proof + publics only — what the proving pool ships per job,
//! with the vk carried once per batch in the
//! [`BatchReport::key_table`](crate::BatchReport) instead of once per
//! proof). Keyed verification ([`ProofEnvelope::verify_with_key`]) never
//! trusts an embedded vk, so the keyless form loses nothing on that path.

use std::time::Duration;

use zkvc_core::backend::ProofData;
use zkvc_core::{Backend, ProofArtifacts, ProveMetrics, VerifierKey};
use zkvc_ff::{Fr, PrimeField};
use zkvc_groth16 as groth16;
use zkvc_r1cs::ConstraintSystem;
use zkvc_spartan::SpartanProof;

use crate::codec::ENVELOPE_MAGIC as MAGIC;
use crate::error::Error;

/// Backend tags on the wire.
const TAG_GROTH16: u8 = 1;
const TAG_SPARTAN: u8 = 2;
const TAG_GROTH16_KEYLESS: u8 = 3;

/// The proof material carried by an envelope.
#[allow(clippy::large_enum_variant)] // heap-dominated either way
#[derive(Clone, Debug)]
pub enum EnvelopeProof {
    /// A Groth16 proof, optionally with its verification key embedded.
    Groth16 {
        /// The verification key, present only in self-contained envelopes.
        vk: Option<groth16::VerifyingKey>,
        /// The proof.
        proof: groth16::Proof,
    },
    /// A Spartan-style proof (the verifier re-derives its preprocessing
    /// from the circuit structure).
    Spartan {
        /// The proof.
        proof: Box<SpartanProof>,
    },
}

/// A decoded proof envelope: everything a verifier needs except the
/// verifier key material when the envelope is keyless (Groth16) or
/// structure-derived (Spartan).
#[derive(Clone, Debug)]
pub struct ProofEnvelope {
    /// Which backend produced the proof.
    pub backend: Backend,
    /// The public inputs the proof binds.
    pub public_inputs: Vec<Fr>,
    /// The proof (plus, for self-contained Groth16, its verification key).
    pub proof: EnvelopeProof,
}

impl ProofEnvelope {
    /// Wraps prover output for the wire, embedding the Groth16 vk
    /// (self-contained form).
    pub fn from_artifacts(artifacts: &ProofArtifacts) -> Self {
        let proof = match &artifacts.data {
            ProofData::Groth16 { vk, proof } => EnvelopeProof::Groth16 {
                vk: Some(vk.clone()),
                proof: proof.clone(),
            },
            ProofData::Spartan { proof } => EnvelopeProof::Spartan {
                proof: proof.clone(),
            },
        };
        ProofEnvelope {
            backend: artifacts.metrics.backend,
            public_inputs: artifacts.public_inputs.clone(),
            proof,
        }
    }

    /// Drops the embedded Groth16 verification key (~330 bytes per proof),
    /// for transports that carry the key out of band — the proving pool
    /// ships it once per batch. No-op for Spartan envelopes.
    pub fn without_vk(mut self) -> Self {
        if let EnvelopeProof::Groth16 { vk, .. } = &mut self.proof {
            *vk = None;
        }
        self
    }

    /// The embedded Groth16 verification key, if this is a self-contained
    /// Groth16 envelope.
    pub fn embedded_vk(&self) -> Option<&groth16::VerifyingKey> {
        match &self.proof {
            EnvelopeProof::Groth16 { vk, .. } => vk.as_ref(),
            EnvelopeProof::Spartan { .. } => None,
        }
    }

    /// Serialises the envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.public_inputs.len() as u32).to_le_bytes());
        for v in &self.public_inputs {
            out.extend_from_slice(&v.to_bytes_le());
        }
        match &self.proof {
            EnvelopeProof::Groth16 {
                vk: Some(vk),
                proof,
            } => {
                out.push(TAG_GROTH16);
                let vk_bytes = vk.to_bytes();
                out.extend_from_slice(&(vk_bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&vk_bytes);
                out.extend_from_slice(&proof.to_bytes());
            }
            EnvelopeProof::Groth16 { vk: None, proof } => {
                out.push(TAG_GROTH16_KEYLESS);
                out.extend_from_slice(&proof.to_bytes());
            }
            EnvelopeProof::Spartan { proof } => {
                out.push(TAG_SPARTAN);
                out.extend_from_slice(&proof.to_bytes());
            }
        }
        out
    }

    /// Parses an envelope with a typed error surface: future-versioned
    /// bytes (a `ZKVCPRF` magic with a newer version digit) are reported
    /// as [`Error::FutureVersion`] — the payload may be fine, the decoder
    /// is too old — while everything else malformed is
    /// [`Error::MalformedEnvelope`]. Prefer this over [`Self::from_bytes`]
    /// anywhere the failure reason reaches a user.
    pub fn decode(bytes: &[u8]) -> Result<Self, Error> {
        crate::codec::envelope_format_version(bytes)?;
        Self::from_bytes(bytes).ok_or(Error::MalformedEnvelope)
    }

    /// Parses an envelope, validating every field element and group
    /// element. Returns `None` on any malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let rest = bytes.strip_prefix(MAGIC.as_slice())?;
        let count_bytes: [u8; 4] = rest.get(..4)?.try_into().ok()?;
        let count = u32::from_le_bytes(count_bytes) as usize;
        // Bound the count by what the buffer can actually hold before
        // allocating, so a malicious length header cannot force a huge
        // up-front allocation.
        if count > rest.len().saturating_sub(4) / 32 {
            return None;
        }
        let mut pos = 4;
        let mut public_inputs = Vec::with_capacity(count);
        for _ in 0..count {
            let b: [u8; 32] = rest.get(pos..pos + 32)?.try_into().ok()?;
            public_inputs.push(Fr::from_bytes_le(&b)?);
            pos += 32;
        }
        let tag = *rest.get(pos)?;
        let payload = rest.get(pos + 1..)?;
        let (backend, proof) = match tag {
            TAG_GROTH16 => {
                let len_bytes: [u8; 4] = payload.get(..4)?.try_into().ok()?;
                let vk_len = u32::from_le_bytes(len_bytes) as usize;
                let vk = groth16::VerifyingKey::from_bytes(payload.get(4..4 + vk_len)?)?;
                let proof = groth16::Proof::from_bytes(payload.get(4 + vk_len..)?)?;
                (
                    Backend::Groth16,
                    EnvelopeProof::Groth16 {
                        vk: Some(vk),
                        proof,
                    },
                )
            }
            TAG_GROTH16_KEYLESS => {
                let proof = groth16::Proof::from_bytes(payload)?;
                (Backend::Groth16, EnvelopeProof::Groth16 { vk: None, proof })
            }
            TAG_SPARTAN => {
                let proof = SpartanProof::from_bytes(payload)?;
                (
                    Backend::Spartan,
                    EnvelopeProof::Spartan {
                        proof: Box::new(proof),
                    },
                )
            }
            _ => return None,
        };
        Some(ProofEnvelope {
            backend,
            public_inputs,
            proof,
        })
    }

    /// Verifies against a prepared verifier key (both backends), ignoring
    /// any key material embedded in the envelope itself — so keyless and
    /// self-contained envelopes verify identically here. Borrows the
    /// envelope: no copies on the per-job verify path.
    pub fn verify_with_key(&self, key: &VerifierKey) -> bool {
        match (&self.proof, key) {
            (EnvelopeProof::Groth16 { proof, .. }, VerifierKey::Groth16(vk)) => {
                groth16::verify(vk, &self.public_inputs, proof)
            }
            (EnvelopeProof::Spartan { proof }, VerifierKey::Spartan(verifier)) => {
                verifier.verify(&self.public_inputs, proof)
            }
            _ => false,
        }
    }

    /// Verifies against a circuit structure: Spartan preprocessing is
    /// re-derived from `cs`, while the Groth16 arm trusts the envelope's
    /// embedded key (`cs` does not enter the pairing check) and therefore
    /// rejects keyless envelopes — there is nothing to check them against.
    /// When the expected key material is known, prefer
    /// [`Self::verify_with_key`], which binds the proof to that key.
    pub fn verify_cs(&self, cs: &ConstraintSystem<Fr>) -> bool {
        match &self.proof {
            EnvelopeProof::Groth16 {
                vk: Some(vk),
                proof,
            } => groth16::verify(vk, &self.public_inputs, proof),
            EnvelopeProof::Groth16 { vk: None, .. } => false,
            EnvelopeProof::Spartan { proof } => {
                zkvc_spartan::SpartanVerifier::preprocess(cs).verify(&self.public_inputs, proof)
            }
        }
    }

    /// [`Self::verify_cs`] against a compiled shape (the two-pass form):
    /// Spartan preprocessing is re-derived from the CSR matrices, Groth16
    /// trusts the embedded key and rejects keyless envelopes.
    pub fn verify_with_shape(&self, shape: &zkvc_r1cs::CompiledShape<Fr>) -> bool {
        match &self.proof {
            EnvelopeProof::Groth16 {
                vk: Some(vk),
                proof,
            } => groth16::verify(vk, &self.public_inputs, proof),
            EnvelopeProof::Groth16 { vk: None, .. } => false,
            EnvelopeProof::Spartan { proof } => {
                zkvc_spartan::SpartanVerifier::preprocess_shape(shape)
                    .verify(&self.public_inputs, proof)
            }
        }
    }

    /// Converts back into [`ProofArtifacts`] for the verification APIs.
    /// Returns `None` for keyless Groth16 envelopes (the artifact format
    /// requires the vk). Prover-side metrics do not cross the wire: the
    /// metrics field is zeroed except for backend and serialised size.
    pub fn into_artifacts(self) -> Option<ProofArtifacts> {
        let (data, proof_size_bytes) = match self.proof {
            EnvelopeProof::Groth16 {
                vk: Some(vk),
                proof,
            } => {
                let size = proof.size_in_bytes();
                (ProofData::Groth16 { vk, proof }, size)
            }
            EnvelopeProof::Groth16 { vk: None, .. } => return None,
            EnvelopeProof::Spartan { proof } => {
                let size = proof.size_in_bytes();
                (ProofData::Spartan { proof }, size)
            }
        };
        Some(ProofArtifacts {
            data,
            public_inputs: self.public_inputs,
            metrics: ProveMetrics {
                backend: self.backend,
                setup_time: Duration::ZERO,
                prove_time: Duration::ZERO,
                proof_size_bytes,
                num_constraints: 0,
                num_variables: 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_core::matmul::{MatMulBuilder, Strategy};

    #[test]
    fn envelope_roundtrip_both_backends() {
        let mut rng = StdRng::seed_from_u64(5);
        let job = MatMulBuilder::new(2, 3, 2)
            .strategy(Strategy::CrpcPsq)
            .build_random(&mut rng);
        for backend in Backend::ALL {
            let artifacts = backend.prove_cs(&job.cs, &mut rng);
            let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
            let envelope = ProofEnvelope::from_bytes(&bytes).expect("round trip");
            assert_eq!(envelope.backend, backend);
            assert_eq!(envelope.public_inputs, artifacts.public_inputs);
            assert!(envelope.verify_cs(&job.cs), "{backend:?}");
            // Stable re-encoding.
            assert_eq!(envelope.to_bytes(), bytes);
        }
    }

    #[test]
    fn keyless_envelope_shrinks_and_verifies_with_key() {
        use crate::cache::KeyCache;
        let mut rng = StdRng::seed_from_u64(9);
        let job = MatMulBuilder::new(2, 3, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng);
        let cache = KeyCache::new();
        let (keys, _) = cache.get_or_setup(Backend::Groth16, &job.cs);
        let artifacts = Backend::Groth16.prove_with_key(&keys.prover, &job.cs, &mut rng);

        let full = ProofEnvelope::from_artifacts(&artifacts);
        let full_bytes = full.to_bytes();
        let keyless_bytes = full.clone().without_vk().to_bytes();
        let saved = full_bytes.len() - keyless_bytes.len();
        assert!(
            saved >= 300,
            "expected ~330B of vk dead weight, saved {saved}"
        );

        let decoded = ProofEnvelope::from_bytes(&keyless_bytes).expect("keyless decodes");
        assert!(decoded.embedded_vk().is_none());
        // Keyed verification is unaffected by the missing vk...
        assert!(decoded.verify_with_key(&keys.verifier));
        // ...while the self-verifying paths are (correctly) unavailable.
        assert!(!decoded.verify_cs(&job.cs));
        assert!(decoded.into_artifacts().is_none());
        // The self-contained form still round-trips through artifacts.
        assert!(full.into_artifacts().is_some());
        // Stable re-encoding of the keyless form.
        assert_eq!(
            ProofEnvelope::from_bytes(&keyless_bytes)
                .unwrap()
                .to_bytes(),
            keyless_bytes
        );
    }

    #[test]
    fn huge_public_input_count_rejected_without_allocation() {
        // magic + count claiming ~16M field elements in a 13-byte file.
        let mut bytes = b"ZKVCPRF1".to_vec();
        bytes.extend_from_slice(&0x00FF_FFFFu32.to_le_bytes());
        bytes.push(0);
        assert!(ProofEnvelope::from_bytes(&bytes).is_none());
    }

    #[test]
    fn envelope_from_unrelated_circuit_fails_against_expected_keys() {
        // A valid, internally consistent Groth16 envelope for circuit B must
        // not verify against the verifier key of circuit A: this is the
        // binding `zkvc verify` relies on.
        use crate::cache::KeyCache;
        let mut rng = StdRng::seed_from_u64(7);
        let job_a = MatMulBuilder::new(2, 3, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng);
        let job_b = MatMulBuilder::new(2, 2, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng);
        let cache = KeyCache::new();
        let (keys_a, _) = cache.get_or_setup(Backend::Groth16, &job_a.cs);
        let forged = Backend::Groth16.prove_cs(&job_b.cs, &mut rng);
        let envelope =
            ProofEnvelope::from_bytes(&ProofEnvelope::from_artifacts(&forged).to_bytes()).unwrap();
        // Internally consistent (its own embedded vk accepts it)...
        assert!(envelope.verify_cs(&job_b.cs));
        // ...but rejected by the key the statement actually demands.
        assert!(!envelope.verify_with_key(&keys_a.verifier));
    }

    #[test]
    fn decode_distinguishes_future_versions_from_garbage() {
        let mut rng = StdRng::seed_from_u64(11);
        let job = MatMulBuilder::new(2, 2, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng);
        let artifacts = Backend::Spartan.prove_cs(&job.cs, &mut rng);
        let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
        assert!(ProofEnvelope::decode(&bytes).is_ok());
        // Same payload stamped with a future version digit: typed error.
        let mut future = bytes.clone();
        future[7] = b'2';
        assert!(matches!(
            ProofEnvelope::decode(&future),
            Err(Error::FutureVersion { found: 2, .. })
        ));
        // Garbage stays "malformed", truncation too.
        assert!(matches!(
            ProofEnvelope::decode(b"NOTMAGIC"),
            Err(Error::MalformedEnvelope)
        ));
        assert!(matches!(
            ProofEnvelope::decode(&bytes[..bytes.len() - 1]),
            Err(Error::MalformedEnvelope)
        ));
    }

    #[test]
    fn malformed_envelopes_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let job = MatMulBuilder::new(2, 2, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng);
        let artifacts = Backend::Spartan.prove_cs(&job.cs, &mut rng);
        let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
        assert!(ProofEnvelope::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(ProofEnvelope::from_bytes(b"NOTMAGIC").is_none());
        let mut wrong_tag = bytes;
        // magic(8) + count(4) + publics(0 here? job has no instance vars)
        let tag_pos = 8 + 4 + 32 * artifacts.public_inputs.len();
        wrong_tag[tag_pos] = 9;
        assert!(ProofEnvelope::from_bytes(&wrong_tag).is_none());
        // A truncated keyless Groth16 envelope is rejected too.
        let g16 = Backend::Groth16.prove_cs(&job.cs, &mut rng);
        let keyless = ProofEnvelope::from_artifacts(&g16).without_vk().to_bytes();
        assert!(ProofEnvelope::from_bytes(&keyless[..keyless.len() - 1]).is_none());
    }
}
