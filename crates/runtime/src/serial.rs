//! A self-describing wire envelope for proofs produced by either backend:
//! backend tag, public inputs, and the backend-specific proof material
//! (including the Groth16 verification key, so Groth16 envelopes verify
//! without any other context). This is the format the `zkvc` CLI writes to
//! disk and the proving pool uses to shuttle proofs across threads.

use std::time::Duration;

use zkvc_core::backend::ProofData;
use zkvc_core::{Backend, ProofArtifacts, ProveMetrics, VerifierKey};
use zkvc_ff::{Fr, PrimeField};
use zkvc_groth16 as groth16;
use zkvc_r1cs::ConstraintSystem;
use zkvc_spartan::SpartanProof;

/// Magic prefix identifying the envelope format (and its version).
const MAGIC: &[u8; 8] = b"ZKVCPRF1";

/// Backend tags on the wire.
const TAG_GROTH16: u8 = 1;
const TAG_SPARTAN: u8 = 2;

/// A decoded proof envelope: everything a verifier needs except (for
/// Spartan) the circuit structure itself.
#[derive(Clone, Debug)]
pub struct ProofEnvelope {
    /// Which backend produced the proof.
    pub backend: Backend,
    /// The public inputs the proof binds.
    pub public_inputs: Vec<Fr>,
    /// The proof (plus, for Groth16, its verification key).
    pub data: ProofData,
}

impl ProofEnvelope {
    /// Wraps prover output for the wire.
    pub fn from_artifacts(artifacts: &ProofArtifacts) -> Self {
        ProofEnvelope {
            backend: artifacts.metrics.backend,
            public_inputs: artifacts.public_inputs.clone(),
            data: artifacts.data.clone(),
        }
    }

    /// Serialises the envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.public_inputs.len() as u32).to_le_bytes());
        for v in &self.public_inputs {
            out.extend_from_slice(&v.to_bytes_le());
        }
        match &self.data {
            ProofData::Groth16 { vk, proof } => {
                out.push(TAG_GROTH16);
                let vk_bytes = vk.to_bytes();
                out.extend_from_slice(&(vk_bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&vk_bytes);
                out.extend_from_slice(&proof.to_bytes());
            }
            ProofData::Spartan { proof } => {
                out.push(TAG_SPARTAN);
                out.extend_from_slice(&proof.to_bytes());
            }
        }
        out
    }

    /// Parses an envelope, validating every field element and group
    /// element. Returns `None` on any malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let rest = bytes.strip_prefix(MAGIC.as_slice())?;
        let count_bytes: [u8; 4] = rest.get(..4)?.try_into().ok()?;
        let count = u32::from_le_bytes(count_bytes) as usize;
        // Bound the count by what the buffer can actually hold before
        // allocating, so a malicious length header cannot force a huge
        // up-front allocation.
        if count > rest.len().saturating_sub(4) / 32 {
            return None;
        }
        let mut pos = 4;
        let mut public_inputs = Vec::with_capacity(count);
        for _ in 0..count {
            let b: [u8; 32] = rest.get(pos..pos + 32)?.try_into().ok()?;
            public_inputs.push(Fr::from_bytes_le(&b)?);
            pos += 32;
        }
        let tag = *rest.get(pos)?;
        let payload = rest.get(pos + 1..)?;
        let (backend, data) = match tag {
            TAG_GROTH16 => {
                let len_bytes: [u8; 4] = payload.get(..4)?.try_into().ok()?;
                let vk_len = u32::from_le_bytes(len_bytes) as usize;
                let vk = groth16::VerifyingKey::from_bytes(payload.get(4..4 + vk_len)?)?;
                let proof = groth16::Proof::from_bytes(payload.get(4 + vk_len..)?)?;
                (Backend::Groth16, ProofData::Groth16 { vk, proof })
            }
            TAG_SPARTAN => {
                let proof = SpartanProof::from_bytes(payload)?;
                (
                    Backend::Spartan,
                    ProofData::Spartan {
                        proof: Box::new(proof),
                    },
                )
            }
            _ => return None,
        };
        Some(ProofEnvelope {
            backend,
            public_inputs,
            data,
        })
    }

    /// Verifies against a prepared verifier key (both backends), ignoring
    /// any key material embedded in the envelope itself. Borrows the
    /// envelope — no copies on the per-job verify path.
    pub fn verify_with_key(&self, key: &VerifierKey) -> bool {
        match (&self.data, key) {
            (ProofData::Groth16 { proof, .. }, VerifierKey::Groth16(vk)) => {
                groth16::verify(vk, &self.public_inputs, proof)
            }
            (ProofData::Spartan { proof }, VerifierKey::Spartan(verifier)) => {
                verifier.verify(&self.public_inputs, proof)
            }
            _ => false,
        }
    }

    /// Verifies against a circuit structure: Spartan preprocessing is
    /// re-derived from `cs`, while the Groth16 arm trusts the envelope's
    /// embedded key (`cs` does not enter the pairing check). When the
    /// expected key material is known, prefer [`Self::verify_with_key`],
    /// which binds the proof to that key instead.
    pub fn verify_cs(&self, cs: &ConstraintSystem<Fr>) -> bool {
        match &self.data {
            ProofData::Groth16 { vk, proof } => groth16::verify(vk, &self.public_inputs, proof),
            ProofData::Spartan { proof } => {
                zkvc_spartan::SpartanVerifier::preprocess(cs).verify(&self.public_inputs, proof)
            }
        }
    }

    /// Converts back into [`ProofArtifacts`] for the verification APIs.
    /// Prover-side metrics do not cross the wire: the metrics field is
    /// zeroed except for backend and serialised size.
    pub fn into_artifacts(self) -> ProofArtifacts {
        let proof_size_bytes = match &self.data {
            ProofData::Groth16 { proof, .. } => proof.size_in_bytes(),
            ProofData::Spartan { proof } => proof.size_in_bytes(),
        };
        ProofArtifacts {
            data: self.data,
            public_inputs: self.public_inputs,
            metrics: ProveMetrics {
                backend: self.backend,
                setup_time: Duration::ZERO,
                prove_time: Duration::ZERO,
                proof_size_bytes,
                num_constraints: 0,
                num_variables: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_core::matmul::{MatMulBuilder, Strategy};

    #[test]
    fn envelope_roundtrip_both_backends() {
        let mut rng = StdRng::seed_from_u64(5);
        let job = MatMulBuilder::new(2, 3, 2)
            .strategy(Strategy::CrpcPsq)
            .build_random(&mut rng);
        for backend in Backend::ALL {
            let artifacts = backend.prove_cs(&job.cs, &mut rng);
            let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
            let envelope = ProofEnvelope::from_bytes(&bytes).expect("round trip");
            assert_eq!(envelope.backend, backend);
            assert_eq!(envelope.public_inputs, artifacts.public_inputs);
            assert!(envelope.verify_cs(&job.cs), "{backend:?}");
            // Stable re-encoding.
            assert_eq!(envelope.to_bytes(), bytes);
        }
    }

    #[test]
    fn huge_public_input_count_rejected_without_allocation() {
        // magic + count claiming ~16M field elements in a 13-byte file.
        let mut bytes = b"ZKVCPRF1".to_vec();
        bytes.extend_from_slice(&0x00FF_FFFFu32.to_le_bytes());
        bytes.push(0);
        assert!(ProofEnvelope::from_bytes(&bytes).is_none());
    }

    #[test]
    fn envelope_from_unrelated_circuit_fails_against_expected_keys() {
        // A valid, internally consistent Groth16 envelope for circuit B must
        // not verify against the verifier key of circuit A: this is the
        // binding `zkvc verify` relies on.
        use crate::cache::KeyCache;
        let mut rng = StdRng::seed_from_u64(7);
        let job_a = MatMulBuilder::new(2, 3, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng);
        let job_b = MatMulBuilder::new(2, 2, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng);
        let cache = KeyCache::new();
        let (keys_a, _) = cache.get_or_setup(Backend::Groth16, &job_a.cs);
        let forged = Backend::Groth16.prove_cs(&job_b.cs, &mut rng);
        let envelope =
            ProofEnvelope::from_bytes(&ProofEnvelope::from_artifacts(&forged).to_bytes()).unwrap();
        // Internally consistent (its own embedded vk accepts it)...
        assert!(envelope.verify_cs(&job_b.cs));
        // ...but rejected by the key the statement actually demands.
        assert!(!envelope.verify_with_key(&keys_a.verifier));
    }

    #[test]
    fn malformed_envelopes_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let job = MatMulBuilder::new(2, 2, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng);
        let artifacts = Backend::Spartan.prove_cs(&job.cs, &mut rng);
        let bytes = ProofEnvelope::from_artifacts(&artifacts).to_bytes();
        assert!(ProofEnvelope::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(ProofEnvelope::from_bytes(b"NOTMAGIC").is_none());
        let mut wrong_tag = bytes.clone();
        // magic(8) + count(4) + publics(0 here? job has no instance vars)
        let tag_pos = 8 + 4 + 32 * artifacts.public_inputs.len();
        wrong_tag[tag_pos] = 9;
        assert!(ProofEnvelope::from_bytes(&wrong_tag).is_none());
    }
}
