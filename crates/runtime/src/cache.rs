//! The key cache: one `setup` per circuit shape, shared by every job.
//!
//! [`KeyCache`] maps a [`circuit_shape_digest`](crate::circuit_shape_digest)
//! (plus backend) to the [`ProverKey`]/[`VerifierKey`] pair produced by
//! [`Backend::setup`]. Lookups are lock-light: a short-held map mutex hands
//! out a per-entry [`OnceLock`], so concurrent workers proving different
//! shapes never serialise each other's setups, and concurrent workers
//! racing on the *same* new shape run setup exactly once (the losers block
//! on the `OnceLock` and reuse the winner's keys).
//!
//! Setup randomness is derived deterministically from the shape digest and
//! a setup seed, so a batch re-run with the same seed reproduces
//! byte-identical CRS material and proofs. For Groth16 this means the CRS
//! trapdoor is derivable from public data — the right trade-off for a
//! benchmarking/amortisation runtime, and the same "challenge baked into
//! the CRS" assumption the paper's measured zkVC-G flow already makes; a
//! deployment needing a real ceremony would inject entropy via
//! [`KeyCache::with_seed`].
//!
//! Entries are keyed by `(shape digest, backend, setup seed)`. The seed in
//! the key is what lets one long-lived cache serve a resident `zkvc serve`
//! process across requests carrying *different* seeds: each seed gets its
//! own deterministic CRS (so serve proofs stay verifiable offline by
//! `zkvc verify --seed N`, which re-derives setup from the same seed),
//! while repeat shapes under the same seed hit the cache and stay
//! O(prove). Batch pools pass their pool seed for every job, so their
//! behaviour is unchanged: one setup per shape per batch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::{Circuit, RawCircuit};
use zkvc_core::{Backend, ProverKey, VerifierKey};
use zkvc_ff::Fr;
use zkvc_r1cs::ConstraintSystem;

/// The cached product of one [`Backend::setup`] run for one circuit shape.
#[derive(Debug)]
pub struct CircuitKeys {
    /// Backend the keys belong to.
    pub backend: Backend,
    /// Shape digest the keys were generated for.
    pub digest: [u8; 32],
    /// Setup seed the key material was derived under.
    pub setup_seed: u64,
    /// Prover-side key material.
    pub prover: ProverKey,
    /// Verifier-side key material.
    pub verifier: VerifierKey,
    /// How long the setup took (amortised across every job that hits this
    /// entry).
    pub setup_time: Duration,
}

/// Aggregate cache counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from an existing entry.
    pub hits: u64,
    /// Lookups that ran a fresh setup.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache, in `[0, 1]`; zero when no
    /// lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type CacheKey = ([u8; 32], Backend, u64);

/// A concurrent, shape-keyed cache of proving/verifying keys.
#[derive(Debug, Default)]
pub struct KeyCache {
    entries: Mutex<HashMap<CacheKey, std::sync::Arc<OnceLock<std::sync::Arc<CircuitKeys>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    seed: u64,
}

impl KeyCache {
    /// An empty cache with the default (zero) setup seed.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache whose setup randomness additionally mixes in `seed`.
    pub fn with_seed(seed: u64) -> Self {
        KeyCache {
            seed,
            ..Self::default()
        }
    }

    /// Returns the keys for the shape of `cs`, running the backend's
    /// [`ProofSystem::setup`](zkvc_core::ProofSystem::setup) at most once
    /// per shape. The boolean is `true` when the entry already existed (a
    /// cache hit).
    pub fn get_or_setup(
        &self,
        backend: Backend,
        cs: &ConstraintSystem<Fr>,
    ) -> (std::sync::Arc<CircuitKeys>, bool) {
        self.get_or_setup_circuit(backend, &RawCircuit::new(cs))
    }

    /// Trait-object entry point: any [`Circuit`] — a matmul job, a whole
    /// model forward pass — is cached under its [`Circuit::shape_digest`]
    /// and the cache's own default setup seed.
    pub fn get_or_setup_circuit(
        &self,
        backend: Backend,
        circuit: &dyn Circuit,
    ) -> (std::sync::Arc<CircuitKeys>, bool) {
        self.get_or_setup_circuit_seeded(backend, circuit, self.seed)
    }

    /// Seed-explicit entry point used by the proving pool: the entry is
    /// keyed by `(digest, backend, seed)`, so jobs carrying different
    /// seeds (resident `zkvc serve` requests) get independent — and
    /// independently reproducible — key material, while same-seed jobs
    /// still share one setup.
    pub fn get_or_setup_circuit_seeded(
        &self,
        backend: Backend,
        circuit: &dyn Circuit,
        seed: u64,
    ) -> (std::sync::Arc<CircuitKeys>, bool) {
        let digest = circuit.shape_digest();
        let cell = {
            let mut map = self.entries.lock().expect("key cache poisoned");
            map.entry((digest, backend, seed))
                .or_insert_with(|| std::sync::Arc::new(OnceLock::new()))
                .clone()
        };

        let mut ran_setup = false;
        let keys = cell
            .get_or_init(|| {
                ran_setup = true;
                let mut rng = StdRng::seed_from_u64(setup_seed(&digest, backend, seed));
                let t0 = Instant::now();
                let (prover, verifier) = backend.system().setup(circuit, &mut rng);
                std::sync::Arc::new(CircuitKeys {
                    backend,
                    digest,
                    setup_seed: seed,
                    prover,
                    verifier,
                    setup_time: t0.elapsed(),
                })
            })
            .clone();

        if ran_setup {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (keys, !ran_setup)
    }

    /// Fetches an existing entry without running setup (`None` when the
    /// entry is absent or its setup is still in flight on another
    /// thread). `zkvc serve` uses this to stream a shape's verification
    /// key the moment its first job completes.
    pub fn get(
        &self,
        digest: &[u8; 32],
        backend: Backend,
        seed: u64,
    ) -> Option<std::sync::Arc<CircuitKeys>> {
        self.entries
            .lock()
            .expect("key cache poisoned")
            .get(&(*digest, backend, seed))
            .and_then(|cell| cell.get().cloned())
    }

    /// A snapshot of every fully-initialised cache entry (entries whose
    /// setup is still in flight on another thread are skipped). Used by the
    /// pool to assemble the once-per-batch key table.
    pub fn entries(&self) -> Vec<std::sync::Arc<CircuitKeys>> {
        self.entries
            .lock()
            .expect("key cache poisoned")
            .values()
            .filter_map(|cell| cell.get().cloned())
            .collect()
    }

    /// Counters and current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("key cache poisoned").len(),
        }
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("key cache poisoned").clear();
    }
}

/// Mixes the shape digest, backend tag and setup seed into the rng seed
/// the backend's setup runs from.
fn setup_seed(digest: &[u8; 32], backend: Backend, seed: u64) -> u64 {
    let mut mixed = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes"));
    mixed ^= seed.rotate_left(17);
    mixed ^= match backend {
        Backend::Groth16 => 0x4752_4F54_4831_3600, // "GROTH16\0"
        Backend::Spartan => 0x5350_4152_5441_4E00, // "SPARTAN\0"
    };
    mixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_core::matmul::{MatMulBuilder, Strategy};

    fn matmul_cs(seed: u64, n: usize) -> ConstraintSystem<Fr> {
        let mut rng = StdRng::seed_from_u64(seed);
        MatMulBuilder::new(2, n, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng)
            .cs
    }

    #[test]
    fn same_shape_hits_different_shape_misses() {
        let cache = KeyCache::new();
        let (k1, hit1) = cache.get_or_setup(Backend::Spartan, &matmul_cs(1, 3));
        let (k2, hit2) = cache.get_or_setup(Backend::Spartan, &matmul_cs(2, 3));
        assert!(!hit1 && hit2);
        assert_eq!(k1.digest, k2.digest);
        assert!(std::sync::Arc::ptr_eq(&k1, &k2));

        // Different shape and different backend each get their own entry.
        let (_k3, hit3) = cache.get_or_setup(Backend::Spartan, &matmul_cs(3, 4));
        let (_k4, hit4) = cache.get_or_setup(Backend::Groth16, &matmul_cs(4, 3));
        assert!(!hit3 && !hit4);

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn cached_keys_prove_and_verify_fresh_statements() {
        let cache = KeyCache::new();
        let mut rng = StdRng::seed_from_u64(99);
        for backend in Backend::ALL {
            let cs1 = matmul_cs(10, 3);
            let cs2 = matmul_cs(11, 3);
            let (keys, _) = cache.get_or_setup(backend, &cs1);
            let (keys_again, hit) = cache.get_or_setup(backend, &cs2);
            assert!(hit, "{backend:?}");
            let artifacts = backend.prove_with_key(&keys_again.prover, &cs2, &mut rng);
            assert!(
                backend.verify_with_key(&keys.verifier, &artifacts),
                "{backend:?}"
            );
        }
    }

    #[test]
    fn concurrent_lookups_run_setup_once() {
        let cache = std::sync::Arc::new(KeyCache::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                let cs = matmul_cs(100 + i, 3);
                cache.get_or_setup(Backend::Spartan, &cs).0
            }));
        }
        let keys: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one setup for one shape");
        assert_eq!(stats.hits, 7);
        assert!(keys
            .windows(2)
            .all(|w| std::sync::Arc::ptr_eq(&w[0], &w[1])));
    }

    #[test]
    fn entries_are_seed_aware() {
        use zkvc_core::api::RawCircuit;
        let cache = KeyCache::with_seed(1);
        let cs = matmul_cs(5, 3);
        let circuit = RawCircuit::new(&cs);
        let digest = circuit.shape_digest();

        // Default-seed lookup and an explicit same-seed lookup share one
        // entry; a different seed gets its own (deterministic) setup.
        let (k1, hit1) = cache.get_or_setup_circuit(Backend::Spartan, &circuit);
        let (k2, hit2) = cache.get_or_setup_circuit_seeded(Backend::Spartan, &circuit, 1);
        let (k3, hit3) = cache.get_or_setup_circuit_seeded(Backend::Spartan, &circuit, 2);
        assert!(!hit1 && hit2 && !hit3);
        assert!(std::sync::Arc::ptr_eq(&k1, &k2));
        assert_eq!(k1.setup_seed, 1);
        assert_eq!(k3.setup_seed, 2);
        assert_eq!(cache.stats().entries, 2);

        // get() fetches without setting up, per (digest, backend, seed).
        assert!(cache.get(&digest, Backend::Spartan, 1).is_some());
        assert!(cache.get(&digest, Backend::Spartan, 2).is_some());
        assert!(cache.get(&digest, Backend::Spartan, 3).is_none());
        assert!(cache.get(&digest, Backend::Groth16, 1).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2), "get() is not a lookup");
    }

    #[test]
    fn clear_retains_counters() {
        let cache = KeyCache::new();
        cache.get_or_setup(Backend::Spartan, &matmul_cs(1, 2));
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }
}
