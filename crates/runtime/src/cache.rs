//! The key cache: one shape compile + one `setup` per circuit shape,
//! shared by every job.
//!
//! [`KeyCache`] maps a circuit-shape digest (plus backend and setup seed)
//! to the [`CircuitKeys`] produced by
//! [`ProofSystem::setup_shape`](zkvc_core::ProofSystem::setup_shape) — and,
//! since the compile-once / prove-many split, the [`CompiledShape`] itself
//! (CSR matrices) is stored beside the keys, so anything that needs the
//! structure later (witness-pass validation, Spartan re-preprocessing, the
//! CLI) reads it from the cache instead of re-synthesising.
//!
//! Lookups are lock-light: a short-held map mutex hands out a per-entry
//! [`OnceLock`], so concurrent workers proving different shapes never
//! serialise each other's setups, and concurrent workers racing on the
//! *same* new shape run setup exactly once (the losers block on the
//! `OnceLock` and reuse the winner's keys).
//!
//! On top of the digest-keyed map sits a **template index**: a caller-chosen
//! string key (the pool uses the job spec) that memoises the digest lookup
//! *and* the shape compile. The first job of a template runs the
//! witness-free shape pass once; every later job on the warm template skips
//! constraint synthesis entirely and goes straight to its witness pass.
//!
//! Setup randomness is derived deterministically from the shape digest and
//! a setup seed, so a batch re-run with the same seed reproduces
//! byte-identical CRS material and proofs. For Groth16 this means the CRS
//! trapdoor is derivable from public data — the right trade-off for a
//! benchmarking/amortisation runtime, and the same "challenge baked into
//! the CRS" assumption the paper's measured zkVC-G flow already makes; a
//! deployment needing a real ceremony would inject entropy via
//! [`KeyCache::with_seed`].
//!
//! Entries are keyed by `(shape digest, backend, setup seed)`. The seed in
//! the key is what lets one long-lived cache serve a resident `zkvc serve`
//! process across requests carrying *different* seeds: each seed gets its
//! own deterministic CRS (so serve proofs stay verifiable offline by
//! `zkvc verify --seed N`, which re-derives setup from the same seed),
//! while repeat shapes under the same seed hit the cache and stay
//! O(prove). Batch pools pass their pool seed for every job, so their
//! behaviour is unchanged: one setup per shape per batch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::{compile_shape, Circuit, RawCircuit};
use zkvc_core::{Backend, ProverKey, VerifierKey};
use zkvc_ff::Fr;
use zkvc_r1cs::{CompiledShape, ConstraintSystem};

/// The cached product of one shape compile + setup run for one circuit
/// shape.
#[derive(Debug)]
pub struct CircuitKeys {
    /// Backend the keys belong to.
    pub backend: Backend,
    /// Shape digest the keys were generated for.
    pub digest: [u8; 32],
    /// Setup seed the key material was derived under.
    pub setup_seed: u64,
    /// The compiled circuit shape (CSR matrices) the keys were generated
    /// for — cached beside the keys so warm jobs validate their witness
    /// pass against it without any re-synthesis.
    pub shape: Arc<CompiledShape<Fr>>,
    /// Prover-side key material.
    pub prover: ProverKey,
    /// Verifier-side key material.
    pub verifier: VerifierKey,
    /// How long the setup took (amortised across every job that hits this
    /// entry).
    pub setup_time: Duration,
}

/// Aggregate cache counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from an existing entry.
    pub hits: u64,
    /// Lookups that ran a fresh setup.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Entries evicted to stay under the shape-byte bound.
    pub evictions: u64,
    /// Total compiled-shape bytes currently resident.
    pub shape_bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache, in `[0, 1]`; zero when no
    /// lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type CacheKey = ([u8; 32], Backend, u64);
type TemplateKey = (String, Backend, u64);
type Cell = Arc<OnceLock<Arc<CircuitKeys>>>;

/// One digest-keyed cache entry: the setup cell plus its last-use stamp
/// (a logical clock tick, not wall time — the eviction scan only compares
/// recency).
#[derive(Debug, Default)]
struct Slot {
    cell: OnceLock<Arc<CircuitKeys>>,
    last_use: AtomicU64,
}

/// A concurrent, shape-keyed cache of compiled shapes and proving/verifying
/// keys, with a template index for synthesis-free warm lookups.
///
/// By default the cache grows without bound — the right behaviour for a
/// one-shot batch, where every shape in flight is live. A resident server
/// instead constructs it with [`KeyCache::bound_shape_bytes`]: whenever the
/// compiled shapes' total CSR footprint exceeds the bound, least-recently
/// used entries (and their template aliases) are evicted until it fits.
/// Hot shapes are re-stamped on every lookup, so steady traffic keeps them
/// warm while one-off shapes age out. The entry just inserted is never
/// evicted by its own insertion, so a single shape larger than the whole
/// bound still serves (and is dropped by the *next* distinct shape).
#[derive(Debug, Default)]
pub struct KeyCache {
    entries: Mutex<HashMap<CacheKey, Arc<Slot>>>,
    templates: Mutex<HashMap<TemplateKey, Cell>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    clock: AtomicU64,
    max_shape_bytes: Option<usize>,
    seed: u64,
}

impl KeyCache {
    /// An empty cache with the default (zero) setup seed.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache whose setup randomness additionally mixes in `seed`.
    pub fn with_seed(seed: u64) -> Self {
        KeyCache {
            seed,
            ..Self::default()
        }
    }

    /// Bounds the total compiled-shape footprint (in bytes, as measured by
    /// [`CompiledShape::approx_bytes`]); exceeding it evicts
    /// least-recently-used entries. `zkvc serve` uses this so a long-lived
    /// process fed an unbounded variety of specs cannot grow its key cache
    /// without limit.
    pub fn bound_shape_bytes(mut self, max_bytes: usize) -> Self {
        self.max_shape_bytes = Some(max_bytes);
        self
    }

    /// The configured shape-byte bound, if any.
    pub fn shape_byte_bound(&self) -> Option<usize> {
        self.max_shape_bytes
    }

    /// Next tick of the logical recency clock.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Re-stamps the entry backing `keys` as just-used (no-op when the
    /// entry was evicted concurrently).
    fn touch(&self, keys: &CircuitKeys) {
        let stamp = self.tick();
        if let Some(slot) = self.entries.lock().expect("key cache poisoned").get(&(
            keys.digest,
            keys.backend,
            keys.setup_seed,
        )) {
            slot.last_use.store(stamp, Ordering::Relaxed);
        }
    }

    /// Enforces the shape-byte bound: evicts initialised entries in
    /// least-recently-used order (never `protect`, never a cell whose setup
    /// is still in flight) until the resident footprint fits, then drops
    /// template aliases of everything evicted.
    fn evict_to_bound(&self, protect: &CacheKey) {
        let Some(bound) = self.max_shape_bytes else {
            return;
        };
        let mut evicted: Vec<Arc<CircuitKeys>> = Vec::new();
        {
            let mut map = self.entries.lock().expect("key cache poisoned");
            loop {
                let mut total = 0usize;
                let mut victim: Option<(CacheKey, u64, usize)> = None;
                for (key, slot) in map.iter() {
                    let Some(keys) = slot.cell.get() else {
                        continue; // setup in flight: unaccounted, unevictable
                    };
                    let bytes = keys.shape.approx_bytes();
                    total += bytes;
                    if key == protect {
                        continue;
                    }
                    let stamp = slot.last_use.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|(_, s, _)| stamp < *s) {
                        victim = Some((*key, stamp, bytes));
                    }
                }
                if total <= bound {
                    break;
                }
                let Some((key, _, _)) = victim else {
                    break; // only the protected / in-flight entries remain
                };
                if let Some(slot) = map.remove(&key) {
                    if let Some(keys) = slot.cell.get() {
                        evicted.push(keys.clone());
                    }
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if !evicted.is_empty() {
            self.templates
                .lock()
                .expect("key cache poisoned")
                .retain(|_, cell| match cell.get() {
                    Some(keys) => !evicted.iter().any(|e| Arc::ptr_eq(e, keys)),
                    None => true, // template compile in flight
                });
        }
    }

    /// Returns the keys for the shape of `cs`, compiling the shape and
    /// running the backend's
    /// [`ProofSystem::setup_shape`](zkvc_core::ProofSystem::setup_shape) at
    /// most once per shape. The boolean is `true` when the entry already
    /// existed (a cache hit).
    pub fn get_or_setup(
        &self,
        backend: Backend,
        cs: &ConstraintSystem<Fr>,
    ) -> (Arc<CircuitKeys>, bool) {
        self.get_or_setup_circuit(backend, &RawCircuit::new(cs))
    }

    /// Trait-object entry point: any [`Circuit`] — a matmul statement, a
    /// whole model forward pass — is cached under its compiled shape's
    /// digest and the cache's own default setup seed. The shape pass is
    /// witness-free; no witness value is materialised on this path.
    pub fn get_or_setup_circuit(
        &self,
        backend: Backend,
        circuit: &dyn Circuit,
    ) -> (Arc<CircuitKeys>, bool) {
        self.get_or_setup_circuit_seeded(backend, circuit, self.seed)
    }

    /// Seed-explicit entry point: the entry is keyed by
    /// `(digest, backend, seed)`, so jobs carrying different seeds
    /// (resident `zkvc serve` requests) get independent — and independently
    /// reproducible — key material, while same-seed jobs still share one
    /// setup.
    ///
    /// Warm lookups cost one [`Circuit::shape_digest`] — O(hash) for
    /// circuits holding a prebuilt constraint system, one witness-free
    /// shape pass for lazy statements — and never lower a shape to CSR;
    /// only the first (miss) call compiles. Pool jobs that know their spec
    /// should prefer [`KeyCache::get_or_setup_template`], whose warm path
    /// skips even the digest.
    pub fn get_or_setup_circuit_seeded(
        &self,
        backend: Backend,
        circuit: &dyn Circuit,
        seed: u64,
    ) -> (Arc<CircuitKeys>, bool) {
        let digest = circuit.shape_digest();
        if let Some(keys) = self.get(&digest, backend, seed) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (keys, true);
        }
        let (keys, hit) = self.get_or_setup_shape(backend, Arc::new(compile_shape(circuit)), seed);
        debug_assert_eq!(keys.digest, digest, "shape digest mismatch across passes");
        (keys, hit)
    }

    /// Shape-level entry point: caches a pre-compiled shape under its
    /// digest, running setup at most once.
    pub fn get_or_setup_shape(
        &self,
        backend: Backend,
        shape: Arc<CompiledShape<Fr>>,
        seed: u64,
    ) -> (Arc<CircuitKeys>, bool) {
        let digest = shape.digest;
        let key = (digest, backend, seed);
        let slot = {
            let mut map = self.entries.lock().expect("key cache poisoned");
            map.entry(key).or_default().clone()
        };

        let mut ran_setup = false;
        let keys = slot
            .cell
            .get_or_init(|| {
                ran_setup = true;
                Arc::new(Self::run_setup(backend, shape, seed))
            })
            .clone();
        slot.last_use.store(self.tick(), Ordering::Relaxed);

        if ran_setup {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.evict_to_bound(&key);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (keys, !ran_setup)
    }

    /// Template-indexed entry point — the pool's warm path. `template` is
    /// any string that, together with `(backend, seed)`, uniquely
    /// determines the circuit shape (the pool uses the job spec; every
    /// job of one spec shares a shape by construction).
    ///
    /// On a template hit, **no synthesis of any kind runs**: the circuit
    /// is untouched and the cached keys (with their compiled shape) come
    /// straight back. On a template miss, the circuit's shape is compiled
    /// once — witness-free — and deduplicated against the digest-keyed
    /// map, so two different templates with identical structure still
    /// share one setup.
    pub fn get_or_setup_template(
        &self,
        backend: Backend,
        seed: u64,
        template: &str,
        circuit: &dyn Circuit,
    ) -> (Arc<CircuitKeys>, bool) {
        let cell = {
            let mut map = self.templates.lock().expect("key cache poisoned");
            map.entry((template.to_string(), backend, seed))
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        };
        let mut compiled = false;
        let mut inner_hit = false;
        let keys = cell
            .get_or_init(|| {
                compiled = true;
                let (keys, hit) =
                    self.get_or_setup_shape(backend, Arc::new(compile_shape(circuit)), seed);
                inner_hit = hit;
                keys
            })
            .clone();
        if compiled {
            (keys, inner_hit)
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.touch(&keys);
            (keys, true)
        }
    }

    /// Compiles nothing and proves nothing: the one place setup actually
    /// runs, deterministically seeded from the digest + backend + seed.
    fn run_setup(backend: Backend, shape: Arc<CompiledShape<Fr>>, seed: u64) -> CircuitKeys {
        let digest = shape.digest;
        let mut rng = StdRng::seed_from_u64(setup_seed(&digest, backend, seed));
        let t0 = Instant::now();
        let (prover, verifier) = backend.system().setup_shape(&shape, &mut rng);
        CircuitKeys {
            backend,
            digest,
            setup_seed: seed,
            shape,
            prover,
            verifier,
            setup_time: t0.elapsed(),
        }
    }

    /// Fetches an existing entry without running setup (`None` when the
    /// entry is absent or its setup is still in flight on another
    /// thread). `zkvc serve` uses this to stream a shape's verification
    /// key the moment its first job completes.
    pub fn get(&self, digest: &[u8; 32], backend: Backend, seed: u64) -> Option<Arc<CircuitKeys>> {
        let stamp = self.tick();
        self.entries
            .lock()
            .expect("key cache poisoned")
            .get(&(*digest, backend, seed))
            .and_then(|slot| {
                let keys = slot.cell.get().cloned()?;
                slot.last_use.store(stamp, Ordering::Relaxed);
                Some(keys)
            })
    }

    /// A snapshot of every fully-initialised cache entry (entries whose
    /// setup is still in flight on another thread are skipped). Used by the
    /// pool to assemble the once-per-batch key table.
    pub fn entries(&self) -> Vec<Arc<CircuitKeys>> {
        self.entries
            .lock()
            .expect("key cache poisoned")
            .values()
            .filter_map(|slot| slot.cell.get().cloned())
            .collect()
    }

    /// Counters and current size (distinct shapes; template aliases do not
    /// count).
    pub fn stats(&self) -> CacheStats {
        let (entries, shape_bytes) = {
            let map = self.entries.lock().expect("key cache poisoned");
            let bytes = map
                .values()
                .filter_map(|slot| slot.cell.get())
                .map(|keys| keys.shape.approx_bytes())
                .sum();
            (map.len(), bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions: self.evictions.load(Ordering::Relaxed),
            shape_bytes,
        }
    }

    /// Drops every cached entry and template alias (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("key cache poisoned").clear();
        self.templates.lock().expect("key cache poisoned").clear();
    }
}

/// Mixes the shape digest, backend tag and setup seed into the rng seed
/// the backend's setup runs from.
fn setup_seed(digest: &[u8; 32], backend: Backend, seed: u64) -> u64 {
    let mut mixed = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes"));
    mixed ^= seed.rotate_left(17);
    mixed ^= match backend {
        Backend::Groth16 => 0x4752_4F54_4831_3600, // "GROTH16\0"
        Backend::Spartan => 0x5350_4152_5441_4E00, // "SPARTAN\0"
    };
    mixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_core::matmul::{MatMulBuilder, Strategy};

    fn matmul_cs(seed: u64, n: usize) -> ConstraintSystem<Fr> {
        let mut rng = StdRng::seed_from_u64(seed);
        MatMulBuilder::new(2, n, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng)
            .cs
    }

    #[test]
    fn same_shape_hits_different_shape_misses() {
        let cache = KeyCache::new();
        let (k1, hit1) = cache.get_or_setup(Backend::Spartan, &matmul_cs(1, 3));
        let (k2, hit2) = cache.get_or_setup(Backend::Spartan, &matmul_cs(2, 3));
        assert!(!hit1 && hit2);
        assert_eq!(k1.digest, k2.digest);
        assert!(Arc::ptr_eq(&k1, &k2));

        // Different shape and different backend each get their own entry.
        let (_k3, hit3) = cache.get_or_setup(Backend::Spartan, &matmul_cs(3, 4));
        let (_k4, hit4) = cache.get_or_setup(Backend::Groth16, &matmul_cs(4, 3));
        assert!(!hit3 && !hit4);

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn cached_keys_prove_and_verify_fresh_statements() {
        let cache = KeyCache::new();
        let mut rng = StdRng::seed_from_u64(99);
        for backend in Backend::ALL {
            let cs1 = matmul_cs(10, 3);
            let cs2 = matmul_cs(11, 3);
            let (keys, _) = cache.get_or_setup(backend, &cs1);
            let (keys_again, hit) = cache.get_or_setup(backend, &cs2);
            assert!(hit, "{backend:?}");
            let artifacts = backend.prove_with_key(&keys_again.prover, &cs2, &mut rng);
            assert!(
                backend.verify_with_key(&keys.verifier, &artifacts),
                "{backend:?}"
            );
        }
    }

    #[test]
    fn cached_shape_matches_circuit() {
        let cache = KeyCache::new();
        let cs = matmul_cs(12, 3);
        let (keys, _) = cache.get_or_setup(Backend::Groth16, &cs);
        assert_eq!(keys.shape.digest, keys.digest);
        assert_eq!(keys.shape.num_constraints(), cs.num_constraints());
        assert_eq!(keys.shape.num_instance(), cs.num_instance());
        assert!(keys.shape.matrices.is_satisfied(&cs.full_assignment()));
    }

    #[test]
    fn concurrent_lookups_run_setup_once() {
        let cache = Arc::new(KeyCache::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                let cs = matmul_cs(100 + i, 3);
                cache.get_or_setup(Backend::Spartan, &cs).0
            }));
        }
        let keys: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one setup for one shape");
        assert_eq!(stats.hits, 7);
        assert!(keys.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }

    #[test]
    fn template_index_skips_synthesis_on_warm_shapes() {
        // A circuit that counts how many times it is synthesised: the
        // template path must compile it exactly once no matter how many
        // jobs arrive.
        use std::sync::atomic::AtomicUsize;
        use zkvc_core::api::Circuit;
        use zkvc_r1cs::{ConstraintSink, SinkExt};

        struct Counting<'a> {
            syntheses: &'a AtomicUsize,
        }
        impl Circuit for Counting<'_> {
            fn synthesize(&self, sink: &mut dyn ConstraintSink<zkvc_ff::Fr>) {
                self.syntheses.fetch_add(1, Ordering::Relaxed);
                use zkvc_ff::PrimeField;
                let out = sink.alloc_instance_lazy(|| Fr::from_u64(49));
                let w = sink.alloc_witness_lazy(|| Fr::from_u64(7));
                sink.enforce(w.into(), w.into(), out.into());
            }
        }

        let syntheses = AtomicUsize::new(0);
        let cache = KeyCache::new();
        let circuit = Counting {
            syntheses: &syntheses,
        };
        let (k1, hit1) =
            cache.get_or_setup_template(Backend::Spartan, 0, "square:spartan", &circuit);
        assert!(!hit1);
        assert_eq!(syntheses.load(Ordering::Relaxed), 1);
        for _ in 0..5 {
            let (k, hit) =
                cache.get_or_setup_template(Backend::Spartan, 0, "square:spartan", &circuit);
            assert!(hit);
            assert!(Arc::ptr_eq(&k, &k1));
        }
        // Warm lookups ran the circuit zero additional times.
        assert_eq!(syntheses.load(Ordering::Relaxed), 1);

        // A second template with the same structure compiles once more but
        // reuses the digest-level entry (no second setup).
        let (k2, hit2) = cache.get_or_setup_template(Backend::Spartan, 0, "square-alias", &circuit);
        assert!(hit2, "digest-level dedup is a hit");
        assert!(Arc::ptr_eq(&k2, &k1));
        assert_eq!(syntheses.load(Ordering::Relaxed), 2);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn entries_are_seed_aware() {
        use zkvc_core::api::RawCircuit;
        let cache = KeyCache::with_seed(1);
        let cs = matmul_cs(5, 3);
        let circuit = RawCircuit::new(&cs);
        let digest = circuit.shape_digest();

        // Default-seed lookup and an explicit same-seed lookup share one
        // entry; a different seed gets its own (deterministic) setup.
        let (k1, hit1) = cache.get_or_setup_circuit(Backend::Spartan, &circuit);
        let (k2, hit2) = cache.get_or_setup_circuit_seeded(Backend::Spartan, &circuit, 1);
        let (k3, hit3) = cache.get_or_setup_circuit_seeded(Backend::Spartan, &circuit, 2);
        assert!(!hit1 && hit2 && !hit3);
        assert!(Arc::ptr_eq(&k1, &k2));
        assert_eq!(k1.setup_seed, 1);
        assert_eq!(k3.setup_seed, 2);
        assert_eq!(cache.stats().entries, 2);

        // get() fetches without setting up, per (digest, backend, seed).
        assert!(cache.get(&digest, Backend::Spartan, 1).is_some());
        assert!(cache.get(&digest, Backend::Spartan, 2).is_some());
        assert!(cache.get(&digest, Backend::Spartan, 3).is_none());
        assert!(cache.get(&digest, Backend::Groth16, 1).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2), "get() is not a lookup");
    }

    #[test]
    fn byte_bound_evicts_cold_shapes_and_keeps_hot_ones_warm() {
        use zkvc_core::api::{compile_shape, RawCircuit};
        let hot_cs = matmul_cs(1, 3);
        let probe = compile_shape(&RawCircuit::new(&hot_cs)).approx_bytes();
        let max_cold = compile_shape(&RawCircuit::new(&matmul_cs(1, 9))).approx_bytes();
        assert!(probe > 0);
        // Room for the hot shape plus any single cold one — never two colds.
        let bound = probe + max_cold;
        let cache = KeyCache::new().bound_shape_bytes(bound);
        assert_eq!(cache.shape_byte_bound(), Some(bound));

        let (hot, _) =
            cache.get_or_setup_template(Backend::Spartan, 0, "hot", &RawCircuit::new(&hot_cs));
        // A stream of one-off shapes (largest first), with the hot template
        // touched after each: the strangers age out, the hot entry never
        // does.
        for n in (4..10).rev() {
            let cs = matmul_cs(1, n);
            cache.get_or_setup_template(
                Backend::Spartan,
                0,
                &format!("cold-{n}"),
                &RawCircuit::new(&cs),
            );
            let (again, hit) =
                cache.get_or_setup_template(Backend::Spartan, 0, "hot", &RawCircuit::new(&hot_cs));
            assert!(hit, "hot shape must stay warm while n={n} streams past");
            assert!(Arc::ptr_eq(&again, &hot));
        }

        let stats = cache.stats();
        assert!(stats.evictions >= 4, "cold shapes were evicted: {stats:?}");
        assert!(
            stats.shape_bytes <= bound,
            "resident bytes respect the bound: {stats:?}"
        );
        assert!(
            cache.get(&hot.digest, Backend::Spartan, 0).is_some(),
            "hot entry still resident at digest level"
        );
        // An evicted template alias was purged with its entry: looking it
        // up again re-runs setup instead of serving dropped keys.
        let (_, hit) = cache.get_or_setup_template(
            Backend::Spartan,
            0,
            "cold-9",
            &RawCircuit::new(&matmul_cs(1, 9)),
        );
        assert!(!hit, "evicted template must miss");
    }

    #[test]
    fn bound_never_evicts_the_entry_just_inserted() {
        // A bound smaller than any single shape: each insertion survives
        // its own eviction pass and is displaced by the next shape.
        let cache = KeyCache::new().bound_shape_bytes(1);
        let (k1, hit1) = cache.get_or_setup(Backend::Spartan, &matmul_cs(1, 3));
        assert!(!hit1);
        assert!(cache.get(&k1.digest, Backend::Spartan, 0).is_some());

        let (k2, _) = cache.get_or_setup(Backend::Spartan, &matmul_cs(1, 4));
        assert!(
            cache.get(&k1.digest, Backend::Spartan, 0).is_none(),
            "previous oversized entry displaced"
        );
        assert!(cache.get(&k2.digest, Backend::Spartan, 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn clear_retains_counters() {
        let cache = KeyCache::new();
        cache.get_or_setup(Backend::Spartan, &matmul_cs(1, 2));
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }
}
