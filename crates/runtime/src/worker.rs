//! The remote proving worker behind `zkvc worker --connect`: dials a
//! `zkvc serve --listen` coordinator, registers on the zkvc-worker/v1
//! dialect, and proves the jobs it is leased.
//!
//! The worker is deliberately stateless between jobs: everything it
//! needs arrives over the wire. Shapes arrive once per `(digest,
//! backend, seed)` in canonical [`crate::codec`] bytes (digest-checked
//! on receipt), and key material is re-derived locally by the same
//! deterministic setup the coordinator ran — so the proof a worker
//! returns is bit-identical to the one the coordinator would have
//! produced itself, and client reports stay byte-diffable however jobs
//! are placed.
//!
//! Proving replicates [`crate::pool`]'s job execution exactly: the same
//! statement construction, the same per-job prover-rng derivation, the
//! same keyless envelope bytes, the same acceptance predicate. A panic
//! or deadline inside a job is contained and reported as a typed
//! `job_failed` line; it never takes the connection down.

use std::io::BufReader;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_core::api::generate_witness_for;
use zkvc_core::Backend;
use zkvc_ff::Fr;
use zkvc_r1cs::CompiledShape;

use crate::cache::KeyCache;
use crate::codec::{decode_shape_expecting, SERVE_PROTO};
use crate::net::{AnyStream, ListenAddr};
use crate::pool::{build_statement, envelope_verifies};
use crate::serial::ProofEnvelope;
use crate::serve::Output;
use crate::spec::JobSpec;
use crate::wire::{
    heartbeat_line, job_done_line, job_failed_line, parse_coord_msg, worker_register_line,
    CoordMsg, LineReader,
};
use crate::Error;

/// Read poll tick: how often the connection loop wakes to send a
/// heartbeat or notice a shutdown flag while no line is pending.
const READ_TICK: Duration = Duration::from_millis(50);
/// Heartbeat cadence — well inside the coordinator's 10 s staleness
/// verdict.
const HEARTBEAT_EVERY: Duration = Duration::from_secs(1);
/// Line bound for coordinator messages (shape bytes dominate).
const LINE_BYTES: usize = 64 << 20;

/// Configuration for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`unix:/path` or `tcp:host:port`), as accepted
    /// by [`ListenAddr`].
    pub addr: String,
    /// Concurrent proving slots to advertise (executor threads).
    pub capacity: usize,
    /// Optional cooperative stop flag (signal handler); the worker exits
    /// cleanly at the next tick when raised.
    pub shutdown: Option<Arc<AtomicBool>>,
    /// Digest of this host's active tune profile (see [`crate::tune`]),
    /// reported in the registration-ack log line so heterogeneous
    /// distributed runs can be traced to each worker's local dispatch
    /// calibration. Tuning changes schedule only — proofs stay
    /// bit-identical — so the digest travels in logging, never on the
    /// frozen zkvc-worker/v1 wire.
    pub tune_digest: Option<String>,
}

impl WorkerConfig {
    /// A single-slot worker for `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        WorkerConfig {
            addr: addr.into(),
            capacity: 1,
            shutdown: None,
            tune_digest: None,
        }
    }
}

/// What a worker did over one connection's lifetime.
#[derive(Debug, Clone, Default)]
pub struct WorkerSummary {
    /// Id assigned by the coordinator's ack (0 if never acked).
    pub worker_id: u64,
    /// Jobs proved and answered with `job_done`.
    pub jobs_done: usize,
    /// Jobs answered with `job_failed`.
    pub jobs_failed: usize,
    /// Distinct shapes received over the wire.
    pub shapes_received: usize,
}

/// One leased job as handed to an executor thread.
struct WorkOrder {
    lease: u64,
    spec: String,
    seed: u64,
    statement_id: usize,
    shape_digest: [u8; 32],
    deadline: Option<Instant>,
}

/// Shared executor context: key cache, shared writer, counters.
struct ExecCtx {
    cache: KeyCache,
    out: Output<AnyStream>,
    done: AtomicUsize,
    failed: AtomicUsize,
}

/// Connects to `addr`, registers with `capacity` slots, and proves jobs
/// until the coordinator says goodbye (`worker_shutdown`), the
/// connection drops, or the config's shutdown flag is raised. Returns
/// the connection-lifetime summary; transport-level failures surface as
/// [`Error`].
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerSummary, Error> {
    let addr = ListenAddr::parse(&config.addr)?;
    let stream = AnyStream::connect(&addr)?;
    stream
        .set_read_timeout(Some(READ_TICK))
        .map_err(|e| Error::io("set read timeout", e))?;
    let write_half = stream
        .try_clone()
        .map_err(|e| Error::io("clone worker stream", e))?;
    let capacity = config.capacity.max(1);

    let ctx = Arc::new(ExecCtx {
        cache: KeyCache::new(),
        out: Output::new(write_half),
        done: AtomicUsize::new(0),
        failed: AtomicUsize::new(0),
    });

    let mut reader = BufReader::new(stream);
    let mut lines = LineReader::new(LINE_BYTES);

    // The server greets every connection with its ready line; validate
    // we dialed an actual zkvc-serve endpoint before registering.
    let ready = read_line_blocking(&mut lines, &mut reader, config.shutdown.as_deref())?
        .ok_or_else(|| Error::Request("connection closed before ready line".into()))?;
    match parse_coord_msg(&ready) {
        Ok(CoordMsg::Ready { proto }) if proto == SERVE_PROTO => {}
        Ok(CoordMsg::Ready { proto }) => {
            return Err(Error::Request(format!(
                "server speaks {proto}, expected {SERVE_PROTO}"
            )));
        }
        _ => {
            return Err(Error::Request(format!(
                "unexpected greeting from server: {ready}"
            )));
        }
    }
    ctx.out.emit(&worker_register_line(capacity));

    // Executor threads: a shared mpsc feeds whichever slot is free.
    let (job_tx, job_rx) = channel::<WorkOrder>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let executors: Vec<_> = (0..capacity)
        .map(|slot| {
            let ctx = Arc::clone(&ctx);
            let job_rx = Arc::clone(&job_rx);
            thread::Builder::new()
                .name(format!("zkvc-worker-exec-{slot}"))
                .spawn(move || run_executor(&ctx, &job_rx))
                .expect("spawn worker executor")
        })
        .collect();

    let mut summary = WorkerSummary::default();
    let mut last_beat = Instant::now();
    loop {
        if config
            .shutdown
            .as_ref()
            .is_some_and(|f| f.load(Ordering::SeqCst))
            || ctx.out.is_broken()
        {
            break;
        }
        if last_beat.elapsed() >= HEARTBEAT_EVERY {
            ctx.out.emit(&heartbeat_line());
            last_beat = Instant::now();
        }
        match lines.read_line(&mut reader) {
            Ok(None) => break, // coordinator hung up
            Ok(Some(Ok(line))) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match parse_coord_msg(line) {
                    Ok(CoordMsg::Ack { worker }) => {
                        summary.worker_id = worker;
                        eprintln!(
                            "zkvc worker: registered as worker {worker} (capacity {capacity}, \
                             tune profile {})",
                            config.tune_digest.as_deref().unwrap_or("static")
                        );
                    }
                    Ok(CoordMsg::Shape {
                        shape_digest,
                        backend,
                        seed,
                        bytes,
                    }) => {
                        receive_shape(&ctx.cache, &shape_digest, backend, seed, &bytes)?;
                        summary.shapes_received += 1;
                    }
                    Ok(CoordMsg::Job {
                        lease,
                        spec,
                        seed,
                        statement_id,
                        shape_digest,
                        deadline_ms,
                    }) => {
                        let order = WorkOrder {
                            lease,
                            spec,
                            seed,
                            statement_id,
                            shape_digest,
                            deadline: deadline_ms
                                .map(|ms| Instant::now() + Duration::from_millis(ms)),
                        };
                        if job_tx.send(order).is_err() {
                            break; // executors gone — nothing can prove
                        }
                    }
                    Ok(CoordMsg::Shutdown) => break,
                    Ok(CoordMsg::Ready { .. }) => {
                        return Err(Error::Request("duplicate ready line from server".into()));
                    }
                    Err(e) => {
                        return Err(Error::Request(format!("bad coordinator line: {e}")));
                    }
                }
            }
            Ok(Some(Err(reject))) => {
                return Err(Error::Request(format!("unreadable line: {reject:?}")));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => {
                drop(job_tx);
                for handle in executors {
                    let _ = handle.join();
                }
                return Err(Error::io("read from coordinator", e));
            }
        }
    }

    // Let queued work finish before hanging up: executors drain the
    // channel after the sender drops, answering every accepted lease.
    drop(job_tx);
    for handle in executors {
        let _ = handle.join();
    }
    summary.jobs_done = ctx.done.load(Ordering::Relaxed);
    summary.jobs_failed = ctx.failed.load(Ordering::Relaxed);
    Ok(summary)
}

/// Blocking read of one line, honouring poll ticks and the shutdown flag.
fn read_line_blocking(
    lines: &mut LineReader,
    reader: &mut BufReader<AnyStream>,
    shutdown: Option<&AtomicBool>,
) -> Result<Option<String>, Error> {
    loop {
        if shutdown.is_some_and(|f| f.load(Ordering::SeqCst)) {
            return Ok(None);
        }
        match lines.read_line(reader) {
            Ok(None) => return Ok(None),
            Ok(Some(Ok(line))) => return Ok(Some(line)),
            Ok(Some(Err(reject))) => {
                return Err(Error::Request(format!("unreadable line: {reject:?}")));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(Error::io("read from coordinator", e)),
        }
    }
}

/// Decodes and installs one shipped shape: the canonical bytes must
/// round-trip to exactly the advertised digest, then deterministic setup
/// re-derives the same keys the coordinator holds.
fn receive_shape(
    cache: &KeyCache,
    digest: &[u8; 32],
    backend: Backend,
    seed: u64,
    bytes: &[u8],
) -> Result<(), Error> {
    let shape: CompiledShape<Fr> = decode_shape_expecting(bytes, digest)
        .map_err(|e| Error::Request(format!("shape rejected: {e}")))?;
    let _ = cache.get_or_setup_shape(backend, Arc::new(shape), seed);
    Ok(())
}

/// An executor slot: proves work orders until the channel closes.
fn run_executor(ctx: &ExecCtx, jobs: &Mutex<Receiver<WorkOrder>>) {
    loop {
        let order = {
            let rx = jobs.lock().expect("worker job channel poisoned");
            rx.recv()
        };
        let Ok(order) = order else { return };
        match prove_order(&ctx.cache, &order) {
            Ok(done) => {
                ctx.done.fetch_add(1, Ordering::Relaxed);
                ctx.out.emit(&done);
            }
            Err((kind, detail)) => {
                ctx.failed.fetch_add(1, Ordering::Relaxed);
                ctx.out.emit(&job_failed_line(order.lease, kind, &detail));
            }
        }
    }
}

/// Proves one leased job, replicating the pool's execution byte for
/// byte, and renders the `job_done` line. Errors carry the `(kind,
/// detail)` pair for `job_failed`.
fn prove_order(cache: &KeyCache, order: &WorkOrder) -> Result<String, (&'static str, String)> {
    if order
        .deadline
        .is_some_and(|deadline| Instant::now() >= deadline)
    {
        return Err(("deadline_exceeded", "deadline passed before start".into()));
    }
    let (spec, _count) = JobSpec::parse(&order.spec)
        .map_err(|e| ("bad_spec", format!("unparseable job spec: {e}")))?;

    // Cooperative deadline: kernel checkpoints abort mid-prove, exactly
    // as the pool's local workers do.
    let check: zkvc_ff::cancel::CancelCheck = {
        let deadline = order.deadline;
        Arc::new(move || deadline.is_some_and(|d| Instant::now() >= d))
    };

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _cancel = zkvc_ff::cancel::install(check);
        prove_inner(cache, order, spec)
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            if payload
                .downcast_ref::<zkvc_ff::cancel::Cancelled>()
                .is_some()
            {
                Err(("deadline_exceeded", "deadline hit mid-proof".into()))
            } else {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".into());
                Err(("panicked", msg))
            }
        }
    }
}

fn prove_inner(
    cache: &KeyCache,
    order: &WorkOrder,
    spec: JobSpec,
) -> Result<String, (&'static str, String)> {
    let t0 = Instant::now();
    let statement = build_statement(order.seed, order.statement_id, &spec);
    let backend = spec.backend();

    // The keys should already be resident from the shape the coordinator
    // shipped; the template fallback keeps a worker correct even if a
    // job somehow beats its shape line (it re-runs the shape pass the
    // shipped bytes would have skipped).
    let (keys, cache_hit) = match cache.get(&order.shape_digest, backend, order.seed) {
        Some(keys) => (keys, true),
        None => {
            cache.get_or_setup_template(backend, order.seed, &spec.to_string(), statement.as_ref())
        }
    };
    if keys.digest != order.shape_digest {
        return Err((
            "digest_mismatch",
            format!(
                "job digest {} != locally compiled {}",
                crate::util::hex(&order.shape_digest),
                crate::util::hex(&keys.digest)
            ),
        ));
    }

    let witness = generate_witness_for(statement.as_ref(), &keys.shape);
    let build_time = t0.elapsed();

    // Identical prover-rng derivation to the pool's run_job: same seed,
    // same statement id, same constant — bit-identical proof bytes.
    let mut prover_rng = StdRng::seed_from_u64(
        order.seed ^ (order.statement_id as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
    );
    let system = backend.system();
    let t2 = Instant::now();
    crate::fault::fire_delay("pool.prove.delay");
    let artifacts = system.prove_assignment(&keys.prover, &witness, &mut prover_rng);
    let prove_time = t2.elapsed();
    let num_constraints = artifacts.metrics.num_constraints;

    let proof_bytes = ProofEnvelope::from_artifacts(&artifacts)
        .without_vk()
        .to_bytes();
    let t3 = Instant::now();
    let verified = envelope_verifies(&proof_bytes, &witness.instance, |envelope| {
        envelope.verify_with_key(&keys.verifier)
    });
    let verify_time = t3.elapsed();

    Ok(job_done_line(
        order.lease,
        verified,
        cache_hit,
        num_constraints,
        build_time.as_secs_f64() * 1e3,
        prove_time.as_secs_f64() * 1e3,
        verify_time.as_secs_f64() * 1e3,
        &proof_bytes,
    ))
}
