//! The coordinator side of distributed proving: remote-worker registry,
//! shape-affinity job placement, and heartbeat-driven failure handling.
//!
//! A worker is an ordinary connection to `zkvc serve --listen` whose
//! first line is `worker_register` (see [`crate::wire`]); the session
//! thread that accepted it hands the connection here and becomes the
//! worker's *reader*. One *dispatcher* thread leases queued jobs off the
//! shared [`ProvingPool`] — competing with the local worker threads
//! through the same scheduler — and places each lease on a live remote
//! worker with a free slot, preferring one that already holds the job's
//! compiled shape (ship-once: a shape's canonical bytes cross the wire
//! at most once per worker per `(digest, backend, seed)`).
//!
//! The exactly-once story: a leased job stays counted in flight on the
//! pool, and exactly one of three things happens to it — the reader
//! delivers its remote result through [`ProvingPool::deliver`] (the
//! identical tail local workers use), the job is requeued when its
//! worker dies and some other worker (or the local pool) proves it, or
//! the requeue finds the queue closed and the job is executed inline on
//! the spot. No path drops a lease, and taking the lease out of the
//! worker's in-flight table *before* acting on it makes the paths
//! mutually exclusive — a `job_done` racing a death verdict can never
//! double-answer a client id.
//!
//! Determinism: before dispatching, the coordinator runs the job's
//! witness-free shape pass + setup locally (the serve protocol's `key`
//! lines need the vk resident anyway). Worker-side setup re-derives the
//! same keys from the same `(digest, backend, seed)`-seeded rng, so a
//! proof is bit-identical whoever proves it — which is what keeps
//! same-seed client reports byte-diffable under worker churn.

use std::collections::{HashMap, HashSet};
use std::io::BufReader;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use zkvc_core::Backend;

use crate::cache::KeyCache;
use crate::codec::encode_shape;
use crate::net::AnyStream;
use crate::pool::{build_statement, JobResult, ProvingPool, QueuedJob};
use crate::serve::Output;
use crate::wire::{
    job_line, shape_line, worker_ack_line, worker_shutdown_line, LineReader, WorkerMsg,
};

/// A worker that misses heartbeats for this long is declared dead and
/// its leases re-queued. Workers beat at ~1 Hz, so this tolerates a few
/// dropped ticks without tolerating a wedged peer for long.
const HEARTBEAT_STALE: Duration = Duration::from_secs(10);
/// Line bound for worker connections in both directions: shape bytes and
/// proof hex dwarf request lines, so the serve request bound must not
/// apply here.
pub(crate) const WORKER_LINE_BYTES: usize = 64 << 20;

/// One remote worker's mutable state, guarded together so the death path
/// can atomically claim every outstanding lease.
struct WorkerState {
    /// Leases dispatched and not yet answered, by lease id.
    inflight: HashMap<u64, Lease>,
    /// `(digest, backend, seed)` triples whose shape bytes this worker
    /// already holds — the ship-once set.
    shipped: HashSet<([u8; 32], Backend, u64)>,
    /// Cleared exactly once, by whichever path declares the worker dead.
    alive: bool,
    /// Stamped on every inbound message (heartbeats included).
    last_seen: Instant,
}

/// One dispatched job: everything needed to deliver (or re-queue) it.
struct Lease {
    job: QueuedJob,
    shape_digest: [u8; 32],
}

/// A registered remote worker: shared writer plus guarded state. The
/// dispatcher writes `shape`/`job` lines; the reader writes the ack and
/// the shutdown goodbye — the [`Output`] latch serialises them.
struct RemoteWorker {
    id: u64,
    capacity: usize,
    out: Output<AnyStream>,
    state: Mutex<WorkerState>,
}

impl RemoteWorker {
    fn free_slots(&self) -> usize {
        let state = self.state.lock().expect("worker state poisoned");
        if state.alive {
            self.capacity.saturating_sub(state.inflight.len())
        } else {
            0
        }
    }

    fn holds_shape(&self, key: &([u8; 32], Backend, u64)) -> bool {
        let state = self.state.lock().expect("worker state poisoned");
        state.alive && state.shipped.contains(key)
    }
}

/// Registry keyed by worker id; the map only holds live workers (death
/// removes the entry, so placement never even sees a dead one).
struct CoordState {
    workers: HashMap<u64, Arc<RemoteWorker>>,
    next_worker: u64,
    next_lease: u64,
}

/// The shared coordinator: worker registry + the dispatcher's wakeup
/// plumbing. Deliberately does **not** hold the pool — the dispatcher
/// thread and each reader borrow their own handles, so joining those
/// threads releases every pool reference before the listener's final
/// `Arc::try_unwrap(pool)`.
pub(crate) struct Coordinator {
    state: Mutex<CoordState>,
    /// Signalled when capacity appears (registration, job answered,
    /// worker death) and on shutdown — everything the parked dispatcher
    /// waits for.
    changed: Condvar,
    shutdown: AtomicBool,
    /// Total workers ever registered (for the listener summary).
    workers_seen: AtomicUsize,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("workers_seen", &self.workers_seen.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Coordinator {
    /// Creates the coordinator and spawns its dispatcher thread. The
    /// returned handle must be joined *after* [`Coordinator::shutdown`] +
    /// [`ProvingPool::close_intake`] and *before* the pool itself is
    /// unwrapped.
    pub(crate) fn start(
        pool: &Arc<ProvingPool>,
        cache: &Arc<KeyCache>,
    ) -> (Arc<Coordinator>, thread::JoinHandle<()>) {
        let coordinator = Arc::new(Coordinator {
            state: Mutex::new(CoordState {
                workers: HashMap::new(),
                next_worker: 0,
                next_lease: 0,
            }),
            changed: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers_seen: AtomicUsize::new(0),
        });
        let handle = {
            let coordinator = Arc::clone(&coordinator);
            let pool = Arc::clone(pool);
            let cache = Arc::clone(cache);
            thread::Builder::new()
                .name("zkvc-dispatcher".into())
                .spawn(move || coordinator.run_dispatcher(&pool, &cache))
                .expect("spawn coordinator dispatcher")
        };
        (coordinator, handle)
    }

    /// Raises the shutdown flag and wakes the dispatcher. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        drop(self.state.lock().expect("coordinator state poisoned"));
        self.changed.notify_all();
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn notify(&self) {
        // Empty critical section orders prior state writes before the
        // dispatcher's wakeup re-check.
        drop(self.state.lock().expect("coordinator state poisoned"));
        self.changed.notify_all();
    }

    /// Blocks until some live worker has a free slot; `false` on
    /// shutdown.
    fn wait_for_capacity(&self) -> bool {
        let mut state = self.state.lock().expect("coordinator state poisoned");
        loop {
            if self.is_shutdown() {
                return false;
            }
            if state.workers.values().any(|w| w.free_slots() > 0) {
                return true;
            }
            state = self
                .changed
                .wait(state)
                .expect("coordinator state poisoned");
        }
    }

    /// Picks the placement target for a job on `key`'s shape: a live
    /// worker already holding the shape with a free slot if one exists
    /// (shape affinity — no re-ship, warm remote cache), otherwise the
    /// live worker with the most free slots. `None` when no live worker
    /// has capacity right now.
    fn place(&self, key: &([u8; 32], Backend, u64)) -> Option<Arc<RemoteWorker>> {
        let state = self.state.lock().expect("coordinator state poisoned");
        let with_affinity = state
            .workers
            .values()
            .filter(|w| w.free_slots() > 0 && w.holds_shape(key))
            .max_by_key(|w| w.free_slots());
        if let Some(w) = with_affinity {
            return Some(Arc::clone(w));
        }
        state
            .workers
            .values()
            .filter(|w| w.free_slots() > 0)
            .max_by_key(|w| w.free_slots())
            .map(Arc::clone)
    }

    /// The dispatcher loop: wait for remote capacity, lease a job off the
    /// shared queue, prepare its key material locally, place and ship it.
    /// Exits when the queue closes (lease returns `None`) or shutdown is
    /// raised with nothing left to lease.
    fn run_dispatcher(&self, pool: &Arc<ProvingPool>, cache: &Arc<KeyCache>) {
        loop {
            if !self.wait_for_capacity() {
                // Shutdown: stop leasing. Anything still queued is
                // drained by the local worker threads before the pool's
                // final join, so no accepted job is lost.
                return;
            }
            let Some(job) = pool.lease(0) else { return };
            self.dispatch(pool, cache, job);
        }
    }

    /// Places one leased job (or settles it locally when it is already
    /// doomed / no worker is available).
    fn dispatch(&self, pool: &Arc<ProvingPool>, cache: &Arc<KeyCache>, job: QueuedJob) {
        // A job that is already cancelled or past its deadline is
        // answered inline — execute_locally short-circuits without
        // proving, and shipping it would only burn a remote slot.
        if pool.job_status(&job).is_some() {
            let session = job.session.clone();
            let result = pool.execute_locally(&job, 0);
            pool.deliver(session, result);
            return;
        }

        // Local shape pass + deterministic setup. Required regardless of
        // where the proof runs: the session's `key` line is emitted from
        // this cache, and the digest keys the ship-once set. Worker-side
        // setup derives bit-identical keys from the same seed.
        let statement = build_statement(job.seed, job.statement_id, &job.spec);
        let backend = job.spec.backend();
        let (keys, _) = cache.get_or_setup_template(
            backend,
            job.seed,
            &job.spec.to_string(),
            statement.as_ref(),
        );
        let key = (keys.digest, backend, job.seed);

        loop {
            let Some(worker) = self.place(&key) else {
                // Capacity vanished between the wait and the placement
                // (worker died). Put the job back for the local pool and
                // go back to waiting.
                if let Err(lost) = pool.requeue(job) {
                    let session = lost.session.clone();
                    let result = pool.execute_locally(&lost, 0);
                    pool.deliver(session, result);
                }
                return;
            };

            // Ship the shape once per worker per (digest, backend, seed).
            // The shipped-set insert happens before the write so a racing
            // second dispatch never double-ships; on a send failure the
            // whole worker is condemned anyway.
            let needs_shape = {
                let mut state = worker.state.lock().expect("worker state poisoned");
                state.alive && state.shipped.insert(key)
            };
            if needs_shape {
                let bytes = encode_shape(&keys.shape);
                worker
                    .out
                    .emit(&shape_line(&keys.digest, backend, job.seed, &bytes));
            }

            let deadline_ms = job
                .deadline
                .map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64);
            let lease_id = {
                let mut state = self.state.lock().expect("coordinator state poisoned");
                state.next_lease += 1;
                state.next_lease
            };
            let line = job_line(
                lease_id,
                &job.spec,
                job.seed,
                job.statement_id,
                &keys.digest,
                deadline_ms,
            );
            // Record the lease before sending: once the line is out, a
            // fast answer must find its lease.
            {
                let mut state = worker.state.lock().expect("worker state poisoned");
                if !state.alive {
                    // Died between placement and dispatch: try another.
                    continue;
                }
                state.inflight.insert(
                    lease_id,
                    Lease {
                        job,
                        shape_digest: keys.digest,
                    },
                );
            }
            worker.out.emit(&line);
            if worker.out.is_broken() {
                // The send failed; condemn the worker, which re-queues
                // this lease along with any others.
                self.condemn(pool, &worker);
            }
            return;
        }
    }

    /// Registers a worker connection and runs its read loop until the
    /// worker dies, the coordinator shuts down, or the listener-wide
    /// shutdown flag trips. Called from the session thread that received
    /// the `worker_register` line; returns when the connection is done.
    pub(crate) fn run_worker_connection(
        &self,
        pool: &Arc<ProvingPool>,
        reader: &mut BufReader<AnyStream>,
        out: Output<AnyStream>,
        capacity: usize,
        listener_shutdown: &AtomicBool,
    ) {
        let worker = {
            let mut state = self.state.lock().expect("coordinator state poisoned");
            state.next_worker += 1;
            let worker = Arc::new(RemoteWorker {
                id: state.next_worker,
                capacity: capacity.max(1),
                out,
                state: Mutex::new(WorkerState {
                    inflight: HashMap::new(),
                    shipped: HashSet::new(),
                    alive: true,
                    last_seen: Instant::now(),
                }),
            });
            state.workers.insert(worker.id, Arc::clone(&worker));
            worker
        };
        self.workers_seen.fetch_add(1, Ordering::Relaxed);
        worker.out.emit(&worker_ack_line(worker.id));
        // Fresh capacity: wake the dispatcher.
        self.notify();

        let mut lines = LineReader::new(WORKER_LINE_BYTES);
        loop {
            if self.is_shutdown() || listener_shutdown.load(Ordering::SeqCst) {
                worker.out.emit(&worker_shutdown_line());
                break;
            }
            if worker.out.is_broken() {
                break;
            }
            match lines.read_line(reader) {
                Ok(None) => break, // worker hung up
                Ok(Some(Ok(line))) => {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    {
                        let mut state = worker.state.lock().expect("worker state poisoned");
                        state.last_seen = Instant::now();
                    }
                    match crate::wire::parse_worker_msg(line) {
                        Ok(WorkerMsg::Heartbeat) => {}
                        Ok(WorkerMsg::JobDone {
                            lease,
                            verified,
                            cache_hit,
                            constraints,
                            build_ms,
                            prove_ms,
                            verify_ms,
                            proof_bytes,
                        }) => {
                            // Claim the lease first: a lease already
                            // re-queued by a death verdict (or never
                            // issued) must not deliver twice.
                            let claimed = worker
                                .state
                                .lock()
                                .expect("worker state poisoned")
                                .inflight
                                .remove(&lease);
                            if let Some(l) = claimed {
                                let session = l.job.session.clone();
                                let result = JobResult {
                                    id: l.job.id,
                                    spec: l.job.spec,
                                    seed: l.job.seed,
                                    proof_bytes,
                                    verified,
                                    error: None,
                                    cache_hit,
                                    shape_digest: l.shape_digest,
                                    worker: worker.id as usize,
                                    tag: l.job.tag.clone(),
                                    queue_wait: l.job.enqueued.elapsed(),
                                    build_time: Duration::from_secs_f64(build_ms / 1e3),
                                    prove_time: Duration::from_secs_f64(prove_ms / 1e3),
                                    verify_time: Duration::from_secs_f64(verify_ms / 1e3),
                                    num_constraints: constraints,
                                    session_id: l.job.session_id(),
                                };
                                pool.deliver(session, result);
                                self.notify();
                            }
                        }
                        Ok(WorkerMsg::JobFailed { lease, kind, error }) => {
                            let claimed = worker
                                .state
                                .lock()
                                .expect("worker state poisoned")
                                .inflight
                                .remove(&lease);
                            if let Some(l) = claimed {
                                // A worker-side failure is terminal, not
                                // re-queued: the statement is
                                // deterministic, so a panic would simply
                                // repeat wherever it runs next. Deadline
                                // and cancellation kinds keep their
                                // typed identity so clients see the same
                                // error codes as for local execution.
                                let session = l.job.session.clone();
                                let job_error = match kind.as_str() {
                                    "deadline_exceeded" => crate::pool::JobError::DeadlineExceeded,
                                    "cancelled" => crate::pool::JobError::Cancelled,
                                    _ => crate::pool::JobError::Panicked(format!(
                                        "remote worker {} ({kind}): {error}",
                                        worker.id
                                    )),
                                };
                                let mut result =
                                    pool.failed_result(&l.job, worker.id as usize, job_error);
                                result.shape_digest = l.shape_digest;
                                pool.deliver(session, result);
                                self.notify();
                            }
                        }
                        Err(_) => {
                            // One garbled line condemns the connection:
                            // framing can no longer be trusted.
                            break;
                        }
                    }
                }
                Ok(Some(Err(_))) => break, // oversized / non-UTF-8: condemn
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    // Poll tick: staleness check.
                    let stale = {
                        let state = worker.state.lock().expect("worker state poisoned");
                        state.last_seen.elapsed() >= HEARTBEAT_STALE
                    };
                    if stale {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        self.condemn(pool, &worker);
    }

    /// Declares a worker dead exactly once: removes it from the registry,
    /// claims all its outstanding leases, and puts each back on the queue
    /// (or executes it inline when the queue has closed). Every claimed
    /// lease is settled — this is the no-lost-ids half of exactly-once;
    /// the claim-before-act discipline in the reader is the
    /// no-duplicates half.
    fn condemn(&self, pool: &Arc<ProvingPool>, worker: &Arc<RemoteWorker>) {
        let orphans: Vec<Lease> = {
            let mut state = worker.state.lock().expect("worker state poisoned");
            if !state.alive {
                return; // someone else already settled this worker
            }
            state.alive = false;
            state.inflight.drain().map(|(_, l)| l).collect()
        };
        self.state
            .lock()
            .expect("coordinator state poisoned")
            .workers
            .remove(&worker.id);
        for lease in orphans {
            if let Err(job) = pool.requeue(lease.job) {
                let session = job.session.clone();
                let result = pool.execute_locally(&job, worker.id as usize);
                pool.deliver(session, result);
            }
        }
        self.notify();
    }
}
