//! # zkvc-runtime
//!
//! The batch-proving service layer above the `zkvc-core` proof systems:
//! turns the one-shot prove call into a reusable, concurrent pipeline. The
//! whole layer is **circuit-generic** — jobs route through the
//! [`Circuit`](zkvc_core::Circuit)/[`ProofSystem`](zkvc_core::ProofSystem)
//! traits, so a bare matmul and a whole Transformer-block inference are
//! the same thing to the pool, the cache and the CLI.
//!
//! * [`KeyCache`] — runs [`ProofSystem::setup`](zkvc_core::ProofSystem::setup)
//!   once per circuit shape (keyed by
//!   [`Circuit::shape_digest`](zkvc_core::Circuit::shape_digest)) and
//!   shares the resulting [`ProverKey`](zkvc_core::ProverKey)/
//!   [`VerifierKey`](zkvc_core::VerifierKey) across every job that proves
//!   that shape (Groth16 CRS and Spartan preprocessing both amortise this
//!   way).
//! * [`DiskKeyCache`] — persists Groth16 verification keys on disk keyed
//!   by shape digest + setup seed, so repeat `zkvc verify` invocations skip
//!   CRS re-derivation entirely (constant-pairing verification).
//! * [`ProvingPool`] — worker threads fed by a sharded **work-stealing
//!   scheduler** (per-worker deques, steal-on-idle, job priorities,
//!   bounded-queue backpressure, cooperative cancellation, per-job panic
//!   containment) with `submit`/`join` semantics, per-job metrics
//!   ([`JobResult`]) and aggregate throughput stats ([`BatchReport`]).
//! * [`serve`] — the resident `zkvc serve` loop: JSON-lines requests in,
//!   streamed proof responses out, key cache warm across requests.
//! * [`analysis`] — the `zkvc analyze` layer: runs the `zkvc-r1cs`
//!   static soundness lints over the circuit a [`JobSpec`] names, sweeps
//!   the shipping spec matrix for the CI gate, and pre-flights serve
//!   requests (`--analyze-on-compile`).
//! * [`ProofEnvelope`] — the self-describing byte format proofs travel in
//!   (the pool round-trips every proof through it before verifying).
//! * [`JobSpec`] — the job grammar shared with the `zkvc` CLI binary:
//!   `AxNxB` matmuls (public outputs by default, so proofs bind the
//!   concrete `Y`) and [`ModelPreset`] forward passes whose logits are
//!   always bound.
//! * [`Error`] — the typed error surface of the CLI command paths, with
//!   data-driven process exit codes.
//!
//! ## Example
//!
//! ```rust
//! use zkvc_runtime::{prove_batch, JobSpec, ModelPreset};
//! use zkvc_core::Backend;
//!
//! // Four same-shape matmul jobs: one setup, four proofs, two workers.
//! let specs = vec![JobSpec::new(2, 3, 2).with_backend(Backend::Spartan); 4];
//! let report = prove_batch(&specs, 2, 1);
//! assert!(report.all_verified());
//! assert_eq!(report.cache.misses, 1);
//! assert_eq!(report.cache.hits, 3);
//!
//! // A whole model block goes through the same pipeline.
//! let nn = vec![JobSpec::model(ModelPreset::MixerBlock).with_backend(Backend::Spartan)];
//! assert!(prove_batch(&nn, 1, 1).all_verified());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod analysis;
mod cache;
pub mod codec;
mod coordinator;
mod disk;
mod error;
pub mod fault;
pub mod net;
mod pool;
mod sched;
mod serial;
mod serve;
mod spec;
pub mod tune;
mod util;
pub mod wire;
mod worker;

pub use analysis::{analyze_spec, analyze_specs, Baseline, Preflight, SpecAnalysis};
pub use cache::{CacheStats, CircuitKeys, KeyCache};
pub use disk::DiskKeyCache;
pub use error::Error;
pub use net::{
    run_client, run_sweep, serve_listener, AnyStream, ClientConfig, ClientReport, ListenAddr,
    NetConfig, NetSummary, SessionReport,
};
pub use pool::{
    build_statement, prove_batch, prove_batch_serial, prove_batch_with_policy, BatchKey,
    BatchReport, JobError, JobOptions, JobResult, PoolConfig, ProvingPool, ResultSink, SessionCtl,
};
pub use sched::{Priority, SchedulerPolicy};
pub use serial::{EnvelopeProof, ProofEnvelope};
pub use serve::{serve, ServeConfig, ServeSummary, DEFAULT_CACHE_BYTES};
pub use spec::{JobSpec, ModelPreset, SMALL_MATMUL_CELLS};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};
// The shape digest moved into `zkvc-core` with the trait API; re-exported
// here so existing `zkvc_runtime::circuit_shape_digest` callers keep
// working.
pub use zkvc_core::circuit_shape_digest;
