//! # zkvc-runtime
//!
//! The batch-proving service layer above the raw `zkvc-core` backends:
//! turns the one-shot `prove` call into a reusable, concurrent pipeline.
//!
//! * [`circuit_shape_digest`] — a SHA-256 fingerprint of an R1CS
//!   *structure*, the identity under which key material is reusable.
//! * [`KeyCache`] — runs [`Backend::setup`](zkvc_core::Backend::setup)
//!   once per circuit shape and shares the resulting
//!   [`ProverKey`](zkvc_core::ProverKey)/[`VerifierKey`](zkvc_core::VerifierKey)
//!   across every job that proves that shape (Groth16 CRS and Spartan
//!   preprocessing both amortise this way).
//! * [`DiskKeyCache`] — persists Groth16 verification keys on disk keyed
//!   by shape digest + setup seed, so repeat `zkvc verify` invocations skip
//!   CRS re-derivation entirely (constant-pairing verification).
//! * [`ProvingPool`] — a fixed set of worker threads draining an mpsc job
//!   queue with `submit`/`join` semantics, per-job metrics
//!   ([`JobResult`]) and aggregate throughput stats ([`BatchReport`]).
//! * [`ProofEnvelope`] — the self-describing byte format proofs travel in
//!   (the pool round-trips every proof through it before verifying).
//! * [`JobSpec`] — the `AxNxB:strategy:backend` job grammar shared with
//!   the `zkvc` CLI binary.
//!
//! ## Example
//!
//! ```rust
//! use zkvc_runtime::{prove_batch, JobSpec};
//! use zkvc_core::Backend;
//!
//! // Four same-shape jobs: one setup, four proofs, two workers.
//! let specs = vec![JobSpec::new(2, 3, 2).backend(Backend::Spartan); 4];
//! let report = prove_batch(&specs, 2, 1);
//! assert!(report.all_verified());
//! assert_eq!(report.cache.misses, 1);
//! assert_eq!(report.cache.hits, 3);
//! ```

#![warn(missing_docs)]

mod cache;
mod digest;
mod disk;
mod pool;
mod serial;
mod spec;

pub use cache::{CacheStats, CircuitKeys, KeyCache};
pub use digest::circuit_shape_digest;
pub use disk::DiskKeyCache;
pub use pool::{
    build_statement, prove_batch, prove_batch_serial, BatchKey, BatchReport, JobResult, ProvingPool,
};
pub use serial::{EnvelopeProof, ProofEnvelope};
pub use spec::{parse_backend, parse_strategy, strategy_token, JobSpec};
