//! Job specifications: the unit of work submitted to the
//! [`ProvingPool`](crate::ProvingPool) and the grammar the `zkvc` CLI
//! accepts.

use core::fmt;

use zkvc_core::matmul::Strategy;
use zkvc_core::Backend;

/// One matmul proving job: prove `Y = X * W` for `X: a x n`, `W: n x b`
/// under a circuit strategy and a proof-system backend. Inputs are drawn
/// deterministically from the pool seed and job id.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// `(a, n, b)` matrix dimensions.
    pub dims: (usize, usize, usize),
    /// Circuit encoding strategy.
    pub strategy: Strategy,
    /// Proof system.
    pub backend: Backend,
}

impl JobSpec {
    /// A job with the paper's default strategy (CRPC + PSQ) on Groth16.
    pub fn new(a: usize, n: usize, b: usize) -> Self {
        JobSpec {
            dims: (a, n, b),
            strategy: Strategy::CrpcPsq,
            backend: Backend::Groth16,
        }
    }

    /// Replaces the strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Parses `AxNxB[:strategy][:backend][:xCOUNT]` into a spec and a
    /// repetition count, e.g. `8x8x16:crpc+psq:groth16:x4`.
    ///
    /// Strategy names: `vanilla`, `vanilla+psq`, `crpc`, `crpc+psq` (alias
    /// `zkvc`). Backends: `groth16` (alias `g`), `spartan` (alias `s`).
    /// Omitted fields default to `crpc+psq` on `groth16`, one repetition.
    pub fn parse(input: &str) -> Result<(JobSpec, usize), String> {
        let mut parts = input.split(':');
        let dims_part = parts.next().ok_or_else(|| "empty spec".to_string())?;
        let dims = parse_dims(dims_part)?;
        let mut spec = JobSpec::new(dims.0, dims.1, dims.2);
        let mut count = 1usize;
        for part in parts {
            if let Some(n) = part.strip_prefix('x') {
                count = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad repetition count {part:?}"))?;
                if count == 0 {
                    return Err("repetition count must be positive".into());
                }
            } else if let Some(strategy) = parse_strategy(part) {
                spec.strategy = strategy;
            } else if let Some(backend) = parse_backend(part) {
                spec.backend = backend;
            } else {
                return Err(format!(
                    "unknown spec field {part:?} (expected a strategy, a backend, or xCOUNT)"
                ));
            }
        }
        Ok((spec, count))
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}:{}:{}",
            self.dims.0,
            self.dims.1,
            self.dims.2,
            strategy_token(self.strategy),
            self.backend.name()
        )
    }
}

/// The spec-grammar token for a strategy (unlike [`Strategy::name`], which
/// is a display label containing spaces).
pub fn strategy_token(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Vanilla => "vanilla",
        Strategy::VanillaPsq => "vanilla+psq",
        Strategy::Crpc => "crpc",
        Strategy::CrpcPsq => "crpc+psq",
    }
}

fn parse_dims(s: &str) -> Result<(usize, usize, usize), String> {
    let nums: Vec<usize> = s
        .split('x')
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| format!("bad dimension {p:?} in {s:?}"))
        })
        .collect::<Result<_, _>>()?;
    match nums[..] {
        [a, n, b] if a > 0 && n > 0 && b > 0 => Ok((a, n, b)),
        [_, _, _] => Err(format!("dimensions must be positive in {s:?}")),
        _ => Err(format!("expected AxNxB, got {s:?}")),
    }
}

/// Parses a strategy name as used in specs (`crpc+psq`, `zkvc`, ...).
pub fn parse_strategy(s: &str) -> Option<Strategy> {
    match s.to_ascii_lowercase().as_str() {
        "vanilla" => Some(Strategy::Vanilla),
        "vanilla+psq" | "vanilla-psq" | "psq" => Some(Strategy::VanillaPsq),
        "crpc" => Some(Strategy::Crpc),
        "crpc+psq" | "crpc-psq" | "zkvc" => Some(Strategy::CrpcPsq),
        _ => None,
    }
}

/// Parses a backend name as used in specs.
pub fn parse_backend(s: &str) -> Option<Backend> {
    match s.to_ascii_lowercase().as_str() {
        "groth16" | "g" => Some(Backend::Groth16),
        "spartan" | "s" => Some(Backend::Spartan),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_and_partial_specs() {
        let (spec, count) = JobSpec::parse("8x8x16:crpc+psq:groth16:x4").unwrap();
        assert_eq!(spec.dims, (8, 8, 16));
        assert_eq!(spec.strategy, Strategy::CrpcPsq);
        assert_eq!(spec.backend, Backend::Groth16);
        assert_eq!(count, 4);

        let (spec, count) = JobSpec::parse("2x3x4").unwrap();
        assert_eq!(spec, JobSpec::new(2, 3, 4));
        assert_eq!(count, 1);

        // Field order is free; aliases work.
        let (spec, _) = JobSpec::parse("2x2x2:s:vanilla").unwrap();
        assert_eq!(spec.backend, Backend::Spartan);
        assert_eq!(spec.strategy, Strategy::Vanilla);
        let (spec, _) = JobSpec::parse("2x2x2:zkvc:g").unwrap();
        assert_eq!(spec.strategy, Strategy::CrpcPsq);
        assert_eq!(spec.backend, Backend::Groth16);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(JobSpec::parse("8x8").is_err());
        assert!(JobSpec::parse("0x2x2").is_err());
        assert!(JobSpec::parse("2x2x2:nope").is_err());
        assert!(JobSpec::parse("2x2x2:x0").is_err());
        assert!(JobSpec::parse("axbxc").is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let spec = JobSpec::new(3, 4, 5)
            .strategy(Strategy::Vanilla)
            .backend(Backend::Spartan);
        let shown = spec.to_string();
        assert_eq!(shown, "3x4x5:vanilla:spartan");
        let (back, count) = JobSpec::parse(&shown).unwrap();
        assert_eq!(back, spec);
        assert_eq!(count, 1);
    }
}
