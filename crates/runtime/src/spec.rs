//! Job specifications: the unit of work submitted to the
//! [`ProvingPool`](crate::ProvingPool) and the grammar the `zkvc` CLI
//! accepts.
//!
//! A spec is either a **matmul** statement (`AxNxB`, with the paper's four
//! circuit strategies) or a **model** statement — one of the
//! [`ModelPreset`] forward passes compiled by `zkvc-nn`. Both parse from
//! the same `first[:field]*` grammar, where the leading token decides the
//! variant and the remaining fields (strategy, backend, `xCOUNT`
//! repetition, `private`) may appear in any order:
//!
//! ```text
//! 8x8x16:crpc+psq:groth16:x4      four bound matmul jobs
//! 4x4x4:private:spartan           one shape-only (unbound) matmul job
//! mixer-block:spartan:x2          two MLP-Mixer block inferences
//! bert-block:zkvc:g               one BERT block on Groth16
//! ```
//!
//! Strategy and backend tokens parse through the [`FromStr`] impls on
//! [`Strategy`] and [`Backend`] in `zkvc-core` — the CLI, the benches and
//! the tests all share one grammar.

use core::fmt;
use std::str::FromStr;

use zkvc_core::matmul::Strategy;
use zkvc_core::{Backend, UnknownTokenError};
use zkvc_nn::mixer::MixerSchedule;
use zkvc_nn::models::{BertConfig, ModelConfig, VitConfig};

use crate::error::Error;
use crate::sched::Priority;

/// Matmuls at or below this many output-matrix cells (`a*n*b`) are
/// scheduled [`Priority::High`]: they are interactive-latency statements
/// that must not starve behind model blocks in a mixed queue.
pub const SMALL_MATMUL_CELLS: usize = 4096;

/// The tiny reference models a [`JobSpec::Model`] job can prove: one
/// Transformer block each, sized so they are provable under the
/// unoptimised debug profile used by `cargo test` (the release-mode
/// harnesses exercise paper-scale shapes).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ModelPreset {
    /// One MLP-Mixer-style block: linear token mixing ("SoftFree-L").
    MixerBlock,
    /// One BERT-shaped block under the zkVC NLP hybrid schedule.
    BertBlock,
    /// One micro-ViT block under the zkVC hybrid schedule.
    VitMicro,
}

impl ModelPreset {
    /// Every preset, in grammar order.
    pub const ALL: [ModelPreset; 3] = [
        ModelPreset::MixerBlock,
        ModelPreset::BertBlock,
        ModelPreset::VitMicro,
    ];

    /// The spec-grammar token for this preset.
    pub fn token(&self) -> &'static str {
        match self {
            ModelPreset::MixerBlock => "mixer-block",
            ModelPreset::BertBlock => "bert-block",
            ModelPreset::VitMicro => "vit-micro",
        }
    }

    /// The model configuration and mixer schedule this preset compiles.
    pub fn config(&self) -> (ModelConfig, MixerSchedule) {
        match self {
            ModelPreset::MixerBlock => (
                VitConfig::custom(1, 1, 4, 2, 2).to_model(),
                MixerSchedule::soft_free_l(1),
            ),
            ModelPreset::BertBlock => (
                BertConfig {
                    num_layers: 1,
                    num_heads: 1,
                    hidden_dim: 4,
                    seq_len: 2,
                    num_classes: 2,
                }
                .to_model(),
                MixerSchedule::zkvc_hybrid_nlp(1),
            ),
            ModelPreset::VitMicro => (
                VitConfig::custom(1, 1, 4, 2, 2).to_model(),
                MixerSchedule::zkvc_hybrid(1),
            ),
        }
    }
}

impl fmt::Display for ModelPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for ModelPreset {
    type Err = UnknownTokenError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelPreset::ALL
            .into_iter()
            .find(|p| p.token() == s.to_ascii_lowercase())
            .ok_or_else(|| UnknownTokenError {
                what: "model preset",
                token: s.to_string(),
            })
    }
}

/// One proving job: either `Y = X * W` for deterministic pseudo-random
/// matrices, or a preset model's forward pass. Inputs/weights are drawn
/// deterministically from the pool seed and job id.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum JobSpec {
    /// Prove `Y = X * W` for `X: a x n`, `W: n x b`.
    MatMul {
        /// `(a, n, b)` matrix dimensions.
        dims: (usize, usize, usize),
        /// Circuit encoding strategy.
        strategy: Strategy,
        /// Proof system.
        backend: Backend,
        /// Whether `Y` is exposed as public inputs (statement binding,
        /// the default) or kept as a private witness (shape binding only).
        public_outputs: bool,
    },
    /// Prove one forward pass of a preset model, logits bound as public
    /// outputs.
    Model {
        /// Which model to compile and prove.
        preset: ModelPreset,
        /// Matmul strategy used throughout the model.
        strategy: Strategy,
        /// Proof system.
        backend: Backend,
    },
}

impl JobSpec {
    /// A matmul job with the paper's default strategy (CRPC + PSQ) on
    /// Groth16, with `Y` bound as public outputs.
    pub fn new(a: usize, n: usize, b: usize) -> Self {
        JobSpec::MatMul {
            dims: (a, n, b),
            strategy: Strategy::CrpcPsq,
            backend: Backend::Groth16,
            public_outputs: true,
        }
    }

    /// A model job for `preset` with the default strategy (CRPC + PSQ) on
    /// Groth16.
    pub fn model(preset: ModelPreset) -> Self {
        JobSpec::Model {
            preset,
            strategy: Strategy::CrpcPsq,
            backend: Backend::Groth16,
        }
    }

    /// Replaces the strategy.
    pub fn with_strategy(mut self, new: Strategy) -> Self {
        match &mut self {
            JobSpec::MatMul { strategy, .. } | JobSpec::Model { strategy, .. } => *strategy = new,
        }
        self
    }

    /// Replaces the backend.
    pub fn with_backend(mut self, new: Backend) -> Self {
        match &mut self {
            JobSpec::MatMul { backend, .. } | JobSpec::Model { backend, .. } => *backend = new,
        }
        self
    }

    /// Keeps matmul outputs as private witnesses (shape-level binding
    /// only). No-op for model jobs, whose logits are always public.
    pub fn with_private_outputs(mut self) -> Self {
        if let JobSpec::MatMul { public_outputs, .. } = &mut self {
            *public_outputs = false;
        }
        self
    }

    /// The circuit strategy.
    pub fn strategy(&self) -> Strategy {
        match self {
            JobSpec::MatMul { strategy, .. } | JobSpec::Model { strategy, .. } => *strategy,
        }
    }

    /// The proof-system backend.
    pub fn backend(&self) -> Backend {
        match self {
            JobSpec::MatMul { backend, .. } | JobSpec::Model { backend, .. } => *backend,
        }
    }

    /// Whether the proved statement binds public outputs.
    pub fn binds_outputs(&self) -> bool {
        match self {
            JobSpec::MatMul { public_outputs, .. } => *public_outputs,
            JobSpec::Model { .. } => true,
        }
    }

    /// The scheduling class the pool assigns this spec by default: small
    /// matmuls (at most [`SMALL_MATMUL_CELLS`] `a*n*b` cells) are
    /// [`Priority::High`], everything else — big matmuls and whole model
    /// blocks — is [`Priority::Normal`], so a queue full of model jobs
    /// cannot starve the quick statements behind it.
    pub fn priority(&self) -> Priority {
        match self {
            JobSpec::MatMul { dims, .. } if dims.0 * dims.1 * dims.2 <= SMALL_MATMUL_CELLS => {
                Priority::High
            }
            JobSpec::MatMul { .. } | JobSpec::Model { .. } => Priority::Normal,
        }
    }

    /// Short label for the statement shape ("8x8x16", "mixer-block").
    pub fn shape_label(&self) -> String {
        match self {
            JobSpec::MatMul { dims, .. } => format!("{}x{}x{}", dims.0, dims.1, dims.2),
            JobSpec::Model { preset, .. } => preset.token().to_string(),
        }
    }

    /// Parses `FIRST[:FIELD]*` into a spec and a repetition count, where
    /// `FIRST` is `AxNxB` or a [`ModelPreset`] token and each `FIELD` is a
    /// strategy, a backend, `xCOUNT`, or `private` (matmul only). See the
    /// module docs for the grammar.
    pub fn parse(input: &str) -> Result<(JobSpec, usize), Error> {
        let bad = |reason: &dyn fmt::Display| Error::spec(input, reason);
        let mut parts = input.split(':');
        let first = parts.next().unwrap_or_default();
        let mut spec = match parse_dims(first) {
            Some(result) => {
                let (a, n, b) = result.map_err(|e| bad(&e))?;
                JobSpec::new(a, n, b)
            }
            None => {
                let preset = ModelPreset::from_str(first).map_err(|e| {
                    bad(&format!(
                        "{e} (expected AxNxB dimensions or one of: {})",
                        ModelPreset::ALL.map(|p| p.token()).join(", ")
                    ))
                })?;
                JobSpec::model(preset)
            }
        };
        let mut count = 1usize;
        for part in parts {
            if let Some(n) = part.strip_prefix('x') {
                count = n
                    .parse::<usize>()
                    .ok()
                    .filter(|c| *c > 0)
                    .ok_or_else(|| bad(&format!("bad repetition count {part:?}")))?;
            } else if let Ok(strategy) = part.parse::<Strategy>() {
                spec = spec.with_strategy(strategy);
            } else if let Ok(backend) = part.parse::<Backend>() {
                spec = spec.with_backend(backend);
            } else if part.eq_ignore_ascii_case("private") {
                if matches!(spec, JobSpec::Model { .. }) {
                    return Err(bad(&"model outputs are always public"));
                }
                spec = spec.with_private_outputs();
            } else {
                return Err(bad(&format!(
                    "unknown field {part:?} (expected a strategy, a backend, `private`, or xCOUNT)"
                )));
            }
        }
        Ok((spec, count))
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}",
            self.shape_label(),
            self.strategy(),
            self.backend()
        )?;
        if !self.binds_outputs() {
            write!(f, ":private")?;
        }
        Ok(())
    }
}

/// Distinguishes the `AxNxB` form from preset tokens: returns `None` when
/// the token does not look like a dimension triple at all, and
/// `Some(Err(..))` when it does but is invalid.
#[allow(clippy::type_complexity)]
fn parse_dims(s: &str) -> Option<Result<(usize, usize, usize), String>> {
    if !s.chars().next()?.is_ascii_digit() {
        return None;
    }
    let nums: Result<Vec<usize>, String> = s
        .split('x')
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| format!("bad dimension {p:?} in {s:?}"))
        })
        .collect();
    Some(nums.and_then(|nums| match nums[..] {
        [a, n, b] if a > 0 && n > 0 && b > 0 => Ok((a, n, b)),
        [_, _, _] => Err(format!("dimensions must be positive in {s:?}")),
        _ => Err(format!("expected AxNxB, got {s:?}")),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_and_partial_matmul_specs() {
        let (spec, count) = JobSpec::parse("8x8x16:crpc+psq:groth16:x4").unwrap();
        assert_eq!(spec, JobSpec::new(8, 8, 16));
        assert_eq!(spec.strategy(), Strategy::CrpcPsq);
        assert_eq!(spec.backend(), Backend::Groth16);
        assert!(spec.binds_outputs());
        assert_eq!(count, 4);

        let (spec, count) = JobSpec::parse("2x3x4").unwrap();
        assert_eq!(spec, JobSpec::new(2, 3, 4));
        assert_eq!(count, 1);

        // Field order is free; aliases work.
        let (spec, _) = JobSpec::parse("2x2x2:s:vanilla").unwrap();
        assert_eq!(spec.backend(), Backend::Spartan);
        assert_eq!(spec.strategy(), Strategy::Vanilla);
        let (spec, _) = JobSpec::parse("2x2x2:zkvc:g").unwrap();
        assert_eq!(spec.strategy(), Strategy::CrpcPsq);
        assert_eq!(spec.backend(), Backend::Groth16);

        // Shape-only binding is opt-in.
        let (spec, _) = JobSpec::parse("2x2x2:private").unwrap();
        assert!(!spec.binds_outputs());
    }

    #[test]
    fn parses_model_specs() {
        let (spec, count) = JobSpec::parse("mixer-block:spartan:x3").unwrap();
        assert_eq!(
            spec,
            JobSpec::model(ModelPreset::MixerBlock).with_backend(Backend::Spartan)
        );
        assert_eq!(count, 3);
        assert!(spec.binds_outputs());
        assert_eq!(spec.shape_label(), "mixer-block");

        for preset in ModelPreset::ALL {
            let (spec, _) = JobSpec::parse(preset.token()).unwrap();
            assert_eq!(spec, JobSpec::model(preset));
            let (model, schedule) = preset.config();
            assert_eq!(model.num_layers(), schedule.num_layers());
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "8x8",
            "0x2x2",
            "2x2x2:nope",
            "2x2x2:x0",
            "axbxc",
            "bert-blok",
            "mixer-block:private",
            "",
        ] {
            let err = JobSpec::parse(bad).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}");
            assert!(err.to_string().contains("bad spec"), "{bad:?}");
        }
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let specs = [
            JobSpec::new(3, 4, 5)
                .with_strategy(Strategy::Vanilla)
                .with_backend(Backend::Spartan),
            JobSpec::new(2, 2, 2).with_private_outputs(),
            JobSpec::model(ModelPreset::BertBlock).with_backend(Backend::Spartan),
        ];
        for spec in specs {
            let shown = spec.to_string();
            let (back, count) = JobSpec::parse(&shown).unwrap();
            assert_eq!(back, spec, "{shown}");
            assert_eq!(count, 1);
        }
        assert_eq!(
            JobSpec::new(2, 2, 2).with_private_outputs().to_string(),
            "2x2x2:crpc+psq:groth16:private"
        );
    }

    #[test]
    fn private_outputs_is_a_model_noop() {
        let spec = JobSpec::model(ModelPreset::VitMicro).with_private_outputs();
        assert!(spec.binds_outputs());
    }

    #[test]
    fn priority_tracks_statement_size() {
        assert_eq!(JobSpec::new(4, 4, 4).priority(), Priority::High);
        assert_eq!(JobSpec::new(16, 16, 16).priority(), Priority::High);
        assert_eq!(JobSpec::new(49, 64, 128).priority(), Priority::Normal);
        assert_eq!(
            JobSpec::model(ModelPreset::MixerBlock).priority(),
            Priority::Normal
        );
    }
}
