//! The resident proving server behind `zkvc serve`: a long-running
//! process that reads JSON-lines job requests from a stream (stdin in the
//! CLI), proves them on a [`ProvingPool`], and streams JSON-lines
//! responses back **as each proof completes** — out of order, tagged with
//! the request's own `id`. The pool's [`KeyCache`] lives as long as the
//! server, so a repeat circuit shape is O(prove), not O(setup), no matter
//! how many requests ago it was first seen.
//!
//! The wire dialect (flat JSON-lines, `zkvc-serve/v1`) lives in
//! [`crate::wire`] and is shared with the socket listener sessions in
//! [`crate::net`]; `docs/PROTOCOL.md` freezes the schema. This module
//! owns the *session semantics*: request intake with backpressure,
//! per-`(shape, seed)` key streaming, counters, and the summary line.
//!
//! A `key` line is emitted once per new Groth16 `(shape, seed)` — result
//! envelopes are keyless, exactly like pool batches — when the shape's
//! first job completes (results for cache-hit jobs of the same shape may
//! land before it; buffer if verifying online). Malformed, oversized, or
//! unparseable requests are answered with an `error` line carrying the
//! exit-code class the CLI would have used (`2`), and the server keeps
//! running: one bad client line never kills the process.

use std::collections::HashSet;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use zkvc_core::{Backend, VerifierKey};

use crate::analysis::Preflight;
use crate::cache::KeyCache;
use crate::disk::DiskKeyCache;
use crate::error::Error;
use crate::pool::{JobOptions, JobResult, PoolConfig, ProvingPool, ResultSink};
use crate::util::hex;
use crate::wire::{error_line, parse_request, read_bounded_line, result_line, LineReject};

/// Default byte bound for the resident key cache (see
/// [`ServeConfig::cache_bytes`]).
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// Configuration for [`serve`] (and, via [`crate::net::NetConfig`], for
/// every socket listener session).
#[derive(Debug)]
pub struct ServeConfig {
    /// Worker threads proving requests.
    pub workers: usize,
    /// Default statement seed for requests that carry none; also seeds
    /// the resident key cache.
    pub seed: u64,
    /// Backpressure bound: request intake blocks (in the pipe) while this
    /// many jobs are queued.
    pub queue_bound: usize,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// discarded whole and answered with an error response.
    pub max_request_bytes: usize,
    /// Whether `result` lines carry the proof envelope as `proof_hex`
    /// (disable for throughput probes that only want verdicts).
    pub include_proofs: bool,
    /// When set, Groth16 verification keys are persisted here as shapes
    /// are first proved, so offline `zkvc verify --key-cache` calls skip
    /// CRS re-derivation.
    pub disk_cache: Option<DiskKeyCache>,
    /// Byte bound on the resident [`KeyCache`]: when the compiled shapes
    /// held alive exceed this, the least-recently-used cold shapes are
    /// evicted (and re-set-up on next use). `None` disables the bound.
    pub cache_bytes: Option<usize>,
    /// When set, every spec is statically analyzed before its first job
    /// is admitted (see [`crate::analysis`]); specs whose shapes carry
    /// deny-severity findings are rejected with an in-stream code-2
    /// error instead of being proved. The verdict is memoised per spec,
    /// so the pre-flight costs one witness-free compile per distinct
    /// circuit per session.
    pub analyze_on_compile: bool,
}

impl ServeConfig {
    /// Defaults: `workers` threads, seed 0, 256-job queue bound, 64 KiB
    /// request lines, proofs included, no disk persistence, a 256 MiB
    /// shape-byte bound on the resident key cache.
    pub fn new(workers: usize) -> Self {
        ServeConfig {
            workers: workers.max(1),
            seed: 0,
            queue_bound: 256,
            max_request_bytes: 64 * 1024,
            include_proofs: true,
            disk_cache: None,
            cache_bytes: Some(DEFAULT_CACHE_BYTES),
            analyze_on_compile: false,
        }
    }

    /// Sets the default statement seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the backpressure bound (clamped to at least 1).
    pub fn queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound.max(1);
        self
    }

    /// Sets the request-line size limit (clamped to at least 64 bytes).
    pub fn max_request_bytes(mut self, max: usize) -> Self {
        self.max_request_bytes = max.max(64);
        self
    }

    /// Sets whether result lines include the proof bytes.
    pub fn include_proofs(mut self, include: bool) -> Self {
        self.include_proofs = include;
        self
    }

    /// Enables on-disk persistence of Groth16 verification keys.
    pub fn disk_cache(mut self, disk: Option<DiskKeyCache>) -> Self {
        self.disk_cache = disk;
        self
    }

    /// Sets (or disables) the resident key cache's shape-byte bound.
    pub fn cache_bytes(mut self, bytes: Option<usize>) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Enables the static-analysis pre-flight on every spec's first job.
    pub fn analyze_on_compile(mut self, enable: bool) -> Self {
        self.analyze_on_compile = enable;
        self
    }

    /// Builds the resident key cache this config describes.
    pub(crate) fn build_cache(&self) -> KeyCache {
        let cache = KeyCache::with_seed(self.seed);
        match self.cache_bytes {
            Some(bytes) => cache.bound_shape_bytes(bytes),
            None => cache,
        }
    }
}

/// What a [`serve`] session did, returned after the input stream ends.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs accepted and run (including cancelled/panicked ones).
    pub jobs: usize,
    /// Jobs whose proof verified.
    pub verified: usize,
    /// Jobs that did not verify (bad proof, cancelled, panicked).
    pub failed: usize,
    /// Request lines rejected before reaching the pool (malformed JSON,
    /// unknown fields, bad specs, oversized lines).
    pub rejected: usize,
}

/// Shared writer: worker sinks and the intake loop interleave whole
/// lines; the first I/O error is latched and ends the session.
pub(crate) struct Output<W: Write> {
    writer: Mutex<W>,
    broken: Mutex<Option<io::Error>>,
}

impl<W: Write> Output<W> {
    pub(crate) fn new(writer: W) -> Self {
        Output {
            writer: Mutex::new(writer),
            broken: Mutex::new(None),
        }
    }

    pub(crate) fn emit(&self, line: &str) {
        // A latched failure condemns the whole stream: nothing written
        // after it can be trusted to arrive in order (the peer is gone,
        // or — under fault injection — the session is being torn down),
        // so later emits are dropped rather than interleaved onto a
        // half-dead connection.
        if self.is_broken() {
            return;
        }
        let mut w = self.writer.lock().expect("serve output poisoned");
        let result = writeln!(w, "{line}").and_then(|_| w.flush());
        if let Err(e) = result {
            let mut broken = self.broken.lock().expect("serve output poisoned");
            broken.get_or_insert(e);
        }
    }

    /// `true` once any emit has failed; the latched error stays put for
    /// [`Output::take_error`] so a broken-pipe session still reports its
    /// root cause at the end.
    pub(crate) fn is_broken(&self) -> bool {
        self.broken.lock().expect("serve output poisoned").is_some()
    }

    pub(crate) fn take_error(&self) -> Option<io::Error> {
        self.broken.lock().expect("serve output poisoned").take()
    }
}

/// Per-session response state shared between the intake loop and the
/// pool's result sink: the latched line writer, the set of `(shape,
/// seed)` pairs whose Groth16 key line already streamed, and the
/// jobs/verified counters feeding the session summary.
///
/// The sent-key set (rather than the result's `cache_hit` flag) decides
/// key emission: with a byte-bounded cache a shape can be evicted and
/// re-set-up, which would re-announce the key mid-session otherwise —
/// and each socket session needs its own announcement state anyway.
pub(crate) struct SessionOut<W: Write> {
    pub(crate) out: Output<W>,
    sent_keys: Mutex<HashSet<([u8; 32], u64)>>,
    pub(crate) jobs: AtomicUsize,
    pub(crate) verified: AtomicUsize,
}

impl<W: Write> SessionOut<W> {
    pub(crate) fn new(writer: W) -> Self {
        SessionOut {
            out: Output::new(writer),
            sent_keys: Mutex::new(HashSet::new()),
            jobs: AtomicUsize::new(0),
            verified: AtomicUsize::new(0),
        }
    }

    /// Streams one job result to this session: the `key` line first if
    /// this is the session's first Groth16 result for its `(shape,
    /// seed)` (persisting the vk to `disk` best-effort), then the
    /// `result` line; updates the session counters.
    pub(crate) fn emit_result(
        &self,
        cache: &KeyCache,
        disk: Option<&DiskKeyCache>,
        include_proofs: bool,
        result: &JobResult,
    ) {
        if result.error.is_none() && result.spec.backend() == Backend::Groth16 {
            let key = (result.shape_digest, result.seed);
            let already = self
                .sent_keys
                .lock()
                .expect("sent-keys poisoned")
                .contains(&key);
            if !already {
                // Fetch under no lock (setup can be slow); mark sent only
                // once the vk was actually found and emitted, so an
                // eviction race just retries on the next same-shape result.
                if let Some(keys) = cache.get(&result.shape_digest, Backend::Groth16, result.seed) {
                    if let VerifierKey::Groth16(vk) = &keys.verifier {
                        let first = self
                            .sent_keys
                            .lock()
                            .expect("sent-keys poisoned")
                            .insert(key);
                        if first {
                            self.out.emit(&format!(
                                "{{\"type\":\"key\",\"backend\":\"groth16\",\"shape_digest\":\"{}\",\"seed\":{},\"vk_hex\":\"{}\"}}",
                                hex(&result.shape_digest),
                                result.seed,
                                hex(&vk.to_bytes())
                            ));
                            if let Some(disk) = disk {
                                // Persistence is best-effort: a read-only
                                // disk must not fail the job.
                                let _ =
                                    disk.store_groth16_vk(&result.shape_digest, result.seed, vk);
                            }
                        }
                    }
                }
            }
        }
        self.jobs.fetch_add(1, Ordering::Relaxed);
        if result.verified {
            self.verified.fetch_add(1, Ordering::Relaxed);
        }
        self.out.emit(&result_line(result, include_proofs));
    }

    /// Renders and emits the session `summary` line; `session` tags it
    /// for multi-session transports, `extra` appends transport-specific
    /// fields (already comma-prefixed).
    pub(crate) fn emit_summary(
        &self,
        session: Option<u64>,
        rejected: usize,
        cache: &KeyCache,
        wall_s: f64,
        extra: &str,
    ) -> ServeSummary {
        let jobs = self.jobs.load(Ordering::Relaxed);
        let verified = self.verified.load(Ordering::Relaxed);
        let summary = ServeSummary {
            jobs,
            verified,
            failed: jobs - verified,
            rejected,
        };
        let stats = cache.stats();
        let session = match session {
            Some(id) => format!("\"session\":{id},"),
            None => String::new(),
        };
        self.out.emit(&format!(
            "{{\"type\":\"summary\",{session}\"jobs\":{},\"verified\":{},\"failed\":{},\"rejected\":{},\"cache_hits\":{},\"cache_misses\":{},\"wall_s\":{:.3}{extra}}}",
            summary.jobs,
            summary.verified,
            summary.failed,
            summary.rejected,
            stats.hits,
            stats.misses,
            wall_s,
        ));
        summary
    }
}

/// Renders the session `ready` line: the protocol handshake every
/// transport opens with.
pub(crate) fn ready_line(session: Option<u64>, workers: usize, seed: u64, bound: usize) -> String {
    let session = match session {
        Some(id) => format!("\"session\":{id},"),
        None => String::new(),
    };
    format!(
        "{{\"type\":\"ready\",\"proto\":\"{}\",{session}\"workers\":{workers},\"seed\":{seed},\"queue_bound\":{bound}}}",
        crate::codec::SERVE_PROTO
    )
}

/// Runs the serve loop over `input`/`output` until `input` reaches EOF,
/// then drains the pool, writes the `summary` line, and returns the
/// totals. Fatal errors are I/O errors on the streams themselves; request
/// problems are answered in-stream and never returned.
// The loop owns its config for its whole run; callers hand it over.
#[allow(clippy::needless_pass_by_value)]
pub fn serve<R: BufRead, W: Write + Send + 'static>(
    mut input: R,
    output: W,
    config: ServeConfig,
) -> Result<ServeSummary, Error> {
    let started = Instant::now();
    let session = Arc::new(SessionOut::new(output));
    let cache = Arc::new(config.build_cache());
    let preflight = config.analyze_on_compile.then(Preflight::new);

    let sink: ResultSink = {
        let session = Arc::clone(&session);
        let cache = Arc::clone(&cache);
        let include_proofs = config.include_proofs;
        let disk = config.disk_cache.clone();
        Arc::new(move |result: &JobResult| {
            session.emit_result(&cache, disk.as_ref(), include_proofs, result);
        })
    };

    let pool = ProvingPool::configured(
        PoolConfig::new(config.workers)
            .seed(config.seed)
            .queue_bound(config.queue_bound)
            .retain_results(false),
        Arc::clone(&cache),
        Some(sink),
    );

    session.out.emit(&ready_line(
        None,
        config.workers.max(1),
        config.seed,
        config.queue_bound,
    ));

    let mut rejected = 0usize;
    loop {
        if session.out.is_broken() {
            // The consumer hung up; stop reading, drain, and report below.
            break;
        }
        match read_bounded_line(&mut input, config.max_request_bytes) {
            Ok(None) => break, // EOF: orderly shutdown
            Ok(Some(Err(LineReject::TooLarge(actual)))) => {
                rejected += 1;
                let error = Error::RequestTooLarge {
                    actual,
                    limit: config.max_request_bytes,
                };
                session.out.emit(&error_line(None, &error));
            }
            Ok(Some(Err(LineReject::NotUtf8))) => {
                rejected += 1;
                let error = Error::Request("request line is not valid UTF-8".into());
                session.out.emit(&error_line(None, &error));
            }
            Ok(Some(Ok(line))) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match parse_request(line) {
                    // The repetition count is bounded by the queue: one
                    // tiny `:xN` line must not be able to commit the
                    // server to an unbounded amount of proving (the
                    // request-size bound would be meaningless otherwise).
                    Ok(request) if request.count > config.queue_bound => {
                        rejected += 1;
                        let error = Error::Request(format!(
                            "repetition count {} exceeds the queue bound {} (send more lines instead)",
                            request.count, config.queue_bound
                        ));
                        session
                            .out
                            .emit(&error_line(request.id_json.as_deref(), &error));
                    }
                    Ok(request) => {
                        let seed = request.seed.unwrap_or(config.seed);
                        if let Some(preflight) = &preflight {
                            if let Err(reason) = preflight.check(&request.spec, seed) {
                                rejected += 1;
                                let error = Error::Request(reason);
                                session
                                    .out
                                    .emit(&error_line(request.id_json.as_deref(), &error));
                                continue;
                            }
                        }
                        let priority = request.priority.unwrap_or(request.spec.priority());
                        let deadline = request.deadline_ms.map(Duration::from_millis);
                        for _ in 0..request.count {
                            pool.submit(
                                request.spec,
                                JobOptions::new()
                                    .seed(seed)
                                    .priority(priority)
                                    .tag_opt(request.id_json.clone())
                                    .deadline_opt(deadline),
                            );
                        }
                    }
                    Err((error, id_json)) => {
                        rejected += 1;
                        session.out.emit(&error_line(id_json.as_deref(), &error));
                    }
                }
            }
            Err(e) => return Err(Error::io("<serve input>", e)),
        }
    }

    pool.join();
    let summary = session.emit_summary(None, rejected, &cache, started.elapsed().as_secs_f64(), "");
    if let Some(e) = session.out.take_error() {
        return Err(Error::io("<serve output>", e));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse_json_object;
    use std::io::Cursor;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn serve_round_trips_requests_and_survives_garbage() {
        // Two good requests (same shape: second must hit the cache), one
        // malformed JSON line, one unknown-field line, one oversized line.
        let oversized = format!(r#"{{"spec": "2x3x2:zkvc:s", "id": "{}"}}"#, "x".repeat(300));
        let input = format!(
            "{}\n{}\nnot json\n{}\n{oversized}\n",
            r#"{"id": "a", "spec": "2x3x2:zkvc:s"}"#,
            r#"{"id": "b", "spec": "2x3x2:zkvc:s"}"#,
            r#"{"id": "c", "spec": "2x3x2:zkvc:s", "frobnicate": true}"#,
        );
        let buf = SharedBuf::default();
        let summary = serve(
            Cursor::new(input.into_bytes()),
            buf.clone(),
            ServeConfig::new(2).seed(7).max_request_bytes(256),
        )
        .unwrap();
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.verified, 2);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.rejected, 3);

        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"type\":\"ready\""), "{text}");
        assert!(
            lines.last().unwrap().contains("\"type\":\"summary\""),
            "{text}"
        );
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"type\":\"result\"") && l.contains("\"verified\":true"))
                .count(),
            2,
            "{text}"
        );
        // Request ids are echoed; the cache was warm for one of the two.
        assert!(
            text.contains("\"id\":\"a\"") && text.contains("\"id\":\"b\""),
            "{text}"
        );
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"cache_hit\":true"))
                .count(),
            1,
            "{text}"
        );
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"type\":\"error\"") && l.contains("\"code\":2"))
                .count(),
            3,
            "{text}"
        );
        assert!(text.contains("request too large"), "{text}");
        // Spartan jobs ship no key lines (no wire form).
        assert!(!text.contains("\"type\":\"key\""), "{text}");

        // Responses are themselves valid flat JSON per this module's own
        // parser (modulo the proof hex payload, which is plain).
        for line in &lines {
            parse_json_object(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn serve_caps_per_request_repetition_at_the_queue_bound() {
        // One tiny `:xN` line must not commit the server to unbounded
        // proving: counts above the queue bound are rejected with a
        // code-2 error and the server keeps serving.
        let input = concat!(
            "{\"spec\": \"2x2x2:zkvc:s:x4000000000\", \"id\": \"flood\"}\n",
            "{\"spec\": \"2x2x2:zkvc:s:x2\", \"id\": \"ok\"}\n",
        );
        let buf = SharedBuf::default();
        let summary = serve(
            Cursor::new(input.as_bytes().to_vec()),
            buf.clone(),
            ServeConfig::new(1).queue_bound(8),
        )
        .unwrap();
        assert_eq!(summary.rejected, 1);
        assert_eq!(summary.jobs, 2, "the in-bound repetition still ran");
        assert_eq!(summary.verified, 2);
        let text = buf.text();
        assert!(
            text.contains("\"id\":\"flood\"")
                && text.contains("exceeds the queue bound")
                && text.contains("\"code\":2"),
            "{text}"
        );
    }

    #[test]
    fn serve_streams_groth16_keys_once_per_shape() {
        let input = concat!(
            "{\"spec\": \"2x2x2:vanilla:g\", \"id\": 1}\n",
            "{\"spec\": \"2x2x2:vanilla:g\", \"id\": 2}\n",
        );
        let buf = SharedBuf::default();
        let summary = serve(
            Cursor::new(input.as_bytes().to_vec()),
            buf.clone(),
            ServeConfig::new(1),
        )
        .unwrap();
        assert_eq!(summary.verified, 2);
        let text = buf.text();
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"type\":\"key\""))
                .count(),
            1,
            "one key line per (shape, seed): {text}"
        );
        assert!(text.contains("\"vk_hex\":\""), "{text}");
    }

    #[test]
    fn key_lines_reannounce_after_cache_eviction_only_to_new_sessions() {
        // A byte-bounded resident cache may evict and re-set-up a shape
        // mid-session; the sent-key set must still emit the key exactly
        // once per session. cache_bytes(1) forces every job to re-setup.
        let input = concat!(
            "{\"spec\": \"2x2x2:vanilla:g\", \"id\": 1}\n",
            "{\"spec\": \"3x2x3:vanilla:g\", \"id\": 2}\n",
            "{\"spec\": \"2x2x2:vanilla:g\", \"id\": 3}\n",
        );
        let buf = SharedBuf::default();
        let summary = serve(
            Cursor::new(input.as_bytes().to_vec()),
            buf.clone(),
            ServeConfig::new(1).cache_bytes(Some(1)),
        )
        .unwrap();
        assert_eq!(summary.verified, 3);
        let text = buf.text();
        // Two distinct shapes -> exactly two key lines, even though the
        // 2x2x2 shape was set up twice (evicted in between).
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"type\":\"key\""))
                .count(),
            2,
            "{text}"
        );
    }
}
